//! Zone linting: the paper's operational guidance as checks.
//!
//! §5.2 of the paper found that most operators running very short NS
//! TTLs "had not considered the implications"; three raised them to a
//! day after one email. This module is that email as a program: it
//! inspects a zone's records (plus whatever is known about the
//! parent's copy) and reports every TTL configuration the paper warns
//! about, each finding citing its section.

use dnsttl_wire::{Name, RData, Record, RecordType, Ttl};
use std::collections::BTreeMap;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, nothing to fix.
    Info,
    /// Warning: latency/resilience is being left on the table.
    Warning,
    /// Error: caching is broken or misleading.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable code (`ttl-zero`, `ns-ttl-short`, …).
    pub code: &'static str,
    /// The record owner the finding is about.
    pub name: String,
    /// Human-readable explanation with the paper citation.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity, self.code, self.name, self.message
        )
    }
}

/// What is known about the parent zone's copy of the delegation.
#[derive(Debug, Clone, Default)]
pub struct ParentInfo {
    /// The parent's NS TTL for this delegation, if known.
    pub ns_ttl: Option<Ttl>,
    /// The parent's glue A/AAAA TTL, if known.
    pub glue_ttl: Option<Ttl>,
}

/// Operational context that changes what "too short" means.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintContext {
    /// The zone intentionally runs short TTLs for load balancing or
    /// DDoS redirection (§6.1); suppresses the long-TTL advice.
    pub agility_required: bool,
}

/// Lints a zone's records. `origin` is the zone apex; `parent`
/// describes the delegation as published by the parent (if known).
pub fn lint_zone(
    origin: &Name,
    records: &[Record],
    parent: &ParentInfo,
    ctx: LintContext,
) -> Vec<LintFinding> {
    let mut findings = Vec::new();

    // Group into RRsets for TTL-coherence and type-level checks.
    let mut groups: BTreeMap<(Name, RecordType), Vec<&Record>> = BTreeMap::new();
    for r in records {
        groups
            .entry((r.name.clone(), r.record_type()))
            .or_default()
            .push(r);
    }

    // RFC 2181 §5.2: all members of an RRset must share one TTL.
    for ((name, rtype), members) in &groups {
        let ttls: Vec<u32> = members.iter().map(|r| r.ttl.as_secs()).collect();
        if ttls.windows(2).any(|w| w[0] != w[1]) {
            findings.push(LintFinding {
                severity: Severity::Error,
                code: "rrset-ttl-mismatch",
                name: name.to_string(),
                message: format!(
                    "{rtype} RRset members carry different TTLs {ttls:?}; resolvers will \
                     clamp to the minimum (RFC 2181 §5.2)"
                ),
            });
        }
    }

    // §5.1.2: TTL 0 undermines caching.
    for ((name, rtype), members) in &groups {
        if members.iter().any(|r| r.ttl.is_zero()) {
            findings.push(LintFinding {
                severity: Severity::Error,
                code: "ttl-zero",
                name: name.to_string(),
                message: format!(
                    "{rtype} record with TTL 0 disables caching entirely: higher latency \
                     for every client and no DDoS buffering (paper §5.1.2)"
                ),
            });
        }
    }

    // NS-TTL advice (§5.2, §6.3).
    let apex_ns: Vec<&&Record> = groups
        .get(&(origin.clone(), RecordType::NS))
        .map(|v| v.iter().collect())
        .unwrap_or_default();
    if apex_ns.is_empty() {
        findings.push(LintFinding {
            severity: Severity::Error,
            code: "no-apex-ns",
            name: origin.to_string(),
            message: "zone has no NS RRset at its apex".to_owned(),
        });
    }
    if let Some(ns) = apex_ns.first() {
        let t = ns.ttl.as_secs();
        if !ctx.agility_required {
            if t < 1_800 {
                findings.push(LintFinding {
                    severity: Severity::Warning,
                    code: "ns-ttl-short",
                    name: origin.to_string(),
                    message: format!(
                        "NS TTL is {t}s; unless you need DNS-based load balancing or DDoS \
                         redirection, the paper recommends at least one hour and ideally \
                         4–24h (§6.3). Operators running <30min TTLs mostly had not \
                         considered the implications (§5.2)"
                    ),
                });
            } else if t < 3_600 {
                findings.push(LintFinding {
                    severity: Severity::Info,
                    code: "ns-ttl-below-hour",
                    name: origin.to_string(),
                    message: format!("NS TTL is {t}s, below the paper's one-hour baseline (§6.3)"),
                });
            }
        }

        // §4.2: in-bailiwick server addresses cannot outlive the NS set.
        for ns_rec in &apex_ns {
            let RData::Ns(target) = &ns_rec.rdata else {
                continue;
            };
            if !target.is_subdomain_of(origin) {
                continue;
            }
            for addr_type in [RecordType::A, RecordType::AAAA] {
                if let Some(addrs) = groups.get(&(target.clone(), addr_type)) {
                    for a in addrs {
                        if a.ttl > ns_rec.ttl {
                            findings.push(LintFinding {
                                severity: Severity::Warning,
                                code: "inbailiwick-addr-outlives-ns",
                                name: target.to_string(),
                                message: format!(
                                    "in-bailiwick server address TTL {}s exceeds the NS TTL \
                                     {}s; most resolvers evict the address when the NS RRset \
                                     expires, so the extra lifetime is illusory (§4.2, §6.3)",
                                    a.ttl.as_secs(),
                                    ns_rec.ttl.as_secs()
                                ),
                            });
                        }
                    }
                }
            }
        }

        // §3: the parent's copy matters to the parent-centric minority.
        if let Some(parent_ns) = parent.ns_ttl {
            if parent_ns != ns.ttl {
                findings.push(LintFinding {
                    severity: Severity::Warning,
                    code: "parent-child-ttl-mismatch",
                    name: origin.to_string(),
                    message: format!(
                        "child NS TTL {}s differs from the parent's {}s; 10–48% of observed \
                         queries honour the parent's copy, so clients see a mix (§3). \
                         Configure both identically (§6.3)",
                        ns.ttl.as_secs(),
                        parent_ns.as_secs()
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.name.cmp(&b.name)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn rec(owner: &str, ttl: u32, rdata: RData) -> Record {
        Record::new(n(owner), Ttl::from_secs(ttl), rdata)
    }

    fn codes(findings: &[LintFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn healthy_zone_is_clean() {
        let records = vec![
            rec("example", 14_400, RData::Ns(n("ns1.example"))),
            rec("example", 14_400, RData::Ns(n("ns2.example"))),
            rec(
                "ns1.example",
                14_400,
                RData::A("192.0.2.1".parse().unwrap()),
            ),
            rec(
                "ns2.example",
                14_400,
                RData::A("192.0.2.2".parse().unwrap()),
            ),
        ];
        let findings = lint_zone(
            &n("example"),
            &records,
            &ParentInfo {
                ns_ttl: Some(Ttl::from_secs(14_400)),
                glue_ttl: None,
            },
            LintContext::default(),
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn uy_before_the_paper_triggers_the_short_ttl_warning() {
        let records = vec![
            rec("uy", 300, RData::Ns(n("a.nic.uy"))),
            rec("a.nic.uy", 120, RData::A("200.40.241.1".parse().unwrap())),
        ];
        let findings = lint_zone(
            &n("uy"),
            &records,
            &ParentInfo {
                ns_ttl: Some(Ttl::TWO_DAYS),
                glue_ttl: Some(Ttl::TWO_DAYS),
            },
            LintContext::default(),
        );
        let codes = codes(&findings);
        assert!(codes.contains(&"ns-ttl-short"));
        assert!(codes.contains(&"parent-child-ttl-mismatch"));
    }

    #[test]
    fn agility_context_suppresses_short_ttl_advice() {
        let records = vec![rec("cdn.example", 300, RData::Ns(n("ns1.cdn.example")))];
        let findings = lint_zone(
            &n("cdn.example"),
            &records,
            &ParentInfo::default(),
            LintContext {
                agility_required: true,
            },
        );
        assert!(!codes(&findings).contains(&"ns-ttl-short"));
    }

    #[test]
    fn ttl_zero_is_an_error() {
        let records = vec![
            rec("example", 3_600, RData::Ns(n("ns1.example"))),
            rec("www.example", 0, RData::A("192.0.2.1".parse().unwrap())),
        ];
        let findings = lint_zone(
            &n("example"),
            &records,
            &ParentInfo::default(),
            LintContext::default(),
        );
        let f = findings.iter().find(|f| f.code == "ttl-zero").unwrap();
        assert_eq!(f.severity, Severity::Error);
    }

    #[test]
    fn inbailiwick_address_outliving_ns_is_flagged() {
        // The §4.1 cachetest.net setup: NS 3600 s, glue A 7200 s.
        let records = vec![
            rec(
                "sub.cachetest.net",
                3_600,
                RData::Ns(n("ns1.sub.cachetest.net")),
            ),
            rec(
                "ns1.sub.cachetest.net",
                7_200,
                RData::A("18.184.0.20".parse().unwrap()),
            ),
        ];
        let findings = lint_zone(
            &n("sub.cachetest.net"),
            &records,
            &ParentInfo::default(),
            LintContext::default(),
        );
        assert!(codes(&findings).contains(&"inbailiwick-addr-outlives-ns"));
    }

    #[test]
    fn out_of_bailiwick_address_ttls_are_free() {
        let records = vec![
            rec("example.org", 3_600, RData::Ns(n("ns1.hoster.net"))),
            // The hoster's own records are not in this zone; an A for
            // some unrelated in-zone host with a longer TTL is fine.
            rec(
                "www.example.org",
                86_400,
                RData::A("192.0.2.1".parse().unwrap()),
            ),
        ];
        let findings = lint_zone(
            &n("example.org"),
            &records,
            &ParentInfo::default(),
            LintContext::default(),
        );
        assert!(!codes(&findings).contains(&"inbailiwick-addr-outlives-ns"));
    }

    #[test]
    fn rrset_ttl_mismatch_is_an_error() {
        let records = vec![
            rec("example", 3_600, RData::Ns(n("ns1.example"))),
            rec("example", 7_200, RData::Ns(n("ns2.example"))),
        ];
        let findings = lint_zone(
            &n("example"),
            &records,
            &ParentInfo::default(),
            LintContext::default(),
        );
        assert!(codes(&findings).contains(&"rrset-ttl-mismatch"));
    }

    #[test]
    fn missing_apex_ns_is_an_error() {
        let records = vec![rec(
            "www.example",
            3_600,
            RData::A("192.0.2.1".parse().unwrap()),
        )];
        let findings = lint_zone(
            &n("example"),
            &records,
            &ParentInfo::default(),
            LintContext::default(),
        );
        assert!(codes(&findings).contains(&"no-apex-ns"));
    }

    #[test]
    fn findings_sorted_by_severity() {
        let records = vec![
            rec("example", 1_900, RData::Ns(n("ns1.example"))), // info (below hour)
            rec("www.example", 0, RData::A("192.0.2.1".parse().unwrap())), // error
        ];
        let findings = lint_zone(
            &n("example"),
            &records,
            &ParentInfo::default(),
            LintContext::default(),
        );
        assert!(findings.len() >= 2);
        assert_eq!(findings[0].severity, Severity::Error);
    }
}
