//! Effective-TTL computation.
//!
//! "Which TTLs matter?" (§2 of the paper) answered as a function: given
//! the TTLs published in the parent and child and a resolver policy,
//! what cache lifetime does each kind of record actually get?

use crate::policy::{Centricity, ResolverPolicy};
use dnsttl_wire::Ttl;

/// Whether a zone's name servers are named inside or outside the zone
/// they serve (RFC 8499 "in bailiwick").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bailiwick {
    /// `ns1.example.org` serving `example.org`: glue records required;
    /// NS and address lifetimes are *coupled* in most resolvers (§4.2).
    In,
    /// `ns1.example.com` serving `example.org`: addresses fetched
    /// separately from the server's own zone and cached independently
    /// for their full TTL (§4.3).
    Out,
}

/// The TTLs a zone owner (and its parent) publish for a delegation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishedTtls {
    /// NS TTL in the parent zone (the delegation / glue TTL — 172 800 s
    /// for anything delegated from the root).
    pub parent_ns: Ttl,
    /// NS TTL in the child zone's own authoritative data.
    pub child_ns: Ttl,
    /// Address (A/AAAA) TTL for the name server host, as published by
    /// whoever owns that host's zone (the parent's glue for
    /// in-bailiwick, the host's own zone when out of bailiwick).
    pub parent_addr: Ttl,
    /// Address TTL in the child/host zone.
    pub child_addr: Ttl,
}

impl PublishedTtls {
    /// The `.uy` configuration before the paper's intervention (§3.2):
    /// root glue at 2 days, child NS at 300 s, child address at 120 s.
    pub fn uy_before() -> PublishedTtls {
        PublishedTtls {
            parent_ns: Ttl::TWO_DAYS,
            child_ns: Ttl::from_secs(300),
            parent_addr: Ttl::TWO_DAYS,
            child_addr: Ttl::from_secs(120),
        }
    }

    /// `.uy` after raising the child NS TTL to one day (§5.3).
    pub fn uy_after() -> PublishedTtls {
        PublishedTtls {
            parent_ns: Ttl::TWO_DAYS,
            child_ns: Ttl::DAY,
            parent_addr: Ttl::TWO_DAYS,
            child_addr: Ttl::DAY,
        }
    }
}

/// The cache lifetimes a resolver policy actually yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectiveTtl {
    /// Effective lifetime of the NS RRset in this resolver's cache.
    pub ns: Ttl,
    /// Effective lifetime of the name server's address record.
    pub addr: Ttl,
    /// True when the address's lifetime was shortened by NS-expiry
    /// coupling rather than by its own TTL.
    pub addr_coupled_to_ns: bool,
}

/// Computes the effective TTLs for one (resolver policy, zone
/// configuration) pair.
///
/// The rules condensed from the paper:
///
/// * a **child-centric** resolver uses the child's NS/address TTLs once
///   it has heard from the child (RFC 2181 §5.4.1 ranking);
/// * a **parent-centric** resolver keeps the referral's TTLs;
/// * policy caps/floors clamp whatever was chosen;
/// * **in-bailiwick** server addresses live at most as long as the NS
///   RRset when the policy links them (`link_inbailiwick_glue`) —
///   "in-domain servers have tied NS and A record cache times in
///   practice" (§4.2);
/// * **out-of-bailiwick** addresses always get their own full lifetime
///   (§4.3).
///
/// ```
/// use dnsttl_core::{effective_ttl, Bailiwick, PublishedTtls, ResolverPolicy};
/// // .uy before the change, seen by a default (child-centric) resolver:
/// let eff = effective_ttl(&ResolverPolicy::default(), &PublishedTtls::uy_before(), Bailiwick::In);
/// assert_eq!(eff.ns.as_secs(), 300);    // child NS TTL wins
/// assert_eq!(eff.addr.as_secs(), 120);  // shorter than NS, kept
/// ```
pub fn effective_ttl(
    policy: &ResolverPolicy,
    published: &PublishedTtls,
    bailiwick: Bailiwick,
) -> EffectiveTtl {
    let (ns_raw, addr_raw) = match policy.centricity {
        Centricity::ChildCentric => (published.child_ns, published.child_addr),
        Centricity::ParentCentric => (published.parent_ns, published.parent_addr),
    };
    let ns = policy.clamp_ttl(ns_raw);
    let mut addr = policy.clamp_ttl(addr_raw);
    let mut coupled = false;
    if bailiwick == Bailiwick::In && policy.link_inbailiwick_glue && addr > ns {
        addr = ns;
        coupled = true;
    }
    EffectiveTtl {
        ns,
        addr,
        addr_coupled_to_ns: coupled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ResolverPolicy;

    #[test]
    fn child_centric_uses_child_ttls() {
        let eff = effective_ttl(
            &ResolverPolicy::default(),
            &PublishedTtls::uy_before(),
            Bailiwick::In,
        );
        assert_eq!(eff.ns.as_secs(), 300);
        assert_eq!(eff.addr.as_secs(), 120);
        assert!(!eff.addr_coupled_to_ns);
    }

    #[test]
    fn parent_centric_uses_parent_ttls() {
        let eff = effective_ttl(
            &ResolverPolicy::parent_centric(),
            &PublishedTtls::uy_before(),
            Bailiwick::In,
        );
        assert_eq!(eff.ns, Ttl::TWO_DAYS);
        assert_eq!(eff.addr, Ttl::TWO_DAYS);
    }

    #[test]
    fn in_bailiwick_couples_long_addr_to_short_ns() {
        // The §4.2 setup: NS 3600 s, A 7200 s, in bailiwick. Effective
        // address lifetime collapses to the NS's 3600 s.
        let published = PublishedTtls {
            parent_ns: Ttl::HOUR,
            child_ns: Ttl::HOUR,
            parent_addr: Ttl::from_secs(7_200),
            child_addr: Ttl::from_secs(7_200),
        };
        let eff = effective_ttl(&ResolverPolicy::default(), &published, Bailiwick::In);
        assert_eq!(eff.addr, Ttl::HOUR);
        assert!(eff.addr_coupled_to_ns);
    }

    #[test]
    fn out_of_bailiwick_keeps_full_addr_lifetime() {
        // The §4.3 setup: same TTLs, server outside the zone. The
        // address keeps its full 7200 s.
        let published = PublishedTtls {
            parent_ns: Ttl::HOUR,
            child_ns: Ttl::HOUR,
            parent_addr: Ttl::from_secs(7_200),
            child_addr: Ttl::from_secs(7_200),
        };
        let eff = effective_ttl(&ResolverPolicy::default(), &published, Bailiwick::Out);
        assert_eq!(eff.addr.as_secs(), 7_200);
        assert!(!eff.addr_coupled_to_ns);
    }

    #[test]
    fn unlinked_policy_keeps_addr_even_in_bailiwick() {
        let policy = ResolverPolicy {
            link_inbailiwick_glue: false,
            ..ResolverPolicy::default()
        };
        let published = PublishedTtls {
            parent_ns: Ttl::HOUR,
            child_ns: Ttl::HOUR,
            parent_addr: Ttl::from_secs(7_200),
            child_addr: Ttl::from_secs(7_200),
        };
        let eff = effective_ttl(&policy, &published, Bailiwick::In);
        assert_eq!(eff.addr.as_secs(), 7_200);
    }

    #[test]
    fn capping_clamps_long_child_ttls() {
        // google.co: parent 900 s, child 345600 s; a Google-like
        // resolver caps the child value at 21599 s (Figure 2's step).
        let published = PublishedTtls {
            parent_ns: Ttl::from_secs(900),
            child_ns: Ttl::from_secs(345_600),
            parent_addr: Ttl::from_secs(900),
            child_addr: Ttl::from_secs(345_600),
        };
        let eff = effective_ttl(&ResolverPolicy::google_like(), &published, Bailiwick::Out);
        assert_eq!(eff.ns.as_secs(), 21_599);
    }

    #[test]
    fn coupling_never_lengthens_addr() {
        // NS longer than address: coupling must not extend the address.
        let published = PublishedTtls {
            parent_ns: Ttl::DAY,
            child_ns: Ttl::DAY,
            parent_addr: Ttl::HOUR,
            child_addr: Ttl::HOUR,
        };
        let eff = effective_ttl(&ResolverPolicy::default(), &published, Bailiwick::In);
        assert_eq!(eff.addr, Ttl::HOUR);
        assert!(!eff.addr_coupled_to_ns);
    }

    #[test]
    fn uy_after_change_yields_day_long_caches() {
        let eff = effective_ttl(
            &ResolverPolicy::default(),
            &PublishedTtls::uy_after(),
            Bailiwick::In,
        );
        assert_eq!(eff.ns, Ttl::DAY);
        assert_eq!(eff.addr, Ttl::DAY);
    }
}
