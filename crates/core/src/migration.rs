//! Migration planning: §6.1's "when deployments are planned in
//! advance… TTLs can be lowered 'just-before' a major operational
//! change, and raised again once accomplished" — as an executable
//! timeline.
//!
//! The subtlety the paper spends §3 and §4 establishing is that the
//! *configured* TTL is a lower bound on reality: parent-centric
//! resolvers ride the parent's copy, in-bailiwick addresses are pinned
//! to their NS RRset, and caps/floors mangle everything. A safe plan
//! must wait out the **worst** effective TTL across the resolver
//! population, not the zone file's number.

use crate::effective::{effective_ttl, Bailiwick, PublishedTtls};
use crate::policy::PolicyMix;
use dnsttl_wire::Ttl;

/// One step of a migration timeline, in seconds relative to "now".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationStep {
    /// Offset from plan start, seconds.
    pub at_secs: u64,
    /// What the operator does at this moment.
    pub action: String,
}

/// A complete migration plan for renumbering / re-hosting a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Ordered steps.
    pub steps: Vec<MigrationStep>,
    /// The worst-case effective TTL the plan waits out before the
    /// change (drives the lead time).
    pub worst_effective_ttl: Ttl,
    /// The worst-case drain time after the change (old records still
    /// being served somewhere).
    pub drain_ttl: Ttl,
    /// Caveats the operator must know (parent copies, coupling, …).
    pub caveats: Vec<String>,
}

impl MigrationPlan {
    /// Total wall-clock length of the plan.
    pub fn duration_secs(&self) -> u64 {
        self.steps.last().map(|s| s.at_secs).unwrap_or(0)
    }
}

/// Inputs to the planner.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// TTLs currently published for the records being changed.
    pub current: PublishedTtls,
    /// Where the zone's servers sit relative to the zone.
    pub bailiwick: Bailiwick,
    /// The transition TTL used during the migration window (the paper
    /// suggests minutes; 300 s is a common choice).
    pub transition_ttl: Ttl,
    /// The resolver population to plan against.
    pub population: PolicyMix,
    /// Whether the operator can update the parent's copy (registrars
    /// without EPP TTL support cannot — §6.3 notes EPP has no TTL
    /// field).
    pub can_update_parent: bool,
}

impl Default for MigrationSpec {
    fn default() -> MigrationSpec {
        MigrationSpec {
            current: PublishedTtls {
                parent_ns: Ttl::TWO_DAYS,
                child_ns: Ttl::DAY,
                parent_addr: Ttl::TWO_DAYS,
                child_addr: Ttl::DAY,
            },
            bailiwick: Bailiwick::In,
            transition_ttl: Ttl::from_secs(300),
            population: PolicyMix::paper_population(),
            can_update_parent: true,
        }
    }
}

/// The worst-case (longest) effective TTL any policy in the population
/// gives the address record under `published`.
pub fn worst_effective_addr_ttl(
    population: &PolicyMix,
    published: &PublishedTtls,
    bailiwick: Bailiwick,
) -> Ttl {
    population
        .entries()
        .iter()
        .filter(|(w, _)| *w > 0.0)
        .map(|(_, policy)| effective_ttl(policy, published, bailiwick).addr)
        .max()
        .unwrap_or(published.child_addr)
}

/// Builds the §6.1 timeline:
///
/// 1. **t = 0** — lower the TTLs (child, and parent where possible) to
///    the transition value;
/// 2. **wait** the worst-case *old* effective TTL: only then has every
///    conformant cache picked up the low TTL;
/// 3. **switch** the service;
/// 4. **wait** the worst-case *transition* effective TTL for the old
///    address to drain;
/// 5. **restore** long TTLs.
pub fn plan_migration(spec: &MigrationSpec) -> MigrationPlan {
    let mut caveats = Vec::new();

    // Phase 2 wait: worst effective TTL under the OLD publication.
    let worst_old = worst_effective_addr_ttl(&spec.population, &spec.current, spec.bailiwick);

    // During the window, what is effectively published?
    let transition = if spec.can_update_parent {
        PublishedTtls {
            parent_ns: spec.transition_ttl,
            child_ns: spec.transition_ttl,
            parent_addr: spec.transition_ttl,
            child_addr: spec.transition_ttl,
        }
    } else {
        // Parent copy stays long: parent-centric resolvers will not see
        // the low TTL at all.
        PublishedTtls {
            parent_ns: spec.current.parent_ns,
            parent_addr: spec.current.parent_addr,
            child_ns: spec.transition_ttl,
            child_addr: spec.transition_ttl,
        }
    };
    let worst_transition = worst_effective_addr_ttl(&spec.population, &transition, spec.bailiwick);

    if !spec.can_update_parent {
        caveats.push(format!(
            "the parent's copy cannot be updated (EPP carries no TTL field, §6.3): \
             parent-centric resolvers keep the old address for up to {} after the switch",
            spec.current.parent_addr
        ));
    }
    if spec.bailiwick == Bailiwick::In && spec.current.child_addr > spec.current.child_ns {
        caveats.push(format!(
            "in-bailiwick server: the address's effective TTL is already capped by the \
             NS RRset's {} (§4.2) — the configured {} never applied",
            spec.current.child_ns, spec.current.child_addr
        ));
    }
    let child_frac = spec.population.child_centric_fraction();
    if child_frac < 1.0 {
        caveats.push(format!(
            "{:.0}% of the population is parent-centric: keep parent and child copies \
             identical (§3)",
            (1.0 - child_frac) * 100.0
        ));
    }

    let t_lower = 0u64;
    let t_switch = worst_old.as_secs() as u64;
    let t_restore = t_switch + worst_transition.as_secs() as u64;

    let steps = vec![
        MigrationStep {
            at_secs: t_lower,
            action: format!(
                "lower TTLs to {} in the child zone{}",
                spec.transition_ttl,
                if spec.can_update_parent {
                    " and the parent's copy"
                } else {
                    " (parent copy unchanged!)"
                }
            ),
        },
        MigrationStep {
            at_secs: t_switch,
            action: format!(
                "old TTLs have drained everywhere (worst case {worst_old}); \
                 switch the service to the new address"
            ),
        },
        MigrationStep {
            at_secs: t_restore,
            action: format!(
                "transition TTLs have drained (worst case {worst_transition}); \
                 restore long TTLs and decommission the old address"
            ),
        },
    ];

    MigrationPlan {
        steps,
        worst_effective_ttl: worst_old,
        drain_ttl: worst_transition,
        caveats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ResolverPolicy;

    #[test]
    fn default_plan_has_three_phases_in_order() {
        let plan = plan_migration(&MigrationSpec::default());
        assert_eq!(plan.steps.len(), 3);
        assert!(plan.steps.windows(2).all(|w| w[0].at_secs < w[1].at_secs));
        // With 2-day parent copies and parent-centric resolvers in the
        // mix, the lead time is the parent's 2 days.
        assert_eq!(plan.worst_effective_ttl, Ttl::TWO_DAYS);
        assert_eq!(plan.duration_secs(), plan.steps[2].at_secs);
    }

    #[test]
    fn all_child_centric_population_waits_only_child_ttl() {
        let spec = MigrationSpec {
            population: PolicyMix::uniform(ResolverPolicy::default()),
            ..MigrationSpec::default()
        };
        let plan = plan_migration(&spec);
        // Child addr TTL 1 day, in-bailiwick coupled to NS 1 day.
        assert_eq!(plan.worst_effective_ttl, Ttl::DAY);
    }

    #[test]
    fn immutable_parent_extends_the_drain() {
        let spec = MigrationSpec {
            can_update_parent: false,
            ..MigrationSpec::default()
        };
        let plan = plan_migration(&spec);
        // Parent-centric resolvers ride the parent's 2-day copy right
        // through the transition window.
        assert_eq!(plan.drain_ttl, Ttl::TWO_DAYS);
        assert!(plan.caveats.iter().any(|c| c.contains("EPP")));
    }

    #[test]
    fn mutable_parent_shrinks_the_drain_to_transition_ttl() {
        let plan = plan_migration(&MigrationSpec::default());
        assert_eq!(plan.drain_ttl, Ttl::from_secs(300));
    }

    #[test]
    fn in_bailiwick_coupling_caveat_fires() {
        let spec = MigrationSpec {
            current: PublishedTtls {
                parent_ns: Ttl::TWO_DAYS,
                child_ns: Ttl::HOUR,
                parent_addr: Ttl::TWO_DAYS,
                child_addr: Ttl::from_secs(7_200),
            },
            ..MigrationSpec::default()
        };
        let plan = plan_migration(&spec);
        assert!(plan.caveats.iter().any(|c| c.contains("§4.2")));
    }

    #[test]
    fn worst_effective_ignores_zero_weight_entries() {
        let mix = PolicyMix::new(vec![
            (1.0, ResolverPolicy::default()),
            (0.0, ResolverPolicy::parent_centric()),
        ]);
        let worst = worst_effective_addr_ttl(&mix, &PublishedTtls::uy_before(), Bailiwick::In);
        // The zero-weight parent-centric entry must not drive the plan.
        assert_eq!(worst.as_secs(), 120);
    }

    #[test]
    fn caps_shorten_the_worst_case() {
        // A population that is 100% Google-like caps everything at
        // 21599 s, so even 2-day publications drain in ~6 h.
        let mix = PolicyMix::uniform(ResolverPolicy::google_like());
        let worst =
            worst_effective_addr_ttl(&mix, &MigrationSpec::default().current, Bailiwick::Out);
        assert_eq!(worst.as_secs(), 21_599);
    }
}
