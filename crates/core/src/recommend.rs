//! The §6 recommendation engine.
//!
//! The paper closes with operational guidance: longer TTLs for most
//! zones (hours, not minutes), short TTLs only where DNS-based load
//! balancing or DDoS redirection demands agility, equal parent/child
//! TTLs, and address TTLs no longer than NS TTLs for in-bailiwick
//! servers. [`recommend`] encodes that guidance as a function of a
//! zone's operational profile.

use crate::effective::Bailiwick;
use dnsttl_wire::Ttl;

/// Operational characteristics of a zone, as its owner knows them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneProfile {
    /// The zone participates in DNS-based load balancing (CDN-style
    /// request routing, §6.1 "shorter caching helps DNS-based load
    /// balancing").
    pub uses_dns_load_balancing: bool,
    /// The zone relies on DNS redirection into a DDoS scrubber, which
    /// must be able to take effect quickly (§6.1).
    pub uses_ddos_redirection: bool,
    /// The operator can schedule infrastructure changes in advance
    /// (lowering TTLs "just-before" a migration, §6.1).
    pub changes_planned_in_advance: bool,
    /// The zone is a TLD or other public registry whose delegations are
    /// copied into a parent zone (§6.3 "TLD and other registry
    /// operators").
    pub is_registry: bool,
    /// Where the zone's name servers are named, relative to the zone.
    pub ns_bailiwick: Option<Bailiwick>,
    /// DNS service is billed per query (§6.1 "lower cost if DNS is
    /// metered").
    pub metered_dns: bool,
}

/// A TTL recommendation with its reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtlRecommendation {
    /// Recommended NS-record TTL.
    pub ns_ttl: Ttl,
    /// Recommended address-record (A/AAAA) TTL.
    pub addr_ttl: Ttl,
    /// Whether parent and child copies must be kept identical.
    pub set_parent_and_child_identically: bool,
    /// Human-readable rationale, one line per consideration.
    pub rationale: Vec<String>,
}

/// Produces the paper's §6.3 recommendation for a zone profile.
///
/// * Agility-constrained zones (load balancing / DDoS redirection):
///   5-minute TTLs, 15 minutes when that is agile enough.
/// * Registries: at least one hour, preferably a day, in **both**
///   parent and child.
/// * Everyone else: hours — 4 h baseline, a day when changes are
///   planned in advance.
/// * In-bailiwick servers: address TTL ≤ NS TTL, because resolvers
///   will enforce that coupling anyway (§4.2).
///
/// ```
/// use dnsttl_core::{recommend, ZoneProfile};
/// let plain = recommend(&ZoneProfile::default());
/// assert!(plain.ns_ttl.as_secs() >= 3_600); // hours, not minutes
/// ```
pub fn recommend(profile: &ZoneProfile) -> TtlRecommendation {
    let mut rationale = Vec::new();

    let agile = profile.uses_dns_load_balancing || profile.uses_ddos_redirection;
    let (ns_ttl, mut addr_ttl) = if agile {
        if profile.uses_ddos_redirection {
            rationale.push(
                "DDoS redirection requires permanently low TTLs (attacks arrive unannounced); \
                 5 minutes balances agility against cache benefit"
                    .to_owned(),
            );
            (Ttl::from_secs(300), Ttl::from_secs(300))
        } else {
            rationale.push(
                "DNS-based load balancing wants short TTLs; 15 minutes provides sufficient \
                 agility for most operators (§6.3)"
                    .to_owned(),
            );
            (Ttl::from_secs(900), Ttl::from_secs(900))
        }
    } else if profile.is_registry {
        rationale.push(
            "registry delegations are duplicated in the parent; long TTLs (one day) maximise \
             caching for the whole subtree (§6.3)"
                .to_owned(),
        );
        (Ttl::DAY, Ttl::DAY)
    } else if profile.changes_planned_in_advance {
        rationale.push(
            "changes are planned in advance, so TTLs can be lowered just-before a migration; \
             a day-long TTL has little cost (§6.1)"
                .to_owned(),
        );
        (Ttl::DAY, Ttl::DAY)
    } else {
        rationale.push(
            "general zones benefit from hours-long TTLs: lower latency, less traffic, \
             more DDoS resilience (§6.3 recommends 4, 8 or 24 hours)"
                .to_owned(),
        );
        (Ttl::from_secs(4 * 3_600), Ttl::from_secs(4 * 3_600))
    };

    if profile.ns_bailiwick == Some(Bailiwick::In) && addr_ttl > ns_ttl {
        addr_ttl = ns_ttl;
        rationale.push(
            "in-bailiwick server addresses are evicted when the NS RRset expires, so an \
             address TTL above the NS TTL is illusory (§4.2)"
                .to_owned(),
        );
    }
    if profile.ns_bailiwick == Some(Bailiwick::Out) {
        rationale.push(
            "out-of-bailiwick server addresses are cached independently; their TTL may \
             differ from the NS TTL if desired (§4.3)"
                .to_owned(),
        );
    }
    if profile.metered_dns {
        rationale.push(
            "DNS service is metered per query; every point of cache hit rate is money (§6.1)"
                .to_owned(),
        );
    }

    // §3's headline: enough resolvers are parent-centric that the parent
    // copy always matters.
    let set_both = true;
    rationale.push(
        "10–48% of observed queries honour the parent's TTL, so parent and child copies \
         must be configured identically (§3)"
            .to_owned(),
    );

    TtlRecommendation {
        ns_ttl,
        addr_ttl,
        set_parent_and_child_identically: set_both,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_zone_gets_hours() {
        let rec = recommend(&ZoneProfile::default());
        assert!(rec.ns_ttl.as_secs() >= 4 * 3_600);
        assert!(rec.set_parent_and_child_identically);
    }

    #[test]
    fn ddos_redirection_gets_five_minutes() {
        let rec = recommend(&ZoneProfile {
            uses_ddos_redirection: true,
            ..ZoneProfile::default()
        });
        assert_eq!(rec.ns_ttl.as_secs(), 300);
    }

    #[test]
    fn load_balancing_gets_fifteen_minutes() {
        let rec = recommend(&ZoneProfile {
            uses_dns_load_balancing: true,
            ..ZoneProfile::default()
        });
        assert_eq!(rec.ns_ttl.as_secs(), 900);
    }

    #[test]
    fn ddos_trumps_load_balancing() {
        let rec = recommend(&ZoneProfile {
            uses_dns_load_balancing: true,
            uses_ddos_redirection: true,
            ..ZoneProfile::default()
        });
        assert_eq!(rec.ns_ttl.as_secs(), 300);
    }

    #[test]
    fn registry_gets_a_day() {
        let rec = recommend(&ZoneProfile {
            is_registry: true,
            ..ZoneProfile::default()
        });
        assert_eq!(rec.ns_ttl, Ttl::DAY);
    }

    #[test]
    fn planned_changes_allow_long_ttls() {
        let rec = recommend(&ZoneProfile {
            changes_planned_in_advance: true,
            ..ZoneProfile::default()
        });
        assert_eq!(rec.ns_ttl, Ttl::DAY);
    }

    #[test]
    fn in_bailiwick_caps_addr_at_ns() {
        let rec = recommend(&ZoneProfile {
            ns_bailiwick: Some(Bailiwick::In),
            ..ZoneProfile::default()
        });
        assert!(rec.addr_ttl <= rec.ns_ttl);
    }

    #[test]
    fn rationale_always_mentions_parent_centric_minority() {
        let rec = recommend(&ZoneProfile::default());
        assert!(rec.rationale.iter().any(|r| r.contains("parent")));
    }
}
