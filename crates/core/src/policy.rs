//! The resolver policy space.
//!
//! §3 and §4 of the paper show that "the resolver population" is really
//! a mixture of policies: most resolvers are child-centric, a sizable
//! minority is parent-centric (some deliberately, via RFC 7706 root
//! mirroring), some cap TTLs, some serve stale data, and some stick to a
//! server long past its TTL. [`ResolverPolicy`] names every knob, and
//! [`PolicyMix`] expresses a weighted population of them.

use dnsttl_wire::Ttl;

/// Which copy of a record (and thus which TTL) a resolver prefers when
/// the parent's glue and the child's authoritative data disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Centricity {
    /// Prefers the child zone's authoritative records (RFC 2181 §5.4.1
    /// ranking). ~90% of queries in the paper's `.uy` experiment (§3.2).
    ChildCentric,
    /// Uses the parent's referral data without re-fetching from the
    /// child. ~10% of queries in §3.2; OpenDNS behaves this way for
    /// out-of-bailiwick NS (§4.4).
    ParentCentric,
}

/// Which cache engine a resolver runs behind its policy.
///
/// The paper's vantage points differ in topology as much as in policy:
/// an ISP resolver fleet partitions clients across independent caches,
/// while an open resolver (Google DNS, OpenDNS) funnels many client
/// threads through one shared cache — the sharing is what drives its
/// hit-rate and centricity effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheBackendChoice {
    /// The single-threaded expiry-indexed cache (the proven oracle).
    #[default]
    Sequential,
    /// The concurrent backend: sharded-lock segments, hash-routed on
    /// the query name, safe to drive from many client threads.
    Shared,
}

/// A complete description of one resolver implementation's caching
/// behaviour — every behaviour the paper observes in the wild, as a
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolverPolicy {
    /// Parent- or child-centric TTL preference.
    pub centricity: Centricity,
    /// Cap applied to every cached TTL. Google Public DNS caps at
    /// 21 599 s (§3.3); BIND defaults to one week.
    pub ttl_cap: Option<Ttl>,
    /// Floor applied to every cached TTL (some resolvers refuse to
    /// cache for less than tens of seconds, limiting CDN agility, §6.1).
    pub ttl_floor: Option<Ttl>,
    /// If true, a still-valid cached address record for an
    /// **in-bailiwick** name server is discarded when its covering NS
    /// record expires — the dominant behaviour in §4.2.
    pub link_inbailiwick_glue: bool,
    /// Serve-stale: maximum extra lifetime (RFC 8767's `max-stale`)
    /// during which expired records are served when all authoritative
    /// servers are unreachable. A refresh is always attempted first;
    /// stale data only bridges failures.
    pub serve_stale: Option<Ttl>,
    /// RFC 2308 §7 / RFC 8767 §5 failure caching: when resolution fails
    /// with every server dead, cache the failure for this long (capped
    /// at 5 minutes per RFC 2308) and answer follow-up queries from it
    /// — stale data if serve-stale allows, SERVFAIL otherwise — instead
    /// of re-hammering dead servers on every client query.
    pub upstream_failure_ttl: Option<Ttl>,
    /// Exponential backoff on dead servers: after a server times out
    /// on every retry, skip it for `base × 2^(consecutive failures − 1)`
    /// seconds (capped at 64× base). `None` disables the memory — every
    /// resolution probes every candidate again.
    pub server_backoff: Option<Ttl>,
    /// RFC 7706 / LocalRoot: the resolver mirrors the root zone locally
    /// and never queries the roots; root-zone data (including TLD glue)
    /// behaves parent-centrically with full parent TTLs.
    pub local_root: bool,
    /// Sticky: keeps using a responsive server it has already chosen,
    /// re-resolving only on failure (§4.4's "sticky resolvers").
    pub sticky: bool,
    /// How many times a query to an unresponsive server is retried
    /// before trying the next server / giving up.
    pub retries: u8,
    /// DNSSEC validation: answers from signed zones must carry a
    /// verifiable RRSIG or the resolver returns SERVFAIL (bogus).
    /// Validation makes a resolver structurally child-centric for
    /// answers — glue is never signed (§2 of the paper).
    pub validate_dnssec: bool,
    /// Prefetch (Pappas et al., the paper's \[40\]): when a cache hit
    /// finds less than ~10% of the original TTL remaining, refresh the
    /// entry in the background so the next client never pays the miss.
    pub prefetch: bool,
    /// Positive-cache capacity in entries; `None` = unbounded. Under
    /// memory pressure the effective TTL becomes the eviction horizon
    /// (the paper's \[19\]).
    pub cache_capacity: Option<usize>,
    /// QNAME minimisation (RFC 7816): send parents only the next label
    /// (as an NS query) instead of the full question. Privacy-driven,
    /// with a caching side effect: intermediate NS sets get cached at
    /// answer rank.
    pub qname_minimization: bool,
    /// Which cache engine backs this resolver: the single-threaded
    /// oracle or the concurrent segment-locked backend.
    pub cache_backend: CacheBackendChoice,
    /// Lock segments for the shared backend (rounded up to a power of
    /// two, clamped to `[1, 256]`). Ignored by the sequential engine.
    pub cache_segments: usize,
    /// SLRU-style admission on the shared backend: cache hits promote
    /// entries into a protected tier that is only evicted once the
    /// probation tier drains. Off by default — admission changes
    /// victim choice, so the equivalence oracle runs without it.
    pub slru_admission: bool,
}

impl Default for ResolverPolicy {
    /// The RFC-faithful modern default: child-centric, one-week cap,
    /// glue-linking, no serve-stale, not sticky.
    fn default() -> ResolverPolicy {
        ResolverPolicy {
            centricity: Centricity::ChildCentric,
            ttl_cap: Some(Ttl::from_secs(604_800)),
            ttl_floor: None,
            link_inbailiwick_glue: true,
            serve_stale: None,
            upstream_failure_ttl: None,
            server_backoff: None,
            local_root: false,
            sticky: false,
            retries: 2,
            validate_dnssec: false,
            prefetch: false,
            cache_capacity: None,
            qname_minimization: false,
            cache_backend: CacheBackendChoice::Sequential,
            cache_segments: 8,
            slru_admission: false,
        }
    }
}

impl ResolverPolicy {
    /// BIND-like: child-centric, one-week maximum cache time (§3.4
    /// mentions BIND's default max-cache-ttl).
    pub fn bind_like() -> ResolverPolicy {
        ResolverPolicy::default()
    }

    /// Unbound-like: child-centric, one-day cap, glue-linked.
    pub fn unbound_like() -> ResolverPolicy {
        ResolverPolicy {
            ttl_cap: Some(Ttl::DAY),
            ..ResolverPolicy::default()
        }
    }

    /// Google-Public-DNS-like: child-centric but caps TTLs at 21 599 s —
    /// the step visible in the paper's Figure 2.
    pub fn google_like() -> ResolverPolicy {
        ResolverPolicy {
            ttl_cap: Some(Ttl::from_secs(21_599)),
            ..ResolverPolicy::default()
        }
    }

    /// OpenDNS-like: parent-centric (trusts delegation data without
    /// re-fetching from the child; §4.4 demonstrates this by taking the
    /// child offline), effectively mirroring the root.
    pub fn opendns_like() -> ResolverPolicy {
        ResolverPolicy {
            centricity: Centricity::ParentCentric,
            local_root: true,
            ..ResolverPolicy::default()
        }
    }

    /// A plainly parent-centric resolver (older/simpler software that
    /// reuses referral data for its full TTL).
    pub fn parent_centric() -> ResolverPolicy {
        ResolverPolicy {
            centricity: Centricity::ParentCentric,
            ..ResolverPolicy::default()
        }
    }

    /// A sticky resolver: child-centric but clings to responsive
    /// servers past TTL expiry (§4.4, Table 4).
    pub fn sticky() -> ResolverPolicy {
        ResolverPolicy {
            sticky: true,
            ..ResolverPolicy::default()
        }
    }

    /// A serve-stale resolver (answers from expired cache while the
    /// authoritatives are down, per draft-ietf-dnsop-serve-stale).
    pub fn serve_stale_like() -> ResolverPolicy {
        ResolverPolicy {
            serve_stale: Some(Ttl::DAY),
            ..ResolverPolicy::default()
        }
    }

    /// A fully hardened resolver, the RFC 8767 + RFC 2308 §7 resilience
    /// stack: one-day serve-stale, 30 s failure caching (RFC 8767's
    /// recommended failure recheck interval), and exponential backoff
    /// on dead servers starting at 1 s.
    pub fn hardened() -> ResolverPolicy {
        ResolverPolicy {
            serve_stale: Some(Ttl::DAY),
            upstream_failure_ttl: Some(Ttl::from_secs(30)),
            server_backoff: Some(Ttl::from_secs(1)),
            ..ResolverPolicy::default()
        }
    }

    /// A DNSSEC-validating resolver: child-centric by necessity, and
    /// strict about signatures (bogus data becomes SERVFAIL).
    pub fn validating() -> ResolverPolicy {
        ResolverPolicy {
            validate_dnssec: true,
            ..ResolverPolicy::default()
        }
    }

    /// A prefetching resolver (refresh-ahead on nearly-expired
    /// entries), after Pappas et al.'s resilience proposals.
    pub fn prefetching() -> ResolverPolicy {
        ResolverPolicy {
            prefetch: true,
            ..ResolverPolicy::default()
        }
    }

    /// A QNAME-minimising resolver (RFC 7816): parents never see the
    /// full question.
    pub fn minimizing() -> ResolverPolicy {
        ResolverPolicy {
            qname_minimization: true,
            ..ResolverPolicy::default()
        }
    }

    /// An open-resolver-style shared cache: one concurrent
    /// segment-locked cache serving every client thread, with SLRU
    /// admission shielding popular names from scan pressure.
    pub fn shared_cache() -> ResolverPolicy {
        ResolverPolicy {
            cache_backend: CacheBackendChoice::Shared,
            slru_admission: true,
            ..ResolverPolicy::default()
        }
    }

    /// Applies this policy's cap and floor to a received TTL.
    pub fn clamp_ttl(&self, ttl: Ttl) -> Ttl {
        let mut t = ttl;
        if let Some(cap) = self.ttl_cap {
            t = t.min(cap);
        }
        if let Some(floor) = self.ttl_floor {
            t = t.max(floor);
        }
        t
    }
}

/// A weighted mixture of resolver policies — the simulated population.
///
/// The default mixture is calibrated to the paper's observations:
/// roughly 90% child-centric behaviour in §3.2, a parent-centric
/// minority including RFC 7706 users, ~15% TTL capping visible in §3.3,
/// and the small sticky population of Table 4.
#[derive(Debug, Clone)]
pub struct PolicyMix {
    entries: Vec<(f64, ResolverPolicy)>,
}

impl PolicyMix {
    /// Builds a mixture from `(weight, policy)` pairs.
    ///
    /// # Panics
    /// Panics if no entry is given or any weight is negative.
    pub fn new(entries: Vec<(f64, ResolverPolicy)>) -> PolicyMix {
        assert!(!entries.is_empty(), "policy mix needs at least one entry");
        assert!(
            entries.iter().all(|(w, _)| *w >= 0.0),
            "negative weight in policy mix"
        );
        PolicyMix { entries }
    }

    /// The calibrated default population (see type-level docs).
    pub fn paper_population() -> PolicyMix {
        PolicyMix::new(vec![
            (0.62, ResolverPolicy::bind_like()),
            (0.10, ResolverPolicy::unbound_like()),
            (0.15, ResolverPolicy::google_like()),
            (0.055, ResolverPolicy::opendns_like()),
            (0.045, ResolverPolicy::parent_centric()),
            (0.03, ResolverPolicy::sticky()),
        ])
    }

    /// An all-child-centric population (controlled-experiment baseline).
    pub fn uniform(policy: ResolverPolicy) -> PolicyMix {
        PolicyMix::new(vec![(1.0, policy)])
    }

    /// The `(weight, policy)` entries.
    pub fn entries(&self) -> &[(f64, ResolverPolicy)] {
        &self.entries
    }

    /// Weights as a vector (for use with a weighted-index sampler).
    pub fn weights(&self) -> Vec<f64> {
        self.entries.iter().map(|(w, _)| *w).collect()
    }

    /// The policy at `index`.
    pub fn policy(&self, index: usize) -> &ResolverPolicy {
        &self.entries[index].1
    }

    /// Fraction of the population weight that is child-centric.
    pub fn child_centric_fraction(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|(w, _)| w).sum();
        let child: f64 = self
            .entries
            .iter()
            .filter(|(_, p)| p.centricity == Centricity::ChildCentric)
            .map(|(w, _)| w)
            .sum();
        child / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_child_centric_and_linked() {
        let p = ResolverPolicy::default();
        assert_eq!(p.centricity, Centricity::ChildCentric);
        assert!(p.link_inbailiwick_glue);
        assert!(!p.sticky);
    }

    #[test]
    fn google_profile_caps_at_21599() {
        let p = ResolverPolicy::google_like();
        assert_eq!(p.clamp_ttl(Ttl::from_secs(345_600)).as_secs(), 21_599);
        assert_eq!(p.clamp_ttl(Ttl::from_secs(900)).as_secs(), 900);
    }

    #[test]
    fn floor_raises_small_ttls() {
        let p = ResolverPolicy {
            ttl_floor: Some(Ttl::MINUTE),
            ..ResolverPolicy::default()
        };
        assert_eq!(p.clamp_ttl(Ttl::from_secs(5)).as_secs(), 60);
        assert_eq!(p.clamp_ttl(Ttl::HOUR), Ttl::HOUR);
    }

    #[test]
    fn opendns_profile_is_parent_centric_with_local_root() {
        let p = ResolverPolicy::opendns_like();
        assert_eq!(p.centricity, Centricity::ParentCentric);
        assert!(p.local_root);
    }

    #[test]
    fn paper_population_is_mostly_child_centric() {
        let mix = PolicyMix::paper_population();
        let f = mix.child_centric_fraction();
        assert!((0.85..0.95).contains(&f), "child-centric fraction {f}");
    }

    #[test]
    fn uniform_mix_has_single_entry() {
        let mix = PolicyMix::uniform(ResolverPolicy::default());
        assert_eq!(mix.entries().len(), 1);
        assert_eq!(mix.child_centric_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_panics() {
        PolicyMix::new(vec![]);
    }
}
