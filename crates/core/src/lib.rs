//! # dnsttl-core — the effective-TTL model
//!
//! The central insight of *Cache Me If You Can* (IMC 2019) is that the
//! TTL a zone owner writes in a zone file is **not** the cache lifetime
//! clients experience. The *effective TTL* emerges from the interaction
//! of:
//!
//! 1. **where** the record is served from (parent glue vs child
//!    authoritative data),
//! 2. **which** copy a resolver prefers ([`Centricity`]),
//! 3. **resolver policy** — caps, floors, serve-stale, stickiness
//!    ([`ResolverPolicy`]),
//! 4. **bailiwick coupling** — in-bailiwick server addresses expire with
//!    their covering NS records ([`Bailiwick`], §4 of the paper).
//!
//! This crate models that interaction analytically:
//!
//! * [`ResolverPolicy`] — the policy space observed in the wild, with
//!   named profiles for the behaviours the paper identifies (BIND-like
//!   child-centric resolvers, Google-style TTL capping, OpenDNS-style
//!   parent-centric root mirroring);
//! * [`EffectiveTtl`] and [`effective_ttl`] — compute the cache lifetime
//!   a given resolver policy yields for a record published with
//!   different parent/child TTLs;
//! * [`hit_rate`] and friends — the Jung-et-al-style analytic cache
//!   model that converts TTLs and query rates into hit ratios, latency
//!   expectations, and authoritative query volumes (the quantities in
//!   the paper's Table 10 and Figure 11);
//! * [`recommend()`](recommend::recommend) — the operator guidance of §6 as an executable
//!   decision procedure.
//!
//! The simulation crates (`dnsttl-resolver`, `dnsttl-atlas`) *implement*
//! these policies mechanically; this crate states them declaratively so
//! that experiments can compare "what the model predicts" with "what the
//! simulated population did".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod effective;
pub mod lint;
pub mod migration;
pub mod policy;
pub mod recommend;
pub mod tradeoff;

pub use effective::{effective_ttl, Bailiwick, EffectiveTtl, PublishedTtls};
pub use lint::{lint_zone, LintContext, LintFinding, ParentInfo, Severity};
pub use migration::{plan_migration, MigrationPlan, MigrationSpec, MigrationStep};
pub use policy::{CacheBackendChoice, Centricity, PolicyMix, ResolverPolicy};
pub use recommend::{recommend, TtlRecommendation, ZoneProfile};
pub use tradeoff::{
    authoritative_load, expected_latency_ms, hit_rate, miss_rate, traffic_reduction,
};
