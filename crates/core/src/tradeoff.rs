//! Analytic cache model: TTLs → hit rates, latency, server load.
//!
//! Jung, Berger, and Balakrishnan (INFOCOM 2003, the paper's \[26\])
//! modelled a TTL-based cache under Poisson arrivals: after each miss
//! the record is cached for `T` seconds, during which every query hits.
//! With query rate `λ`, a renewal argument gives an expected `λT`
//! hits per miss, so
//!
//! ```text
//! hit_rate(λ, T) = λT / (1 + λT)
//! ```
//!
//! The paper's §6.2 measures exactly the consequences of this curve:
//! raising TTL from 60 s to 86 400 s cut authoritative traffic by ~77%
//! and cut median latency by ~5× (Table 10, Figure 11). These functions
//! let examples and benches compute the predicted values next to the
//! simulated ones.

/// Analytic hit rate of a TTL cache under Poisson arrivals.
///
/// `rate_qps` is the aggregate query rate reaching the resolver for one
/// name; `ttl_secs` is the effective TTL. Both must be non-negative.
///
/// ```
/// use dnsttl_core::hit_rate;
/// assert!(hit_rate(0.1, 60.0) < hit_rate(0.1, 86_400.0));
/// assert_eq!(hit_rate(1.0, 0.0), 0.0); // TTL 0 ⇒ every query misses
/// ```
pub fn hit_rate(rate_qps: f64, ttl_secs: f64) -> f64 {
    assert!(rate_qps >= 0.0 && ttl_secs >= 0.0);
    let lt = rate_qps * ttl_secs;
    lt / (1.0 + lt)
}

/// Complement of [`hit_rate`]: the fraction of client queries that must
/// travel to an authoritative server.
pub fn miss_rate(rate_qps: f64, ttl_secs: f64) -> f64 {
    1.0 - hit_rate(rate_qps, ttl_secs)
}

/// Queries per second arriving at the authoritative, given the client
/// rate and effective TTL — Table 10's authoritative-side query counts,
/// as a rate.
pub fn authoritative_load(rate_qps: f64, ttl_secs: f64) -> f64 {
    rate_qps * miss_rate(rate_qps, ttl_secs)
}

/// Expected client-observed latency under the two-level model the paper
/// describes: hits are answered by the recursive in `hit_ms`, misses
/// cost an extra authoritative round trip of `miss_ms`.
pub fn expected_latency_ms(rate_qps: f64, ttl_secs: f64, hit_ms: f64, miss_ms: f64) -> f64 {
    let h = hit_rate(rate_qps, ttl_secs);
    h * hit_ms + (1.0 - h) * (hit_ms + miss_ms)
}

/// Traffic-reduction factor from changing `ttl_from` to `ttl_to` at a
/// fixed query rate: `1 - load(to)/load(from)`.
///
/// For the paper's controlled experiment (per-VP query every 600 s,
/// TTL 60 → 86 400 s) this predicts a reduction of the same ~75–80%
/// magnitude as Table 10's measured 77%.
pub fn traffic_reduction(rate_qps: f64, ttl_from: f64, ttl_to: f64) -> f64 {
    let from = authoritative_load(rate_qps, ttl_from);
    if from == 0.0 {
        return 0.0;
    }
    1.0 - authoritative_load(rate_qps, ttl_to) / from
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_is_monotone_in_ttl() {
        let mut prev = -1.0;
        for ttl in [0.0, 30.0, 60.0, 600.0, 3_600.0, 86_400.0] {
            let h = hit_rate(0.05, ttl);
            assert!(h > prev, "ttl {ttl}");
            assert!((0.0..1.0).contains(&h));
            prev = h;
        }
    }

    #[test]
    fn hit_rate_is_monotone_in_rate() {
        assert!(hit_rate(0.001, 600.0) < hit_rate(0.1, 600.0));
        assert!(hit_rate(0.1, 600.0) < hit_rate(10.0, 600.0));
    }

    #[test]
    fn ttl_zero_never_hits() {
        assert_eq!(hit_rate(100.0, 0.0), 0.0);
        assert_eq!(miss_rate(100.0, 0.0), 1.0);
    }

    #[test]
    fn rates_partition() {
        for (r, t) in [(0.01, 60.0), (0.5, 3_600.0), (2.0, 86_400.0)] {
            assert!((hit_rate(r, t) + miss_rate(r, t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moura2018_cache_rates_are_in_band() {
        // The paper's §7 cites Moura et al. 2018: ~70% cache hit rates
        // for TTLs of 1800–86400 s in production. With a plausible
        // per-name rate of one query per ~7 minutes, the analytic model
        // should put those TTLs in the same band.
        let rate = 1.0 / 420.0;
        let low = hit_rate(rate, 1_800.0);
        let high = hit_rate(rate, 86_400.0);
        assert!(low > 0.5 && low < 0.9, "low {low}");
        assert!(high > 0.95, "high {high}");
    }

    #[test]
    fn traffic_reduction_matches_paper_magnitude() {
        // Table 10: per-VP probing every 600 s; raising TTL 60 → 86400 s
        // reduced authoritative queries by ~77%. The steady-state
        // analytic model bounds the finite-horizon measurement from
        // above (a 1-hour run cannot amortise a 1-day TTL fully), so
        // the prediction must be at least the measured reduction.
        let reduction = traffic_reduction(1.0 / 600.0, 60.0, 86_400.0);
        assert!(
            (0.77..=1.0).contains(&reduction),
            "predicted reduction {reduction}"
        );
    }

    #[test]
    fn expected_latency_interpolates_endpoints() {
        let l_all_miss = expected_latency_ms(0.0, 0.0, 5.0, 100.0);
        assert!((l_all_miss - 105.0).abs() < 1e-9);
        // Huge TTL and rate → essentially every query hits.
        let l_all_hit = expected_latency_ms(10.0, 86_400.0, 5.0, 100.0);
        assert!((l_all_hit - 5.0).abs() < 0.1, "{l_all_hit}");
    }

    #[test]
    fn longer_ttl_lowers_latency_and_load() {
        let r = 0.02;
        assert!(
            expected_latency_ms(r, 86_400.0, 5.0, 100.0) < expected_latency_ms(r, 60.0, 5.0, 100.0)
        );
        assert!(authoritative_load(r, 86_400.0) < authoritative_load(r, 60.0));
    }
}
