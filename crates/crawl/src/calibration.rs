//! Per-list calibration constants.
//!
//! Every number here is traceable to the paper: Table 5 (sizes,
//! responsiveness, unique-record ratios), Figure 9 (TTL CDFs per record
//! type), Table 8 (TTL-zero counts), Table 9 (bailiwick splits), and
//! §5.1's prose (Umbrella's transient cloud names, the root's 80%
//! 1-or-2-day TTLs, human-chosen values "10 minutes and 1, 24, or 48
//! hours").

use crate::lists::ListKind;

/// The human-chosen TTL values that dominate Figure 9, in seconds.
pub const TTL_VALUES: [u32; 14] = [
    0, 30, 60, 300, 600, 900, 1_800, 3_600, 7_200, 14_400, 21_600, 43_200, 86_400, 172_800,
];

/// A TTL mixture: weights over [`TTL_VALUES`].
pub type TtlMix = [f64; 14];

/// NS-record TTL mixtures (child side), per list.
///
/// * Root: §5.1 "about 80% of records have TTLs of 1 or 2 days".
/// * Umbrella: "25% of its domains with NS records are under 1 minute".
/// * Alexa/Majestic: long-lived, centred on hours-to-days.
/// * .nl: ~40% below the parent's hour (§5.1), median 4 h (Table 7).
pub fn ns_ttl_mix(list: ListKind) -> TtlMix {
    match list {
        //                 0     30    60    300   600   900   1800  3600  7200  14400 21600 43200 86400 172800
        ListKind::Root => [
            0.000, 0.004, 0.006, 0.010, 0.010, 0.010, 0.010, 0.050, 0.030, 0.030, 0.020, 0.030,
            0.400, 0.400,
        ],
        ListKind::Alexa => [
            0.005, 0.010, 0.030, 0.060, 0.050, 0.020, 0.040, 0.180, 0.080, 0.080, 0.090, 0.070,
            0.230, 0.055,
        ],
        ListKind::Majestic => [
            0.004, 0.010, 0.025, 0.055, 0.045, 0.020, 0.040, 0.170, 0.080, 0.085, 0.095, 0.075,
            0.240, 0.056,
        ],
        ListKind::Umbrella => [
            0.005, 0.120, 0.130, 0.100, 0.060, 0.030, 0.050, 0.140, 0.060, 0.060, 0.060, 0.045,
            0.105, 0.035,
        ],
        ListKind::Nl => [
            0.001, 0.004, 0.015, 0.050, 0.060, 0.030, 0.080, 0.160, 0.090, 0.210, 0.070, 0.060,
            0.130, 0.040,
        ],
    }
}

/// A-record TTL mixtures: §5.1 "IP addresses are the shortest",
/// Table 7 gives `.nl` a 1 h median.
pub fn a_ttl_mix(list: ListKind) -> TtlMix {
    match list {
        ListKind::Root => [
            0.000, 0.004, 0.010, 0.020, 0.020, 0.010, 0.030, 0.100, 0.050, 0.050, 0.040, 0.060,
            0.330, 0.276,
        ],
        ListKind::Alexa => [
            0.001, 0.030, 0.100, 0.280, 0.110, 0.040, 0.070, 0.190, 0.050, 0.040, 0.030, 0.020,
            0.035, 0.004,
        ],
        ListKind::Majestic => [
            0.001, 0.025, 0.090, 0.250, 0.110, 0.040, 0.080, 0.210, 0.060, 0.045, 0.030, 0.022,
            0.033, 0.004,
        ],
        ListKind::Umbrella => [
            0.001, 0.090, 0.230, 0.280, 0.100, 0.030, 0.050, 0.120, 0.030, 0.020, 0.020, 0.010,
            0.017, 0.002,
        ],
        ListKind::Nl => [
            0.000, 0.005, 0.030, 0.090, 0.090, 0.060, 0.100, 0.370, 0.090, 0.060, 0.035, 0.030,
            0.035, 0.005,
        ],
    }
}

/// AAAA mixtures track A with slightly longer tails (Figure 9c).
pub fn aaaa_ttl_mix(list: ListKind) -> TtlMix {
    let mut mix = a_ttl_mix(list);
    // Shift a little weight from the minute-scale bins to hour-scale.
    mix[2] *= 0.7;
    mix[3] *= 0.8;
    mix[7] += 0.05;
    mix[9] += 0.03;
    mix
}

/// MX mixtures: mail is provisioned manually; hours dominate
/// (Table 7: 1 h median for `.nl`).
pub fn mx_ttl_mix(_list: ListKind) -> TtlMix {
    [
        0.001, 0.004, 0.020, 0.080, 0.060, 0.030, 0.100, 0.330, 0.100, 0.090, 0.060, 0.050, 0.065,
        0.010,
    ]
}

/// DNSKEY mixtures: "NS and DNSKEY records tend to be the longest
/// lived" (§5.1).
pub fn dnskey_ttl_mix(_list: ListKind) -> TtlMix {
    [
        0.001, 0.002, 0.007, 0.020, 0.020, 0.010, 0.040, 0.250, 0.090, 0.120, 0.080, 0.080, 0.250,
        0.030,
    ]
}

/// Per-list population parameters from Table 5 / Table 9.
#[derive(Debug, Clone)]
pub struct ListParams {
    /// Domains in the full-scale list.
    pub domains: usize,
    /// Fraction of domains that answer at all (Table 5 "ratio").
    pub responsive: f64,
    /// Probability that a responsive domain's NS query returns a CNAME
    /// instead (Table 9; Umbrella's FQDNs do this massively).
    pub cname_on_ns: f64,
    /// Probability of an SOA-instead-of-NS answer (Table 9).
    pub soa_on_ns: f64,
    /// Fraction of NS-responding domains whose servers are all out of
    /// bailiwick (Table 9 "percent out").
    pub out_only: f64,
    /// Of the remainder, fraction purely in bailiwick (vs mixed).
    pub in_only_of_rest: f64,
    /// Probability a domain publishes AAAA records.
    pub has_aaaa: f64,
    /// Probability a domain publishes MX records.
    pub has_mx: f64,
    /// Probability a domain publishes DNSKEY records (DNSSEC).
    pub has_dnskey: f64,
    /// Size of the hosting-provider NS pool; smaller pool ⇒ higher
    /// sharing ⇒ higher Table 5 "ratio" (total/unique). `.nl`'s ratio
    /// of 190 comes from mass low-cost shared hosting.
    pub ns_pool: usize,
    /// Size of the address pool A records draw from.
    pub addr_pool: usize,
}

/// The calibrated parameters for each list.
pub fn list_params(list: ListKind) -> ListParams {
    match list {
        ListKind::Alexa => ListParams {
            domains: 1_000_000,
            responsive: 0.99,
            cname_on_ns: 0.052,
            soa_on_ns: 0.013,
            out_only: 0.950,
            in_only_of_rest: 0.81,
            has_aaaa: 0.28,
            has_mx: 0.65,
            has_dnskey: 0.043,
            ns_pool: 135_000,
            addr_pool: 290_000,
        },
        ListKind::Majestic => ListParams {
            domains: 1_000_000,
            responsive: 0.93,
            cname_on_ns: 0.008,
            soa_on_ns: 0.009,
            out_only: 0.957,
            in_only_of_rest: 0.72,
            has_aaaa: 0.22,
            has_mx: 0.63,
            has_dnskey: 0.041,
            ns_pool: 115_000,
            addr_pool: 270_000,
        },
        ListKind::Umbrella => ListParams {
            domains: 1_000_000,
            responsive: 0.78,
            cname_on_ns: 0.578,
            soa_on_ns: 0.075,
            out_only: 0.901,
            in_only_of_rest: 0.75,
            has_aaaa: 0.37,
            has_mx: 0.39,
            has_dnskey: 0.015,
            ns_pool: 53_000,
            addr_pool: 225_000,
        },
        ListKind::Nl => ListParams {
            domains: 5_582_431,
            responsive: 0.94,
            cname_on_ns: 0.002,
            soa_on_ns: 0.002,
            out_only: 0.997,
            in_only_of_rest: 0.81,
            has_aaaa: 0.38,
            has_mx: 0.72,
            has_dnskey: 0.66,
            ns_pool: 37_000,
            addr_pool: 137_000,
        },
        ListKind::Root => ListParams {
            domains: 1_562,
            responsive: 0.97,
            cname_on_ns: 0.0,
            soa_on_ns: 0.0,
            out_only: 0.487,
            in_only_of_rest: 0.83,
            has_aaaa: 0.96,
            has_mx: 0.03,
            has_dnskey: 0.92,
            ns_pool: 2_100,
            addr_pool: 1_600,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_of(mix: &TtlMix) -> u32 {
        let total: f64 = mix.iter().sum();
        let mut acc = 0.0;
        for (i, w) in mix.iter().enumerate() {
            acc += w;
            if acc >= total / 2.0 {
                return TTL_VALUES[i];
            }
        }
        *TTL_VALUES.last().unwrap()
    }

    #[test]
    fn mixtures_are_normalised_enough() {
        for list in ListKind::ALL {
            for mix in [
                ns_ttl_mix(list),
                a_ttl_mix(list),
                aaaa_ttl_mix(list),
                mx_ttl_mix(list),
                dnskey_ttl_mix(list),
            ] {
                let sum: f64 = mix.iter().sum();
                assert!((0.9..1.1).contains(&sum), "{list:?} sum {sum}");
                assert!(mix.iter().all(|&w| w >= 0.0));
            }
        }
    }

    #[test]
    fn root_ns_ttls_are_mostly_a_day_or_two() {
        let mix = ns_ttl_mix(ListKind::Root);
        let long = mix[12] + mix[13];
        assert!((0.75..0.9).contains(&long), "long fraction {long}");
    }

    #[test]
    fn umbrella_ns_has_sub_minute_mass() {
        let mix = ns_ttl_mix(ListKind::Umbrella);
        let sub_min: f64 = mix[..3].iter().sum();
        assert!((0.2..0.3).contains(&sub_min), "sub-minute {sub_min}");
    }

    #[test]
    fn a_records_shorter_than_ns() {
        for list in [
            ListKind::Alexa,
            ListKind::Majestic,
            ListKind::Umbrella,
            ListKind::Nl,
        ] {
            assert!(
                median_of(&a_ttl_mix(list)) <= median_of(&ns_ttl_mix(list)),
                "{list:?}"
            );
        }
    }

    #[test]
    fn nl_a_median_is_one_hour() {
        assert_eq!(median_of(&a_ttl_mix(ListKind::Nl)), 3_600);
    }

    #[test]
    fn params_match_table5_magnitudes() {
        let alexa = list_params(ListKind::Alexa);
        assert_eq!(alexa.domains, 1_000_000);
        assert!((0.98..1.0).contains(&alexa.responsive));
        let umbrella = list_params(ListKind::Umbrella);
        assert!(umbrella.responsive < 0.8);
        let root = list_params(ListKind::Root);
        assert!((0.4..0.6).contains(&root.out_only));
    }
}
