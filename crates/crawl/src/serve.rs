//! Materialising synthetic domains into servable zones.
//!
//! The paper's crawler queried real authoritative servers; our
//! generator produces [`CrawledDomain`] records directly. To keep the
//! generator honest, this module converts a generated domain into an
//! actual [`Zone`] behind an [`AuthoritativeServer`] and re-derives the
//! crawl view by *querying* it — the test suite samples every list and
//! asserts the round trip is lossless (same record sets, same TTLs,
//! same bailiwick classification).

use crate::bailiwick::BailiwickClass;
use crate::lists::{CrawledDomain, CrawledRecord};
use dnsttl_auth::{AuthoritativeServer, Zone};
use dnsttl_netsim::{ClientId, DnsService, Region, SimTime};
use dnsttl_wire::{Message, Name, RData, Record, RecordType, Ttl};

/// Builds the zone a responsive, NS-answering domain would serve.
///
/// Returns `None` for unresponsive domains and for the CNAME/SOA-on-NS
/// populations (those names live inside someone else's zone; there is
/// no zone of their own to build).
pub fn materialize_zone(domain: &CrawledDomain) -> Option<Zone> {
    if !domain.responds_ns() {
        return None;
    }
    let origin = Name::parse(&domain.name).ok()?;
    let mut zone = Zone::new(origin.clone());
    for r in &domain.records {
        let rdata = match r.rtype {
            RecordType::NS => RData::Ns(Name::parse(&r.value).ok()?),
            RecordType::A => RData::A(r.value.parse().ok()?),
            RecordType::AAAA => RData::Aaaa(r.value.parse().ok()?),
            RecordType::MX => RData::Mx {
                preference: 10,
                exchange: Name::parse(&r.value).ok()?,
            },
            RecordType::DNSKEY => RData::Dnskey {
                flags: 257,
                protocol: 3,
                algorithm: 13,
                key: r.value.clone().into_bytes(),
            },
            RecordType::CNAME => RData::Cname(Name::parse(&r.value).ok()?),
            _ => continue,
        };
        zone.add(Record::new(origin.clone(), Ttl::from_secs(r.ttl), rdata));
    }
    Some(zone)
}

/// Queries a materialised domain's server for every crawled type and
/// reconstructs the [`CrawledRecord`] view, exactly as the crawler
/// would from the wire.
pub fn crawl_served_domain(domain: &CrawledDomain) -> Option<Vec<CrawledRecord>> {
    let zone = materialize_zone(domain)?;
    let origin = zone.origin().clone();
    let mut server = AuthoritativeServer::new(domain.name.clone()).with_zone(zone);
    let client = ClientId {
        region: Region::Eu,
        tag: 0,
    };
    let mut out = Vec::new();
    for rtype in crate::crawler::CRAWLED_TYPES {
        let q = Message::iterative_query(1, origin.clone(), rtype);
        let response = server.handle_query(&q, client, SimTime::ZERO);
        for r in &response.answers {
            if r.record_type() != rtype {
                continue;
            }
            let value = match &r.rdata {
                RData::Ns(n) | RData::Cname(n) => {
                    let mut s = n.to_string();
                    s.pop(); // crawler stores names without trailing dot
                    s
                }
                RData::A(a) => a.to_string(),
                RData::Aaaa(a) => a.to_string(),
                RData::Mx { exchange, .. } => {
                    let mut s = exchange.to_string();
                    s.pop();
                    s
                }
                RData::Dnskey { key, .. } => String::from_utf8_lossy(key).into_owned(),
                other => other.to_string(),
            };
            out.push(CrawledRecord {
                rtype,
                ttl: r.ttl.as_secs(),
                value,
            });
        }
    }
    Some(out)
}

/// Re-derives the bailiwick classification by parsing the served NS
/// targets, for cross-checking the generator's label.
pub fn served_bailiwick(domain: &CrawledDomain) -> Option<BailiwickClass> {
    let records = crawl_served_domain(domain)?;
    let origin = Name::parse(&domain.name).ok()?;
    let targets: Vec<Name> = records
        .iter()
        .filter(|r| r.rtype == RecordType::NS)
        .filter_map(|r| Name::parse(&r.value).ok())
        .collect();
    BailiwickClass::classify(&origin, &targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::{ListKind, ListSpec};
    use dnsttl_netsim::SimRng;
    use std::collections::BTreeSet;

    fn sample(kind: ListKind, size: usize) -> Vec<CrawledDomain> {
        let mut rng = SimRng::seed_from(99);
        ListSpec { kind, size }.generate(&mut rng)
    }

    fn as_set(records: &[CrawledRecord]) -> BTreeSet<(String, u32, String)> {
        records
            .iter()
            .map(|r| (r.rtype.to_string(), r.ttl, r.value.clone()))
            .collect()
    }

    #[test]
    fn served_view_matches_generated_view_across_lists() {
        for kind in ListKind::ALL {
            let domains = sample(kind, 300);
            let mut checked = 0;
            for d in domains.iter().filter(|d| d.responds_ns()).take(40) {
                let served =
                    crawl_served_domain(d).unwrap_or_else(|| panic!("{} must materialize", d.name));
                assert_eq!(
                    as_set(&served),
                    as_set(&d.records),
                    "{:?} domain {} served ≠ generated",
                    kind,
                    d.name
                );
                checked += 1;
            }
            assert!(checked > 10, "{kind:?}: too few NS-responding domains");
        }
    }

    #[test]
    fn bailiwick_labels_agree_with_served_ns_targets() {
        for kind in [ListKind::Alexa, ListKind::Root, ListKind::Nl] {
            let domains = sample(kind, 400);
            for d in domains.iter().filter(|d| d.responds_ns()).take(60) {
                let derived = served_bailiwick(d).expect("classifiable");
                assert_eq!(
                    Some(derived),
                    d.bailiwick,
                    "{kind:?} domain {} label mismatch",
                    d.name
                );
            }
        }
    }

    #[test]
    fn unresponsive_and_cname_domains_do_not_materialize() {
        let domains = sample(ListKind::Umbrella, 500);
        let unresponsive = domains.iter().find(|d| !d.responsive).expect("some fail");
        assert!(materialize_zone(unresponsive).is_none());
        let cname = domains
            .iter()
            .find(|d| d.cname_on_ns)
            .expect("umbrella has CNAMEs");
        assert!(materialize_zone(cname).is_none());
    }

    #[test]
    fn served_ttls_are_intact() {
        // TTLs must survive the zone → wire → crawl path bit-for-bit
        // (the crawler reads fresh authoritative answers).
        let domains = sample(ListKind::Nl, 200);
        let d = domains.iter().find(|d| d.responds_ns()).unwrap();
        let served = crawl_served_domain(d).unwrap();
        for r in &served {
            assert!(
                d.records
                    .iter()
                    .any(|g| g.rtype == r.rtype && g.ttl == r.ttl),
                "TTL {} for {} not in generated set",
                r.ttl,
                r.rtype
            );
        }
    }
}
