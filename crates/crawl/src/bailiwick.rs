//! Bailiwick classification of NS sets (Table 9).

use dnsttl_wire::Name;

/// How a domain's name servers relate to the domain itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BailiwickClass {
    /// Every NS target is outside the domain (the overwhelming case for
    /// popular lists: >90% in Table 9).
    OutOnly,
    /// Every NS target is inside the domain (requires glue).
    InOnly,
    /// Some in, some out.
    Mixed,
}

impl BailiwickClass {
    /// Classifies from counts of in- and out-of-bailiwick servers.
    ///
    /// # Panics
    /// Panics when both counts are zero — an empty NS set has no
    /// bailiwick.
    pub fn from_counts(in_count: usize, out_count: usize) -> BailiwickClass {
        match (in_count, out_count) {
            (0, 0) => panic!("empty NS set has no bailiwick class"),
            (_, 0) => BailiwickClass::InOnly,
            (0, _) => BailiwickClass::OutOnly,
            _ => BailiwickClass::Mixed,
        }
    }

    /// Classifies a domain's NS target names directly.
    pub fn classify(domain: &Name, ns_targets: &[Name]) -> Option<BailiwickClass> {
        if ns_targets.is_empty() {
            return None;
        }
        let in_count = ns_targets
            .iter()
            .filter(|t| t.is_subdomain_of(domain))
            .count();
        Some(BailiwickClass::from_counts(
            in_count,
            ns_targets.len() - in_count,
        ))
    }

    /// Table 9 row label.
    pub fn label(self) -> &'static str {
        match self {
            BailiwickClass::OutOnly => "Out only",
            BailiwickClass::InOnly => "In only",
            BailiwickClass::Mixed => "Mixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn classify_by_names() {
        let domain = n("example.org");
        assert_eq!(
            BailiwickClass::classify(&domain, &[n("ns1.example.org"), n("ns2.example.org")]),
            Some(BailiwickClass::InOnly)
        );
        assert_eq!(
            BailiwickClass::classify(&domain, &[n("ns1.hoster.net")]),
            Some(BailiwickClass::OutOnly)
        );
        assert_eq!(
            BailiwickClass::classify(&domain, &[n("ns1.example.org"), n("ns1.hoster.net")]),
            Some(BailiwickClass::Mixed)
        );
        assert_eq!(BailiwickClass::classify(&domain, &[]), None);
    }

    #[test]
    fn suffix_collision_is_out() {
        let domain = n("example.org");
        assert_eq!(
            BailiwickClass::classify(&domain, &[n("ns1.notexample.org")]),
            Some(BailiwickClass::OutOnly)
        );
    }

    #[test]
    #[should_panic(expected = "empty NS set")]
    fn empty_counts_panic() {
        BailiwickClass::from_counts(0, 0);
    }
}
