//! Synthetic list generation and the crawled-domain record.

use crate::bailiwick::BailiwickClass;
use crate::calibration::{self, TTL_VALUES};
use crate::content::ContentCategory;
use dnsttl_netsim::SimRng;
use dnsttl_wire::RecordType;

/// The five populations the paper crawls (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListKind {
    /// Alexa top 1M second-level domains.
    Alexa,
    /// Majestic Million second-level domains.
    Majestic,
    /// Cisco Umbrella top 1M FQDNs (cloud/CDN heavy).
    Umbrella,
    /// The `.nl` ccTLD zone (5.58 M domains).
    Nl,
    /// The root zone's 1 562 TLD delegations.
    Root,
}

impl ListKind {
    /// All lists in the paper's column order.
    pub const ALL: [ListKind; 5] = [
        ListKind::Alexa,
        ListKind::Majestic,
        ListKind::Umbrella,
        ListKind::Nl,
        ListKind::Root,
    ];

    /// Display name matching the paper's table headers.
    pub fn name(self) -> &'static str {
        match self {
            ListKind::Alexa => "Alexa",
            ListKind::Majestic => "Majestic",
            ListKind::Umbrella => "Umbrella",
            ListKind::Nl => ".nl",
            ListKind::Root => "Root",
        }
    }

    /// The "format" row of Table 5.
    pub fn format(self) -> &'static str {
        match self {
            ListKind::Alexa | ListKind::Majestic | ListKind::Nl => "2LD",
            ListKind::Umbrella => "FQDN",
            ListKind::Root => "TLD",
        }
    }
}

/// One record as the crawler observed it at the child authoritative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawledRecord {
    /// Record type.
    pub rtype: RecordType,
    /// Observed TTL, seconds.
    pub ttl: u32,
    /// The record value (server name, address, …); uniqueness over
    /// these produces Table 5's "unique" rows.
    pub value: String,
}

/// One domain's crawl result.
#[derive(Debug, Clone)]
pub struct CrawledDomain {
    /// The domain name.
    pub name: String,
    /// False if no query got an answer (Table 5 "discarded").
    pub responsive: bool,
    /// True when the NS query returned a CNAME (Table 9 row "CNAME").
    pub cname_on_ns: bool,
    /// True when the NS query returned an SOA (Table 9 row "SOA").
    pub soa_on_ns: bool,
    /// All records retrieved from the child authoritative.
    pub records: Vec<CrawledRecord>,
    /// Bailiwick classification of the NS set (Table 9).
    pub bailiwick: Option<BailiwickClass>,
    /// DMap-style content category, only for `.nl` (Tables 6–7).
    pub category: Option<ContentCategory>,
}

impl CrawledDomain {
    /// Records of one type.
    pub fn records_of(&self, rtype: RecordType) -> impl Iterator<Item = &CrawledRecord> {
        self.records.iter().filter(move |r| r.rtype == rtype)
    }

    /// True if the domain answered the NS query with NS records.
    pub fn responds_ns(&self) -> bool {
        self.responsive && !self.cname_on_ns && !self.soa_on_ns && self.bailiwick.is_some()
    }
}

/// Generation parameters for one synthetic list.
#[derive(Debug, Clone)]
pub struct ListSpec {
    /// Which population.
    pub kind: ListKind,
    /// How many domains to generate (scaled-down or full).
    pub size: usize,
}

impl ListSpec {
    /// Full paper-scale size.
    pub fn paper_scale(kind: ListKind) -> ListSpec {
        ListSpec {
            kind,
            size: calibration::list_params(kind).domains,
        }
    }

    /// Scaled by `factor` (the root is small and never scaled down).
    pub fn scaled(kind: ListKind, factor: f64) -> ListSpec {
        let full = calibration::list_params(kind).domains;
        let size = if kind == ListKind::Root {
            full
        } else {
            ((full as f64 * factor) as usize).max(1_000)
        };
        ListSpec { kind, size }
    }

    /// Generates the synthetic population.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<CrawledDomain> {
        let params = calibration::list_params(self.kind);
        let scale = self.size as f64 / params.domains as f64;
        let ns_pool = ((params.ns_pool as f64 * scale).ceil() as usize).max(16);
        let addr_pool = ((params.addr_pool as f64 * scale).ceil() as usize).max(16);

        let ns_mix = calibration::ns_ttl_mix(self.kind);
        let a_mix = calibration::a_ttl_mix(self.kind);
        let aaaa_mix = calibration::aaaa_ttl_mix(self.kind);
        let mx_mix = calibration::mx_ttl_mix(self.kind);
        let dnskey_mix = calibration::dnskey_ttl_mix(self.kind);

        let sample_ttl = |rng: &mut SimRng, mix: &calibration::TtlMix| -> u32 {
            TTL_VALUES[rng.weighted_index(mix)]
        };

        let mut out = Vec::with_capacity(self.size);
        for i in 0..self.size {
            let name = match self.kind {
                ListKind::Alexa => format!("alexa{i}.example"),
                ListKind::Majestic => format!("majestic{i}.example"),
                ListKind::Umbrella => format!("host{i}.svc{}.cloud.example", i % 977),
                ListKind::Nl => format!("domein{i}.nl"),
                ListKind::Root => format!("tld{i}"),
            };
            let responsive = rng.chance(params.responsive);
            if !responsive {
                out.push(CrawledDomain {
                    name,
                    responsive: false,
                    cname_on_ns: false,
                    soa_on_ns: false,
                    records: Vec::new(),
                    bailiwick: None,
                    category: None,
                });
                continue;
            }

            let cname_on_ns = rng.chance(params.cname_on_ns);
            let soa_on_ns = !cname_on_ns && rng.chance(params.soa_on_ns);
            let mut records = Vec::new();
            let mut bailiwick = None;

            // `.nl` content category, biasing TTLs per Table 7.
            let category = if self.kind == ListKind::Nl {
                Some(ContentCategory::sample(rng))
            } else {
                None
            };

            if cname_on_ns {
                records.push(CrawledRecord {
                    rtype: RecordType::CNAME,
                    ttl: sample_ttl(rng, &a_mix),
                    value: format!("edge{}.cdn.example", rng.below(addr_pool as u64)),
                });
            } else if !soa_on_ns {
                // NS set: 2–4 servers from the provider pool (Zipf for
                // shared hosting: a few providers serve huge swaths).
                let ns_count = 2 + rng.below(3) as usize;
                let ns_ttl = category
                    .map(|c| c.bias_ns_ttl(sample_ttl(rng, &ns_mix)))
                    .unwrap_or_else(|| sample_ttl(rng, &ns_mix));
                let out_only = rng.chance(params.out_only);
                let in_only = !out_only && rng.chance(params.in_only_of_rest);
                let mut in_count = 0usize;
                for k in 0..ns_count {
                    let in_bailiwick = if out_only {
                        false
                    } else if in_only {
                        true
                    } else {
                        // Mixed: first server in, rest out.
                        k == 0
                    };
                    let value = if in_bailiwick {
                        in_count += 1;
                        format!("ns{k}.{name}")
                    } else {
                        format!("ns{k}.provider{}.example", rng.zipf(ns_pool, 1.25))
                    };
                    records.push(CrawledRecord {
                        rtype: RecordType::NS,
                        ttl: ns_ttl,
                        value,
                    });
                }
                bailiwick = Some(BailiwickClass::from_counts(in_count, ns_count - in_count));

                // Address records.
                let a_ttl = sample_ttl(rng, &a_mix);
                let a_count = 1 + rng.below(2) as usize;
                for _ in 0..a_count {
                    records.push(CrawledRecord {
                        rtype: RecordType::A,
                        ttl: a_ttl,
                        value: format!(
                            "192.0.{}.{}",
                            rng.below(addr_pool as u64 / 250 + 1),
                            rng.below(250)
                        ),
                    });
                }
                if rng.chance(params.has_aaaa) {
                    records.push(CrawledRecord {
                        rtype: RecordType::AAAA,
                        ttl: sample_ttl(rng, &aaaa_mix),
                        value: format!("2001:db8::{:x}", 1 + rng.below(addr_pool as u64)),
                    });
                }
                if rng.chance(params.has_mx) {
                    let mx_ttl = sample_ttl(rng, &mx_mix);
                    records.push(CrawledRecord {
                        rtype: RecordType::MX,
                        ttl: mx_ttl,
                        value: format!("mx.provider{}.example", rng.zipf(ns_pool, 1.2)),
                    });
                }
                if rng.chance(params.has_dnskey) {
                    records.push(CrawledRecord {
                        rtype: RecordType::DNSKEY,
                        ttl: category
                            .map(|c| c.bias_dnskey_ttl(sample_ttl(rng, &dnskey_mix)))
                            .unwrap_or_else(|| sample_ttl(rng, &dnskey_mix)),
                        value: format!("key-{}", rng.below(u64::MAX / 2)),
                    });
                }
            }

            out.push(CrawledDomain {
                name,
                responsive: true,
                cname_on_ns,
                soa_on_ns,
                records,
                bailiwick,
                category,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(kind: ListKind, size: usize) -> Vec<CrawledDomain> {
        let mut rng = SimRng::seed_from(42);
        ListSpec { kind, size }.generate(&mut rng)
    }

    #[test]
    fn sizes_and_responsiveness() {
        let domains = generate(ListKind::Alexa, 5_000);
        assert_eq!(domains.len(), 5_000);
        let responsive = domains.iter().filter(|d| d.responsive).count() as f64 / 5_000.0;
        assert!((0.97..1.0).contains(&responsive), "{responsive}");
        let umbrella = generate(ListKind::Umbrella, 5_000);
        let responsive = umbrella.iter().filter(|d| d.responsive).count() as f64 / 5_000.0;
        assert!((0.74..0.82).contains(&responsive), "{responsive}");
    }

    #[test]
    fn umbrella_is_cname_heavy() {
        let domains = generate(ListKind::Umbrella, 5_000);
        let cnames = domains.iter().filter(|d| d.cname_on_ns).count() as f64;
        let responsive = domains.iter().filter(|d| d.responsive).count() as f64;
        let rate = cnames / responsive;
        assert!((0.5..0.65).contains(&rate), "cname rate {rate}");
    }

    #[test]
    fn bailiwick_split_matches_params() {
        let domains = generate(ListKind::Alexa, 10_000);
        let ns_responding: Vec<_> = domains.iter().filter(|d| d.responds_ns()).collect();
        let out_only = ns_responding
            .iter()
            .filter(|d| d.bailiwick == Some(BailiwickClass::OutOnly))
            .count() as f64
            / ns_responding.len() as f64;
        assert!((0.93..0.97).contains(&out_only), "out-only {out_only}");

        let root = generate(ListKind::Root, 1_562);
        let ns_root: Vec<_> = root.iter().filter(|d| d.responds_ns()).collect();
        let out_only = ns_root
            .iter()
            .filter(|d| d.bailiwick == Some(BailiwickClass::OutOnly))
            .count() as f64
            / ns_root.len() as f64;
        assert!((0.4..0.6).contains(&out_only), "root out-only {out_only}");
    }

    #[test]
    fn ns_rrset_shares_one_ttl() {
        let domains = generate(ListKind::Majestic, 1_000);
        for d in domains.iter().filter(|d| d.responds_ns()) {
            let ttls: Vec<u32> = d.records_of(RecordType::NS).map(|r| r.ttl).collect();
            assert!(ttls.windows(2).all(|w| w[0] == w[1]), "{:?}", d.name);
        }
    }

    #[test]
    fn nl_domains_have_categories_others_do_not() {
        let nl = generate(ListKind::Nl, 2_000);
        assert!(nl
            .iter()
            .filter(|d| d.responsive)
            .all(|d| d.category.is_some()));
        let alexa = generate(ListKind::Alexa, 100);
        assert!(alexa.iter().all(|d| d.category.is_none()));
    }

    #[test]
    fn shared_hosting_produces_duplicate_ns_values() {
        let domains = generate(ListKind::Nl, 20_000);
        let all_ns: Vec<&str> = domains
            .iter()
            .flat_map(|d| d.records_of(RecordType::NS))
            .map(|r| r.value.as_str())
            .collect();
        let mut unique: Vec<&str> = all_ns.clone();
        unique.sort_unstable();
        unique.dedup();
        let ratio = all_ns.len() as f64 / unique.len() as f64;
        assert!(ratio > 3.0, "sharing ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(ListKind::Alexa, 500);
        let b = generate(ListKind::Alexa, 500);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.records, y.records);
        }
    }
}
