//! Crawl summarisation: the numbers behind Tables 5, 8, 9 and Figure 9.

use crate::bailiwick::BailiwickClass;
use crate::lists::{CrawledDomain, ListKind};
use dnsttl_analysis::Ecdf;
use dnsttl_wire::RecordType;
use std::collections::HashSet;

/// Per-record-type totals for one list (the NS/A/AAAA/… blocks of
/// Table 5).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordTypeSummary {
    /// Record type summarised.
    pub rtype: RecordType,
    /// Total records of this type observed.
    pub total: usize,
    /// Distinct record values (Table 5 "unique").
    pub unique: usize,
    /// Domains with at least one TTL-0 record of this type (Table 8).
    pub ttl_zero_domains: usize,
}

impl RecordTypeSummary {
    /// Table 5's "ratio" row: total / unique (sharing level).
    pub fn ratio(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.total as f64 / self.unique as f64
        }
    }
}

/// A full crawl summary for one list.
#[derive(Debug, Clone)]
pub struct CrawlSummary {
    /// Which list.
    pub kind: ListKind,
    /// Total domains attempted.
    pub domains: usize,
    /// Domains that answered at least one query.
    pub responsive: usize,
    /// Per-type record totals.
    pub per_type: Vec<RecordTypeSummary>,
    /// Table 9: domains answering NS with CNAME.
    pub cname_on_ns: usize,
    /// Table 9: domains answering NS with SOA.
    pub soa_on_ns: usize,
    /// Table 9: domains with usable NS answers.
    pub responds_ns: usize,
    /// Table 9: bailiwick split (out-only, in-only, mixed).
    pub out_only: usize,
    /// In-bailiwick-only NS sets.
    pub in_only: usize,
    /// Mixed NS sets.
    pub mixed: usize,
}

/// The record types Table 5 reports.
pub const CRAWLED_TYPES: [RecordType; 6] = [
    RecordType::NS,
    RecordType::A,
    RecordType::AAAA,
    RecordType::MX,
    RecordType::DNSKEY,
    RecordType::CNAME,
];

/// Summarises a crawled population.
pub fn summarize(kind: ListKind, domains: &[CrawledDomain]) -> CrawlSummary {
    let mut per_type = Vec::new();
    for rtype in CRAWLED_TYPES {
        let mut total = 0usize;
        let mut unique: HashSet<&str> = HashSet::new();
        let mut ttl_zero_domains = 0usize;
        for d in domains {
            let mut any_zero = false;
            for r in d.records_of(rtype) {
                total += 1;
                unique.insert(r.value.as_str());
                any_zero |= r.ttl == 0;
            }
            ttl_zero_domains += any_zero as usize;
        }
        per_type.push(RecordTypeSummary {
            rtype,
            total,
            unique: unique.len(),
            ttl_zero_domains,
        });
    }

    let responsive = domains.iter().filter(|d| d.responsive).count();
    let cname_on_ns = domains.iter().filter(|d| d.cname_on_ns).count();
    let soa_on_ns = domains.iter().filter(|d| d.soa_on_ns).count();
    let mut out_only = 0;
    let mut in_only = 0;
    let mut mixed = 0;
    for d in domains {
        match d.bailiwick {
            Some(BailiwickClass::OutOnly) => out_only += 1,
            Some(BailiwickClass::InOnly) => in_only += 1,
            Some(BailiwickClass::Mixed) => mixed += 1,
            None => {}
        }
    }

    CrawlSummary {
        kind,
        domains: domains.len(),
        responsive,
        per_type,
        cname_on_ns,
        soa_on_ns,
        responds_ns: out_only + in_only + mixed,
        out_only,
        in_only,
        mixed,
    }
}

/// TTL ECDF of one record type over a population (Figure 9 series).
pub fn ttl_ecdf(domains: &[CrawledDomain], rtype: RecordType) -> Ecdf {
    Ecdf::from_u64(
        domains
            .iter()
            .flat_map(|d| d.records_of(rtype))
            .map(|r| r.ttl as u64),
    )
}

/// Median TTL (hours) of one record type within a content category —
/// Table 7's cells.
pub fn median_ttl_hours(
    domains: &[CrawledDomain],
    rtype: RecordType,
    category: crate::content::ContentCategory,
) -> Option<f64> {
    let e = Ecdf::from_u64(
        domains
            .iter()
            .filter(|d| d.category == Some(category))
            .flat_map(|d| d.records_of(rtype))
            .map(|r| r.ttl as u64),
    );
    if e.is_empty() {
        None
    } else {
        Some(e.median() / 3_600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::ListSpec;
    use dnsttl_netsim::SimRng;

    fn crawl(kind: ListKind, size: usize) -> (Vec<CrawledDomain>, CrawlSummary) {
        let mut rng = SimRng::seed_from(7);
        let domains = ListSpec { kind, size }.generate(&mut rng);
        let summary = summarize(kind, &domains);
        (domains, summary)
    }

    #[test]
    fn summary_accounting_is_consistent() {
        let (domains, s) = crawl(ListKind::Alexa, 8_000);
        assert_eq!(s.domains, 8_000);
        assert_eq!(
            s.responsive,
            domains.iter().filter(|d| d.responsive).count()
        );
        assert_eq!(s.responds_ns, s.out_only + s.in_only + s.mixed);
        assert!(s.responds_ns <= s.responsive);
    }

    #[test]
    fn ns_sharing_ratio_is_high() {
        let (_, s) = crawl(ListKind::Nl, 30_000);
        let ns = s
            .per_type
            .iter()
            .find(|t| t.rtype == RecordType::NS)
            .unwrap();
        // Paper: 190 at full scale; scaled-down pools preserve heavy
        // sharing (ratio well above A records').
        let a = s
            .per_type
            .iter()
            .find(|t| t.rtype == RecordType::A)
            .unwrap();
        assert!(
            ns.ratio() > a.ratio(),
            "ns {} vs a {}",
            ns.ratio(),
            a.ratio()
        );
        assert!(ns.ratio() > 3.0);
    }

    #[test]
    fn ttl_zero_exists_but_rare() {
        let (_, s) = crawl(ListKind::Alexa, 30_000);
        let ns = s
            .per_type
            .iter()
            .find(|t| t.rtype == RecordType::NS)
            .unwrap();
        assert!(ns.ttl_zero_domains > 0, "Table 8 expects some TTL-0 NS");
        assert!((ns.ttl_zero_domains as f64) < 0.02 * 30_000.0);
    }

    #[test]
    fn figure9_shapes_hold() {
        let (alexa, _) = crawl(ListKind::Alexa, 20_000);
        let (root, _) = crawl(ListKind::Root, 1_562);
        let (umbrella, _) = crawl(ListKind::Umbrella, 20_000);

        // Root NS: ~80% at 1–2 days.
        let root_ns = ttl_ecdf(&root, RecordType::NS);
        let long = 1.0 - root_ns.fraction_leq(86_399.0);
        assert!((0.7..0.95).contains(&long), "root long NS fraction {long}");

        // Umbrella NS: ~25% under a minute.
        let umb_ns = ttl_ecdf(&umbrella, RecordType::NS);
        let sub_min = umb_ns.fraction_leq(60.0);
        assert!(
            (0.18..0.35).contains(&sub_min),
            "umbrella sub-minute {sub_min}"
        );

        // A records are shorter than NS records (medians).
        let alexa_ns = ttl_ecdf(&alexa, RecordType::NS);
        let alexa_a = ttl_ecdf(&alexa, RecordType::A);
        assert!(alexa_a.median() <= alexa_ns.median());
    }

    #[test]
    fn table7_parking_has_day_long_ns() {
        use crate::content::ContentCategory;
        let (nl, _) = crawl(ListKind::Nl, 30_000);
        let parking = median_ttl_hours(&nl, RecordType::NS, ContentCategory::Parking).unwrap();
        let ecommerce = median_ttl_hours(&nl, RecordType::NS, ContentCategory::Ecommerce).unwrap();
        assert!(parking >= 24.0, "parking median {parking}h");
        assert!(
            (1.0..=8.0).contains(&ecommerce),
            "ecommerce median {ecommerce}h"
        );
    }

    #[test]
    fn cname_counts_flow_to_summary() {
        let (_, s) = crawl(ListKind::Umbrella, 10_000);
        assert!(s.cname_on_ns > 3_000, "cname_on_ns {}", s.cname_on_ns);
        let cname = s
            .per_type
            .iter()
            .find(|t| t.rtype == RecordType::CNAME)
            .unwrap();
        assert_eq!(cname.total, s.cname_on_ns);
    }
}
