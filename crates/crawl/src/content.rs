//! DMap-style content classification for `.nl` (Tables 6–7).
//!
//! The paper classifies `.nl` web content into *placeholder* pages
//! (hosting-provider defaults), *e-commerce* (shopping carts), and
//! *parking*, and reports strikingly different median TTLs: parked
//! domains sit at day-long NS and DNSKEY TTLs (nobody touches them),
//! while e-commerce and placeholders live at 4 h.

use dnsttl_netsim::SimRng;

/// A `.nl` domain's content category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentCategory {
    /// Hosting-provider default landing page (1.2 M domains in
    /// Table 6 — by far the biggest class).
    Placeholder,
    /// Webshop with a cart (148 k domains).
    Ecommerce,
    /// Parked domain (127 k domains).
    Parking,
}

impl ContentCategory {
    /// All categories in Table 6 order.
    pub const ALL: [ContentCategory; 3] = [
        ContentCategory::Placeholder,
        ContentCategory::Ecommerce,
        ContentCategory::Parking,
    ];

    /// Table 6 label.
    pub fn label(self) -> &'static str {
        match self {
            ContentCategory::Placeholder => "Placeholder",
            ContentCategory::Ecommerce => "E-commerce",
            ContentCategory::Parking => "Parking",
        }
    }

    /// Table 6 full-scale population count.
    pub fn paper_count(self) -> u64 {
        match self {
            ContentCategory::Placeholder => 1_199_152,
            ContentCategory::Ecommerce => 148_564,
            ContentCategory::Parking => 127_551,
        }
    }

    /// Samples a category with Table 6 proportions.
    pub fn sample(rng: &mut SimRng) -> ContentCategory {
        let weights = [1_199_152.0, 148_564.0, 127_551.0];
        Self::ALL[rng.weighted_index(&weights)]
    }

    /// Biases an NS TTL toward the category's Table 7 median:
    /// parking pushes to 24 h; the others to ≈4 h.
    pub fn bias_ns_ttl(self, sampled: u32) -> u32 {
        match self {
            ContentCategory::Parking => sampled.max(86_400),
            _ => sampled.clamp(3_600, 21_600),
        }
    }

    /// Same for DNSKEY (Table 7: parking 24 h, placeholder 4 h,
    /// e-commerce 1 h).
    pub fn bias_dnskey_ttl(self, sampled: u32) -> u32 {
        match self {
            ContentCategory::Parking => sampled.max(86_400),
            ContentCategory::Placeholder => sampled.clamp(3_600, 14_400),
            ContentCategory::Ecommerce => sampled.clamp(600, 3_600),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_matches_table6_proportions() {
        let mut rng = SimRng::seed_from(1);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let c = ContentCategory::sample(&mut rng);
            counts[ContentCategory::ALL.iter().position(|&x| x == c).unwrap()] += 1;
        }
        // Placeholder ≈ 81%, E-commerce ≈ 10%, Parking ≈ 9%.
        let share = |i: usize| counts[i] as f64 / 30_000.0;
        assert!((share(0) - 0.813).abs() < 0.02, "{}", share(0));
        assert!((share(1) - 0.101).abs() < 0.02, "{}", share(1));
        assert!((share(2) - 0.086).abs() < 0.02, "{}", share(2));
    }

    #[test]
    fn parking_bias_yields_day_long_ns() {
        assert_eq!(ContentCategory::Parking.bias_ns_ttl(300), 86_400);
        assert_eq!(ContentCategory::Parking.bias_ns_ttl(172_800), 172_800);
    }

    #[test]
    fn ecommerce_ns_clamped_to_hours() {
        assert_eq!(ContentCategory::Ecommerce.bias_ns_ttl(60), 3_600);
        assert_eq!(ContentCategory::Ecommerce.bias_ns_ttl(172_800), 21_600);
    }

    #[test]
    fn labels_and_counts() {
        assert_eq!(ContentCategory::Placeholder.label(), "Placeholder");
        let total: u64 = ContentCategory::ALL.iter().map(|c| c.paper_count()).sum();
        assert_eq!(total, 1_475_267); // Table 6 total
    }
}
