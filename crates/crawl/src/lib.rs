//! # dnsttl-crawl — TTL crawling and synthetic domain populations
//!
//! §5 of the paper crawls five domain populations — the root zone, the
//! `.nl` ccTLD, and the Alexa / Majestic / Umbrella top-million lists —
//! retrieving NS, A, AAAA, MX, DNSKEY and CNAME records from the child
//! authoritative servers and summarising TTL usage (Table 5,
//! Figure 9), TTL-zero domains (Table 8), bailiwick configuration
//! (Table 9), and `.nl` content categories (Tables 6–7).
//!
//! The real lists and zones are unavailable here, so this crate builds
//! **synthetic populations calibrated to the paper's reported
//! marginals** — the per-list TTL mixtures, shared-hosting ratios,
//! responsiveness rates, CNAME prevalence, and bailiwick splits — and a
//! crawler that walks them exactly as the paper's crawler walked the
//! real ones. The calibration tables live in [`calibration`] with the
//! paper values cited inline, so a reader can audit each number.
//!
//! Scale is configurable: the default scales the million-domain lists
//! down (the *shapes* of the distributions are preserved; absolute
//! counts in Table 5 scale linearly), and `paper_scale()` reproduces
//! full sizes when you have the minutes to spare.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bailiwick;
pub mod calibration;
pub mod content;
pub mod crawler;
pub mod lists;
pub mod serve;

pub use bailiwick::BailiwickClass;
pub use content::ContentCategory;
pub use crawler::{CrawlSummary, RecordTypeSummary};
pub use lists::{CrawledDomain, CrawledRecord, ListKind, ListSpec};
pub use serve::{crawl_served_domain, materialize_zone};
