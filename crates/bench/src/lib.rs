//! # dnsttl-bench — benchmark scenarios
//!
//! Helper scenarios shared by the Criterion benches in `benches/`:
//!
//! * `micro` — component costs: wire codec, cache operations, zone
//!   lookups, single resolutions;
//! * `tables` — one bench per paper table (the regeneration cost of
//!   each artifact at quick scale);
//! * `figures` — one bench per paper figure;
//! * `ablations` — the design choices DESIGN.md calls out, measured
//!   head-to-head (credibility ranking, glue linking, TTL caps, cache
//!   sharing).
//!
//! Keeping the world-building helpers here keeps the bench files
//! declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;

pub use runner::{
    BenchConfig, BenchReport, Counter, Timing, BENCH_SCHEMA, FANOUT_TOLERANCE,
    REGRESSION_THRESHOLD, TIMINGS_MARKER, WHEEL_IMPROVEMENT_FACTOR,
};

use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{LatencyModel, Network, Region, SimRng, SimTime};
use dnsttl_resolver::{RecursiveResolver, RootHint};
use dnsttl_wire::{Name, RecordType, Ttl};
use std::cell::RefCell;
use std::net::{IpAddr, Ipv4Addr};
use std::rc::Rc;

/// A self-contained two-level world (root + one delegated zone) with a
/// resolver attached: the minimal fixture for resolution benches.
pub struct BenchWorld {
    /// The network with both servers registered.
    pub net: Network,
    /// A resolver using `policy`.
    pub resolver: RecursiveResolver,
    /// A leaf name that resolves to an A record.
    pub leaf: Name,
}

/// Builds the fixture. `child_ttl` controls the leaf record's cache
/// lifetime; `policy` the resolver behaviour.
pub fn bench_world(child_ttl: Ttl, policy: ResolverPolicy) -> BenchWorld {
    let root_addr = IpAddr::V4(Ipv4Addr::new(198, 41, 0, 4));
    let child_addr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 53));
    let root = AuthoritativeServer::new("root").with_zone(
        ZoneBuilder::new(".")
            .ns("example", "ns.example", Ttl::TWO_DAYS)
            .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
            .build(),
    );
    let child = AuthoritativeServer::new("ns.example").with_zone(
        ZoneBuilder::new("example")
            .ns("example", "ns.example", Ttl::HOUR)
            .a("ns.example", "192.0.2.53", Ttl::HOUR)
            .a("www.example", "203.0.113.1", child_ttl)
            .build(),
    );
    let mut net = Network::new(LatencyModel::constant(5.0));
    net.register(root_addr, Region::Eu, Rc::new(RefCell::new(root)));
    net.register(child_addr, Region::Eu, Rc::new(RefCell::new(child)));
    let resolver = RecursiveResolver::new(
        "bench",
        policy,
        Region::Eu,
        1,
        vec![RootHint {
            ns_name: Name::parse("root").expect("static"),
            addr: root_addr,
        }],
        SimRng::seed_from(99),
    );
    BenchWorld {
        net,
        resolver,
        leaf: Name::parse("www.example").expect("static"),
    }
}

impl BenchWorld {
    /// One resolution at `now`; panics on non-NOERROR (a bench fixture
    /// must not silently degrade into benchmarking the error path).
    pub fn resolve_at(&mut self, now_s: u64) -> u32 {
        let out = self.resolver.resolve(
            &self.leaf,
            RecordType::A,
            SimTime::from_secs(now_s),
            &mut self.net,
        );
        assert_eq!(out.answer.header.rcode, dnsttl_wire::Rcode::NoError);
        out.upstream_queries
    }
}

/// A representative referral message for codec benches (question +
/// NS authority + A/AAAA glue, with compressible names).
pub fn sample_referral() -> dnsttl_wire::Message {
    use dnsttl_wire::{Message, RData, Record};
    let q = Message::iterative_query(
        0x2222,
        Name::parse("www.example.cl").expect("static"),
        RecordType::A,
    );
    let mut m = Message::response_to(&q);
    for i in 0..4u8 {
        let ns = Name::parse(&format!("ns{i}.nic.cl")).expect("static");
        m.authorities.push(Record::new(
            Name::parse("cl").expect("static"),
            Ttl::TWO_DAYS,
            RData::Ns(ns.clone()),
        ));
        m.additionals.push(Record::new(
            ns,
            Ttl::TWO_DAYS,
            RData::A(Ipv4Addr::new(190, 124, 27, 10 + i)),
        ));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_world_resolves() {
        let mut w = bench_world(Ttl::HOUR, ResolverPolicy::default());
        assert!(w.resolve_at(0) >= 2, "cold resolution walks the tree");
        assert_eq!(w.resolve_at(10), 0, "warm resolution hits cache");
    }

    #[test]
    fn sample_referral_round_trips() {
        let m = sample_referral();
        let wire = dnsttl_wire::encode_message(&m).unwrap();
        assert_eq!(dnsttl_wire::decode_message(&wire).unwrap(), m);
    }
}
