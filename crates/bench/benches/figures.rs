//! One benchmark per paper figure (figure groups share the experiment
//! that generates them, exactly as in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use dnsttl_experiments::{
    bailiwick_exp, centricity, controlled, crawl_exp, passive_nl, uy_latency, ExpConfig,
};
use std::hint::black_box;

fn cfg() -> ExpConfig {
    // Leaner than ExpConfig::quick(): a bench iteration should take
    // ~a second so Criterion's sampling finishes in minutes. The
    // experiment's *correctness* at this scale is covered by the test
    // suite; here we only measure regeneration cost.
    ExpConfig {
        probes: 200,
        crawl_scale: 0.002,
        nl_resolvers: 400,
        nl_hours: 12,
        out_dir: None,
        ..ExpConfig::quick()
    }
}

fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
}

fn bench_fig1_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_2");
    tune(&mut g);
    g.bench_function("centricity_ttl_cdfs", |b| {
        b.iter(|| black_box(centricity::run(&cfg())))
    });
    g.finish();
}

fn bench_fig3_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_4");
    tune(&mut g);
    g.bench_function("passive_nl_interarrivals", |b| {
        b.iter(|| black_box(passive_nl::run(&cfg())))
    });
    g.finish();
}

fn bench_fig5_to_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_to_8");
    tune(&mut g);
    g.bench_function("bailiwick_renumbering", |b| {
        b.iter(|| black_box(bailiwick_exp::run(&cfg())))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    tune(&mut g);
    g.bench_function("crawl_ttl_cdfs", |b| {
        b.iter(|| black_box(crawl_exp::run(&cfg())))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    tune(&mut g);
    g.bench_function("uy_before_after_latency", |b| {
        b.iter(|| black_box(uy_latency::run(&cfg())))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    tune(&mut g);
    g.bench_function("controlled_latency_cdfs", |b| {
        b.iter(|| black_box(controlled::run(&cfg())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_2,
    bench_fig3_4,
    bench_fig5_to_8,
    bench_fig9,
    bench_fig10,
    bench_fig11
);
criterion_main!(benches);
