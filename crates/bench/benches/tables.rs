//! One benchmark per paper table: the cost of regenerating each
//! artifact at quick scale. Running these also *produces* the tables
//! (the experiments assert their own shape metrics via the test
//! suite; here they run under the timer).

use criterion::{criterion_group, criterion_main, Criterion};
use dnsttl_experiments::{bailiwick_exp, centricity, controlled, crawl_exp, table1, ExpConfig};
use std::hint::black_box;

fn cfg() -> ExpConfig {
    // Leaner than ExpConfig::quick(): a bench iteration should take
    // ~a second so Criterion's sampling finishes in minutes. The
    // experiment's *correctness* at this scale is covered by the test
    // suite; here we only measure regeneration cost.
    ExpConfig {
        probes: 200,
        crawl_scale: 0.002,
        nl_resolvers: 400,
        nl_hours: 12,
        out_dir: None,
        ..ExpConfig::quick()
    }
}

fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/a.nic.cl_ttls", |b| {
        b.iter(|| black_box(table1::run(&cfg())))
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    tune(&mut g);
    g.bench_function("centricity_accounting", |b| {
        b.iter(|| black_box(centricity::run(&cfg())))
    });
    g.finish();
}

fn bench_tables3_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_4");
    tune(&mut g);
    g.bench_function("bailiwick_accounting_and_sticky", |b| {
        b.iter(|| black_box(bailiwick_exp::run(&cfg())))
    });
    g.finish();
}

fn bench_tables5_to_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_to_9");
    tune(&mut g);
    g.bench_function("crawl_summaries", |b| {
        b.iter(|| black_box(crawl_exp::run(&cfg())))
    });
    g.finish();
}

fn bench_table10(c: &mut Criterion) {
    let mut g = c.benchmark_group("table10");
    tune(&mut g);
    g.bench_function("controlled_ttl_campaigns", |b| {
        b.iter(|| black_box(controlled::run(&cfg())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_tables3_4,
    bench_tables5_to_9,
    bench_table10
);
criterion_main!(benches);
