//! Component micro-benchmarks: wire codec, names, cache, zone lookup,
//! and single resolutions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dnsttl_auth::ZoneBuilder;
use dnsttl_bench::{bench_world, sample_referral};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::SimTime;
use dnsttl_resolver::{Cache, Credibility};
use dnsttl_wire::{decode_message, encode_message, Name, RData, RRset, RecordType, Ttl};
use std::hint::black_box;

fn wire_codec(c: &mut Criterion) {
    let msg = sample_referral();
    let wire = encode_message(&msg).unwrap();
    c.bench_function("wire/encode_referral", |b| {
        b.iter(|| encode_message(black_box(&msg)).unwrap())
    });
    c.bench_function("wire/decode_referral", |b| {
        b.iter(|| decode_message(black_box(&wire)).unwrap())
    });
    c.bench_function("wire/name_parse", |b| {
        b.iter(|| Name::parse(black_box("ns1.sub.cachetest.net")).unwrap())
    });
    let a = Name::parse("ns1.sub.cachetest.net").unwrap();
    let zone = Name::parse("cachetest.net").unwrap();
    c.bench_function("wire/bailiwick_check", |b| {
        b.iter(|| black_box(&a).is_subdomain_of(black_box(&zone)))
    });
}

fn cache_ops(c: &mut Criterion) {
    let policy = ResolverPolicy::default();
    let rrset = RRset {
        name: Name::parse("a.nic.uy").unwrap(),
        rtype: RecordType::A,
        ttl: Ttl::from_secs(120),
        rdatas: vec![RData::A("200.40.241.1".parse().unwrap())],
    };
    c.bench_function("cache/store", |b| {
        b.iter_batched(
            Cache::new,
            |mut cache| {
                cache.store(
                    black_box(rrset.clone()),
                    Credibility::AuthAnswer,
                    SimTime::ZERO,
                    &policy,
                    false,
                )
            },
            BatchSize::SmallInput,
        )
    });
    let mut cache = Cache::new();
    cache.store(
        rrset.clone(),
        Credibility::AuthAnswer,
        SimTime::ZERO,
        &policy,
        false,
    );
    c.bench_function("cache/get_fresh", |b| {
        b.iter(|| {
            cache.get(
                black_box(&rrset.name),
                RecordType::A,
                SimTime::from_secs(30),
            )
        })
    });
}

fn zone_lookup(c: &mut Criterion) {
    let zone = ZoneBuilder::new("cl")
        .ns("cl", "a.nic.cl", Ttl::HOUR)
        .a("a.nic.cl", "190.124.27.10", Ttl::from_secs(43_200))
        .ns("example.cl", "ns.example.cl", Ttl::from_secs(7_200))
        .a("ns.example.cl", "203.0.113.53", Ttl::from_secs(7_200))
        .build();
    let apex = Name::parse("cl").unwrap();
    let below_cut = Name::parse("www.example.cl").unwrap();
    c.bench_function("zone/lookup_answer", |b| {
        b.iter(|| zone.lookup(black_box(&apex), RecordType::NS))
    });
    c.bench_function("zone/lookup_referral", |b| {
        b.iter(|| zone.lookup(black_box(&below_cut), RecordType::A))
    });
}

fn resolution(c: &mut Criterion) {
    c.bench_function("resolver/cold_resolution", |b| {
        b.iter_batched(
            || bench_world(Ttl::HOUR, ResolverPolicy::default()),
            |mut w| w.resolve_at(0),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("resolver/warm_resolution", |b| {
        let mut w = bench_world(Ttl::HOUR, ResolverPolicy::default());
        w.resolve_at(0);
        b.iter(|| w.resolve_at(10))
    });
}

fn master_file(c: &mut Criterion) {
    let zone_text = r#"
$ORIGIN uy.
$TTL 300
@           IN NS   a.nic.uy.
            IN NS   b.nic.uy.
a.nic.uy.   120 IN A 200.40.241.1
b.nic.uy.   120    A 200.40.241.2
www.gub     3600   A 200.40.30.1
@           3600 IN MX 10 mail.gub.uy.
mail.gub    3600   A 200.40.30.2
@           3600 IN TXT "v=spf1 -all"
"#;
    c.bench_function("master/parse_zone", |b| {
        b.iter(|| dnsttl_auth::parse_zone("uy", black_box(zone_text)).unwrap())
    });
    let zone = dnsttl_auth::parse_zone("uy", zone_text).unwrap();
    c.bench_function("master/render_zone", |b| {
        b.iter(|| dnsttl_auth::render_zone(black_box(&zone)))
    });
}

fn dnssec(c: &mut Criterion) {
    let zone = ZoneBuilder::new("uy")
        .ns("uy", "a.nic.uy", Ttl::from_secs(300))
        .a("a.nic.uy", "200.40.241.1", Ttl::from_secs(120))
        .a("www.gub.uy", "200.40.30.1", Ttl::HOUR)
        .build();
    c.bench_function("dnssec/sign_zone", |b| {
        b.iter_batched(
            || zone.clone(),
            |mut z| dnsttl_auth::sign_zone(&mut z),
            BatchSize::SmallInput,
        )
    });
    let mut signed = zone.clone();
    dnsttl_auth::sign_zone(&mut signed);
    let owner = Name::parse("a.nic.uy").unwrap();
    let a = signed.get(&owner, RecordType::A);
    let rdatas: Vec<RData> = a.iter().map(|r| r.rdata.clone()).collect();
    let sig = signed.get(&owner, RecordType::RRSIG)[0].clone();
    c.bench_function("dnssec/verify_rrset", |b| {
        b.iter(|| {
            assert!(dnsttl_wire::verify_rrset(
                black_box(&owner),
                RecordType::A,
                black_box(&rdatas),
                black_box(&sig)
            ))
        })
    });
}

criterion_group!(
    benches,
    wire_codec,
    cache_ops,
    zone_lookup,
    resolution,
    master_file,
    dnssec
);
criterion_main!(benches);
