//! Hot-path micro-benchmarks for the structures the churn profile is
//! dominated by: `Name` comparison/hashing (cache keys, expiry-index
//! ordering) and bounded-cache eviction at realistic capacities.
//!
//! `name_compare`/`name_hash` run on deep names (six labels, mixed
//! case) because that is where the old per-label `Vec<String>`
//! representation paid one allocation per label per operation; the
//! compact representation must make both allocation-free.
//! `cache_evict` stores a rolling working set twice the cache capacity,
//! so every store past warm-up evicts — the worst case the expiry index
//! turns from an O(n) scan into an O(log n) pop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::SimTime;
use dnsttl_resolver::{Cache, Credibility};
use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;

/// Deep, mixed-case names: equality and order must case-fold every
/// label, so these are the expensive comparisons, not `uy.` vs `uy.`.
fn deep_names() -> Vec<Name> {
    (0..64)
        .map(|i| {
            Name::parse(&format!("host{i:03}.Rack7.Pod-B.dc2.Example-Cloud.net"))
                .expect("valid deep name")
        })
        .collect()
}

fn name_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    let names = deep_names();
    let near_equal = Name::parse("HOST000.rack7.pod-b.DC2.example-cloud.net").unwrap();

    group.bench_function(BenchmarkId::from_parameter("name_compare"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 63;
            black_box(names[i].cmp(&names[(i + 17) & 63]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("name_eq_folded"), |b| {
        // Same name, different case: the worst equality case — the hash
        // filter matches and every byte must be folded and compared.
        b.iter(|| black_box(names[0] == near_equal))
    });
    group.bench_function(BenchmarkId::from_parameter("name_hash"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 63;
            let mut h = DefaultHasher::new();
            names[i].hash(&mut h);
            black_box(h.finish())
        })
    });
    group.finish();
}

fn a_rrset(name: &Name, ttl: u32, last: u8) -> RRset {
    RRset {
        name: name.clone(),
        rtype: RecordType::A,
        ttl: Ttl::from_secs(ttl),
        rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, last))],
    }
}

/// Sustained eviction churn: the working set is twice the capacity, so
/// once warm every store displaces the soonest-to-expire entry.
fn cache_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    let policy = ResolverPolicy::default();
    for capacity in [512usize, 4_096, 32_768] {
        let names: Vec<Name> = (0..capacity * 2)
            .map(|i| Name::parse(&format!("w{i:06}.churn.example")).expect("valid"))
            .collect();
        let mut cache = Cache::with_capacity(capacity);
        // Warm to capacity so the measured loop is pure evict+insert.
        for (i, name) in names.iter().take(capacity).enumerate() {
            cache.store(
                a_rrset(name, 60 + (i % 540) as u32, 1),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy,
                false,
            );
        }
        let mut i = capacity;
        let mut t = 0u64;
        group.bench_function(BenchmarkId::new("cache_evict", capacity), |b| {
            b.iter(|| {
                i = (i + 1) % names.len();
                t += 1;
                cache.store(
                    a_rrset(&names[i], 60 + (i % 540) as u32, 1),
                    Credibility::AuthAnswer,
                    SimTime::from_millis(t),
                    &policy,
                    false,
                );
                black_box(cache.evictions())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, name_ops, cache_evict);
criterion_main!(benches);
