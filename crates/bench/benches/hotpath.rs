//! Hot-path micro-benchmarks for the structures the churn profile is
//! dominated by: `Name` comparison/hashing (cache keys, expiry-index
//! ordering) and bounded-cache eviction at realistic capacities.
//!
//! `name_compare`/`name_hash` run on deep names (six labels, mixed
//! case) because that is where the old per-label `Vec<String>`
//! representation paid one allocation per label per operation; the
//! compact representation must make both allocation-free.
//! `cache_evict` stores a rolling working set twice the cache capacity,
//! so every store past warm-up evicts — the worst case the expiry index
//! turns from an O(n) scan into an O(log n) pop.
//!
//! The `wheel_*`/`expiry_pop` benches isolate the timing wheel itself
//! against the `BTreeSet` it replaced, at the same entry counts as
//! `cache_evict`: `wheel_insert` is one steady-state schedule+cancel
//! pair, `expiry_pop` a pop-and-reschedule cycle over TTL-shaped
//! near-term times, and `wheel_cascade` the same cycle over times
//! spread so wide that nearly every pop re-bins a coarse slot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{SimRng, SimTime, TimingWheel};
use dnsttl_resolver::{Cache, Credibility};
use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::hint::black_box;

/// Deep, mixed-case names: equality and order must case-fold every
/// label, so these are the expensive comparisons, not `uy.` vs `uy.`.
fn deep_names() -> Vec<Name> {
    (0..64)
        .map(|i| {
            Name::parse(&format!("host{i:03}.Rack7.Pod-B.dc2.Example-Cloud.net"))
                .expect("valid deep name")
        })
        .collect()
}

fn name_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    let names = deep_names();
    let near_equal = Name::parse("HOST000.rack7.pod-b.DC2.example-cloud.net").unwrap();

    group.bench_function(BenchmarkId::from_parameter("name_compare"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 63;
            black_box(names[i].cmp(&names[(i + 17) & 63]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("name_eq_folded"), |b| {
        // Same name, different case: the worst equality case — the hash
        // filter matches and every byte must be folded and compared.
        b.iter(|| black_box(names[0] == near_equal))
    });
    group.bench_function(BenchmarkId::from_parameter("name_hash"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 63;
            let mut h = DefaultHasher::new();
            names[i].hash(&mut h);
            black_box(h.finish())
        })
    });
    group.finish();
}

fn a_rrset(name: &Name, ttl: u32, last: u8) -> RRset {
    RRset {
        name: name.clone(),
        rtype: RecordType::A,
        ttl: Ttl::from_secs(ttl),
        rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, last))],
    }
}

/// Sustained eviction churn: the working set is twice the capacity, so
/// once warm every store displaces the soonest-to-expire entry.
fn cache_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    let policy = ResolverPolicy::default();
    for capacity in [512usize, 4_096, 32_768] {
        let names: Vec<Name> = (0..capacity * 2)
            .map(|i| Name::parse(&format!("w{i:06}.churn.example")).expect("valid"))
            .collect();
        let mut cache = Cache::with_capacity(capacity);
        // Warm to capacity so the measured loop is pure evict+insert.
        for (i, name) in names.iter().take(capacity).enumerate() {
            cache.store(
                a_rrset(name, 60 + (i % 540) as u32, 1),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy,
                false,
            );
        }
        let mut i = capacity;
        let mut t = 0u64;
        group.bench_function(BenchmarkId::new("cache_evict", capacity), |b| {
            b.iter(|| {
                i = (i + 1) % names.len();
                t += 1;
                cache.store(
                    a_rrset(&names[i], 60 + (i % 540) as u32, 1),
                    Credibility::AuthAnswer,
                    SimTime::from_millis(t),
                    &policy,
                    false,
                );
                black_box(cache.evictions())
            })
        });
    }
    group.finish();
}

/// Timing-wheel primitives vs the `BTreeSet` index they replaced, at
/// the same sizes `cache_evict` runs. Ties are unique indices so the
/// set baseline holds exactly the same entries as the wheel.
fn wheel_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    for n in [512usize, 4_096, 32_768] {
        let mut rng = SimRng::seed_from(0x57EE1 + n as u64);
        // TTL-shaped near-term expiries: 1 ms – 300 s, the cache_churn
        // band, landing in wheel levels 0–2.
        let near: Vec<u64> = (0..n).map(|_| 1 + rng.below(300_000)).collect();
        // Wide spread over ~4.6 h so steady-state pops keep crossing
        // coarse-slot boundaries and re-binning (the cascade worst
        // case).
        let far: Vec<u64> = (0..n).map(|_| rng.below(1 << 24)).collect();

        // One O(1) schedule+cancel pair against a full index.
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        for (i, &t) in near.iter().enumerate() {
            wheel.insert(t, i as u32);
        }
        let mut k = 0usize;
        group.bench_function(BenchmarkId::new("wheel_insert", n), |b| {
            b.iter(|| {
                k = (k + 1) % n;
                wheel.insert(near[k], u32::MAX);
                black_box(wheel.cancel(near[k], &u32::MAX))
            })
        });
        let mut btree: BTreeSet<(u64, u32)> =
            near.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        group.bench_function(BenchmarkId::new("btree_insert", n), |b| {
            b.iter(|| {
                k = (k + 1) % n;
                btree.insert((near[k], u32::MAX));
                black_box(btree.remove(&(near[k], u32::MAX)))
            })
        });

        // Steady-state expiry: pop the minimum, reschedule one TTL out.
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        for (i, &t) in near.iter().enumerate() {
            wheel.insert(t, i as u32);
        }
        group.bench_function(BenchmarkId::new("expiry_pop", n), |b| {
            b.iter(|| {
                let (t, i) = wheel.pop_first().expect("pop cycle keeps size fixed");
                wheel.insert(t + 300_000, i);
                black_box(t)
            })
        });
        let mut btree: BTreeSet<(u64, u32)> =
            near.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        group.bench_function(BenchmarkId::new("btree_expiry_pop", n), |b| {
            b.iter(|| {
                let (t, i) = btree.pop_first().expect("pop cycle keeps size fixed");
                btree.insert((t + 300_000, i));
                black_box(t)
            })
        });

        // Cascade-heavy pops: sparse far-future times re-bin coarse
        // slots on nearly every base advance.
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        for (i, &t) in far.iter().enumerate() {
            wheel.insert(t, i as u32);
        }
        group.bench_function(BenchmarkId::new("wheel_cascade", n), |b| {
            b.iter(|| {
                let (t, i) = wheel.pop_first().expect("pop cycle keeps size fixed");
                wheel.insert(t + (1 << 24), i);
                black_box(t)
            })
        });
        let mut btree: BTreeSet<(u64, u32)> =
            far.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        group.bench_function(BenchmarkId::new("btree_cascade", n), |b| {
            b.iter(|| {
                let (t, i) = btree.pop_first().expect("pop cycle keeps size fixed");
                btree.insert((t + (1 << 24), i));
                black_box(t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, name_ops, cache_evict, wheel_ops);
criterion_main!(benches);
