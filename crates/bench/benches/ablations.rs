//! Ablations of the design choices DESIGN.md calls out, measured
//! head-to-head: each group benchmarks the same workload under policy
//! variants, so the relative cost (and, via the assertions inside the
//! fixtures, the behavioural difference) of each mechanism is visible.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dnsttl_bench::bench_world;
use dnsttl_core::ResolverPolicy;
use dnsttl_wire::Ttl;
use std::hint::black_box;

/// Glue linking on/off: the §4.2 mechanism. Workload: resolve, age
/// past the NS TTL, resolve again (forces the re-walk where linking
/// matters).
fn ablate_glue_linking(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/glue_linking");
    for (label, link) in [("linked", true), ("unlinked", false)] {
        let policy = ResolverPolicy {
            link_inbailiwick_glue: link,
            ..ResolverPolicy::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter_batched(
                || bench_world(Ttl::from_secs(7_200), policy.clone()),
                |mut w| {
                    w.resolve_at(0);
                    w.resolve_at(3_700); // past the 3600 s NS TTL
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Centricity: parent-centric resolvers answer from referrals (fewer
/// exchanges), child-centric ones re-query the child.
fn ablate_centricity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/centricity");
    for (label, policy) in [
        ("child_centric", ResolverPolicy::default()),
        ("parent_centric", ResolverPolicy::parent_centric()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter_batched(
                || bench_world(Ttl::HOUR, policy.clone()),
                |mut w| w.resolve_at(0),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// TTL caps: how much extra upstream traffic a 21599 s Google-style
/// cap (vs a week-long BIND-style cap) costs on a long-TTL record
/// queried across a day.
fn ablate_ttl_caps(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/ttl_cap");
    for (label, cap) in [
        ("bind_1w", 604_800u32),
        ("google_21599", 21_599),
        ("aggressive_60", 60),
    ] {
        let policy = ResolverPolicy {
            ttl_cap: Some(Ttl::from_secs(cap)),
            ..ResolverPolicy::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter_batched(
                || bench_world(Ttl::TWO_DAYS, policy.clone()),
                |mut w| {
                    // Six queries spread over a day: the tighter the
                    // cap, the more of these go upstream.
                    let mut upstream = 0;
                    for hour in [0u64, 4, 8, 12, 16, 20] {
                        upstream += w.resolve_at(hour * 3_600);
                    }
                    black_box(upstream)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Cache sharing: the same query load against one shared cache vs
/// per-client caches — the unique-vs-shared contrast of Table 10.
fn ablate_cache_sharing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/cache_sharing");
    g.bench_function("shared_cache_10_clients", |b| {
        b.iter_batched(
            || bench_world(Ttl::HOUR, ResolverPolicy::default()),
            |mut w| {
                for i in 0..10u64 {
                    w.resolve_at(i * 10);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("private_caches_10_clients", |b| {
        b.iter_batched(
            || {
                (0..10)
                    .map(|_| bench_world(Ttl::HOUR, ResolverPolicy::default()))
                    .collect::<Vec<_>>()
            },
            |mut worlds| {
                for (i, w) in worlds.iter_mut().enumerate() {
                    w.resolve_at(i as u64 * 10);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Prefetch on/off: refresh-ahead trades upstream queries for miss
/// latency; the workload queries around the TTL boundary where the
/// policies diverge.
fn ablate_prefetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/prefetch");
    for (label, prefetch) in [("off", false), ("on", true)] {
        let policy = ResolverPolicy {
            prefetch,
            ..ResolverPolicy::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter_batched(
                || bench_world(Ttl::from_secs(600), policy.clone()),
                |mut w| {
                    for i in 0..8u64 {
                        w.resolve_at(i * 550);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Cache capacity pressure: the same workload against an unbounded vs
/// a tiny cache — evictions turn hits back into full resolutions.
fn ablate_cache_pressure(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/cache_pressure");
    for (label, capacity) in [("unbounded", None), ("tiny_4_entries", Some(4usize))] {
        let policy = ResolverPolicy {
            cache_capacity: capacity,
            ..ResolverPolicy::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter_batched(
                || bench_world(Ttl::HOUR, policy.clone()),
                |mut w| {
                    for i in 0..12u64 {
                        w.resolve_at(i * 10);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// QNAME minimisation on/off: the privacy mode costs extra exchanges
/// on cold lookups of deep names.
fn ablate_qname_minimization(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/qname_minimization");
    for (label, min) in [("off", false), ("on", true)] {
        let policy = ResolverPolicy {
            qname_minimization: min,
            ..ResolverPolicy::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter_batched(
                || bench_world(Ttl::HOUR, policy.clone()),
                |mut w| w.resolve_at(0),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_glue_linking,
    ablate_centricity,
    ablate_ttl_caps,
    ablate_cache_sharing,
    ablate_prefetch,
    ablate_cache_pressure,
    ablate_qname_minimization
);
criterion_main!(benches);
