//! Telemetry overhead: the same resolver workload with a disabled
//! handle (the default for every instrumented component) vs an enabled
//! one. The disabled path is a branch-and-return with the field
//! closures never run, so `resolve/disabled` should sit within ~5% of
//! the pre-instrumentation baseline; `resolve/enabled` shows the real
//! cost of full tracing and metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnsttl_core::ResolverPolicy;
use dnsttl_experiments::worlds;
use dnsttl_netsim::{Region, SimRng, SimTime};
use dnsttl_resolver::RecursiveResolver;
use dnsttl_telemetry::{EventKind, Telemetry};
use dnsttl_wire::{Name, RecordType, Ttl};
use std::hint::black_box;

/// Resolutions against the `.uy` world, stepped 10 min apart so every
/// query does real cache maintenance (the 300 s/120 s TTLs expire
/// between queries).
fn resolve_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    for (label, telemetry) in [
        ("resolve/disabled", Telemetry::disabled()),
        ("resolve/enabled", Telemetry::new()),
    ] {
        let (mut net, roots) = worlds::uy_world(Ttl::from_secs(300), Ttl::from_secs(120));
        net.set_telemetry(telemetry.clone());
        let mut resolver = RecursiveResolver::new(
            "bench",
            ResolverPolicy::default(),
            Region::Eu,
            1,
            roots,
            SimRng::seed_from(1),
        );
        resolver.set_telemetry(telemetry.clone());
        let qname = Name::parse("uy").unwrap();
        let mut t_ms = 0u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                t_ms += 600_000;
                black_box(resolver.resolve(
                    &qname,
                    RecordType::NS,
                    SimTime::from_millis(t_ms),
                    &mut net,
                ))
            })
        });
    }
    group.finish();
}

/// Raw recording primitives, for attributing any regression seen above.
fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");
    let enabled = Telemetry::new();
    let disabled = Telemetry::disabled();
    group.bench_function(BenchmarkId::from_parameter("count/disabled"), |b| {
        b.iter(|| disabled.count(black_box("resolver_cache_hits"), 1))
    });
    group.bench_function(BenchmarkId::from_parameter("count/enabled"), |b| {
        b.iter(|| enabled.count(black_box("resolver_cache_hits"), 1))
    });
    group.bench_function(BenchmarkId::from_parameter("observe/enabled"), |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(37) & 0xFFFF;
            enabled.observe(black_box("resolver_latency_ms"), v)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("event/enabled"), |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            enabled.event(t, EventKind::CacheHit, |f| {
                f.push("qname", "uy.");
                f.push("t", t);
            })
        })
    });
    group.finish();
}

criterion_group!(benches, resolve_workload, primitives);
criterion_main!(benches);
