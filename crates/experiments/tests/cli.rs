//! Process-level tests for the `sdig` and `repro` binaries: the
//! forensics flags (`--trace-json`, `--cache-dump`, snapshot diffing)
//! and the bench trajectory's determinism guarantee.

use std::process::Command;

fn sdig() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdig"))
}

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn stdout_of(out: std::process::Output) -> String {
    assert!(
        out.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn sdig_trace_json_emits_parseable_ledger_events() {
    let out = stdout_of(
        sdig()
            .args(["uy", "NS", "--trace-json"])
            .output()
            .expect("runs"),
    );
    let mut cache_inserts = 0;
    for line in out.lines().filter(|l| l.starts_with('{')) {
        let fields = dnsttl_telemetry::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        let event = dnsttl_telemetry::flat_get(&fields, "event")
            .and_then(|v| v.as_str())
            .expect("event field")
            .to_owned();
        if event == "cache_insert" {
            cache_inserts += 1;
            for key in ["qname", "rank", "origin", "bailiwick", "fp", "txn"] {
                assert!(
                    dnsttl_telemetry::flat_get(&fields, key).is_some(),
                    "cache_insert missing {key}: {line}"
                );
            }
        }
    }
    assert!(
        cache_inserts > 0,
        "a cold resolution must insert into cache:\n{out}"
    );
}

#[test]
fn sdig_cache_dump_lists_provenance_per_entry() {
    let out = stdout_of(
        sdig()
            .args([
                "--world",
                "cachetest",
                "p1.sub.cachetest.net",
                "AAAA",
                "--cache-dump",
            ])
            .output()
            .expect("runs"),
    );
    assert!(out.contains("cache snapshot @"), "{out}");
    // The in-bailiwick glue entry with full provenance.
    let glue = out
        .lines()
        .find(|l| l.contains("ns1.sub.cachetest.net. A "))
        .unwrap_or_else(|| panic!("glue entry missing from dump:\n{out}"));
    for token in [
        "rank=referral_additional",
        "origin=parent",
        "bw=in",
        "fp=",
        "sv=",
    ] {
        assert!(glue.contains(token), "dump line lacks {token}: {glue}");
    }
}

#[test]
fn sdig_snapshots_diff_across_time_via_repro() {
    let dir = std::env::temp_dir().join(format!("dnsttl-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    // Same world, one resolution vs three spaced past the 120 s A TTL:
    // the aged cache must differ.
    stdout_of(
        sdig()
            .args(["a.nic.uy", "A", "--cache-dump-json"])
            .arg(&a)
            .output()
            .expect("runs"),
    );
    stdout_of(
        sdig()
            .args([
                "a.nic.uy",
                "A",
                "--repeat",
                "3",
                "--every",
                "600",
                "--cache-dump-json",
            ])
            .arg(&b)
            .output()
            .expect("runs"),
    );
    let out = stdout_of(
        repro()
            .args(["cache-report", "--diff"])
            .arg(&a)
            .arg(&b)
            .output()
            .expect("runs"),
    );
    assert!(
        out.contains("a.nic.uy."),
        "diff must mention the re-fetched record:\n{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_bench_deterministic_section_is_byte_identical_across_reruns() {
    let dir = std::env::temp_dir().join(format!("dnsttl-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");
    for path in [&r1, &r2] {
        let out = repro()
            .args(["bench", "--quick", "--seed", "42", "--out"])
            .arg(path)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let t1 = std::fs::read_to_string(&r1).expect("report 1");
    let t2 = std::fs::read_to_string(&r2).expect("report 2");
    assert_eq!(
        dnsttl_bench::BenchReport::deterministic_portion(&t1),
        dnsttl_bench::BenchReport::deterministic_portion(&t2),
        "same-seed bench reruns must agree byte-for-byte below the timings marker"
    );
    // Both parse under the committed schema, timings included.
    let report = dnsttl_bench::BenchReport::parse(&t1).expect("valid report");
    assert!(!report.timings.is_empty());

    // And the check gate accepts a run against its own baseline.
    let out = repro()
        .args(["bench", "--quick", "--seed", "42", "--baseline"])
        .arg(&r1)
        .arg("--check")
        .output()
        .expect("runs");
    // Timing noise can trip the threshold on a loaded machine; accept
    // either verdict but require the gate to have *evaluated*.
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("bench check passed") || text.contains("bench regressions"),
        "gate did not run:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_resilience_is_deterministic_and_writes_schema_csv() {
    let base = std::env::temp_dir().join(format!("dnsttl-resil-{}", std::process::id()));
    let mut outputs = Vec::new();
    for run in ["r1", "r2"] {
        let dir = base.join(run);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let out = repro()
            .args(["--smoke", "--seed", "7", "resilience"])
            .current_dir(&dir)
            .output()
            .expect("runs");
        outputs.push(stdout_of(out));

        let csv =
            std::fs::read_to_string(dir.join("target/experiments/resilience_failure_rate.csv"))
                .expect("resilience CSV written");
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("ttl_s,serve_stale,queries,failures,failure_rate"),
            "CSV schema changed"
        );
        // 3 TTLs x serve-stale on/off.
        assert_eq!(lines.count(), 6, "one row per matrix cell:\n{csv}");

        // The exact outage script is journalled next to the CSVs and
        // round-trips through the fault-plan codec.
        let plan_text =
            std::fs::read_to_string(dir.join("target/experiments/resilience_fault_plan.txt"))
                .expect("fault plan journalled");
        let plan = dnsttl_netsim::FaultPlan::parse(&plan_text).expect("parseable plan");
        assert_eq!(plan.len(), 1, "one scripted outage");
        let manifest =
            std::fs::read_to_string(dir.join("target/experiments/resilience_manifest.json"))
                .expect("manifest written");
        assert!(
            manifest.contains("resilience_fault_plan.txt"),
            "manifest must list the fault plan artifact:\n{manifest}"
        );
    }
    assert_eq!(
        outputs[0], outputs[1],
        "same-seed resilience reruns must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn repro_shared_cache_is_deterministic_across_reruns_and_shard_counts() {
    // Three runs: sequential twice (same-seed byte-identity) and
    // `--shards 4` once (the sharded engine must reproduce the
    // sequential oracle byte for byte — one matrix cell per shard
    // cell). The stdout includes the contention arm, so agreement also
    // pins that thread scheduling never leaks into the artifact.
    let base = std::env::temp_dir().join(format!("dnsttl-shcache-{}", std::process::id()));
    let mut captures = Vec::new();
    for (run, shards) in [("r1", None), ("r2", None), ("w4", Some("4"))] {
        let dir = base.join(run);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let mut args = vec!["--smoke", "--seed", "7"];
        if let Some(n) = shards {
            args.extend(["--shards", n]);
        }
        args.push("shared-cache");
        let out = repro()
            .args(&args)
            .current_dir(&dir)
            .output()
            .expect("runs");
        let stdout = stdout_of(out);
        assert!(
            stdout.contains("contention_stats_invariant = 1.0000"),
            "contention arm must hold:\n{stdout}"
        );
        assert!(
            stdout.contains("ledger_conserved = 1.0000"),
            "conservation must hold on every topology:\n{stdout}"
        );

        let csv = std::fs::read_to_string(dir.join("target/experiments/shared_cache_hit_rate.csv"))
            .expect("shared-cache CSV written");
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("ttl_s,backend,clients,queries,hits,hit_rate,mean_latency_ms,upstream_queries"),
            "CSV schema changed"
        );
        // 3 TTLs x {partitioned, shared}.
        assert_eq!(lines.count(), 6, "one row per matrix cell:\n{csv}");
        captures.push((stdout, csv));
    }
    assert_eq!(
        captures[0], captures[1],
        "same-seed shared-cache reruns must be byte-identical"
    );
    assert_eq!(
        captures[0], captures[2],
        "--shards 4 must reproduce the sequential shared-cache oracle"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn sdig_fault_plan_outage_causes_servfail() {
    let dir = std::env::temp_dir().join(format!("dnsttl-plan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let plan = dir.join("outage.txt");
    // All three .uy authoritatives dark for the first two hours.
    std::fs::write(
        &plan,
        "# dnsttl-fault-plan/1\n\
         outage 200.40.241.1 0 7200000\n\
         outage 200.40.241.2 0 7200000\n\
         outage 204.61.216.40 0 7200000\n",
    )
    .expect("plan written");
    let out = stdout_of(
        sdig()
            .args(["www.gub.uy", "A", "--fault-plan"])
            .arg(&plan)
            .output()
            .expect("runs"),
    );
    assert!(
        out.contains(";; fault plan: 3 outage(s)"),
        "plan summary missing:\n{out}"
    );
    let session = out
        .lines()
        .find(|l| l.starts_with(";; session:"))
        .expect("session line");
    assert!(
        session.contains("1 servfails"),
        "an outage of every child server must SERVFAIL the query: {session}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sdig_fault_plan_flush_forces_refetch() {
    let dir = std::env::temp_dir().join(format!("dnsttl-flush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let plan = dir.join("flush.txt");
    std::fs::write(&plan, "flush 30000\n").expect("plan written");
    // Two queries 60 s apart: without the flush the second is a cache
    // hit (the .uy NS TTL is 300 s); the scripted flush at t=30 s
    // forces a refetch instead.
    let out = stdout_of(
        sdig()
            .args(["uy", "NS", "--repeat", "2", "--every", "60", "--fault-plan"])
            .arg(&plan)
            .output()
            .expect("runs"),
    );
    assert!(
        out.contains("cache flush applied"),
        "flush must be reported:\n{out}"
    );
    assert_eq!(
        out.matches("cache miss").count(),
        2,
        "the flush must turn the second query into a miss:\n{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sdig_rejects_malformed_fault_plan() {
    let dir = std::env::temp_dir().join(format!("dnsttl-badplan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let plan = dir.join("bad.txt");
    std::fs::write(&plan, "outage not-an-ip 0\n").expect("plan written");
    let out = sdig()
        .args(["uy", "NS", "--fault-plan"])
        .arg(&plan)
        .output()
        .expect("runs");
    assert!(!out.status.success(), "malformed plan must be rejected");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad fault plan"),
        "stderr must explain the rejection"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sdig_explain_prints_causal_tree_for_multi_hop_resolution() {
    // cachetest-out delegates sub.cachetest.net to an out-of-bailiwick
    // NS, so the resolution recurses: the tree must show the ns_lookup
    // child span nested under the client resolve span.
    let out = stdout_of(
        sdig()
            .args([
                "--world",
                "cachetest-out",
                "p1.sub.cachetest.net",
                "AAAA",
                "--explain",
            ])
            .output()
            .expect("runs"),
    );
    assert!(out.contains(";; causal span tree"), "{out}");
    assert!(
        out.contains("resolve:p1.sub.cachetest.net.:AAAA"),
        "root span frame missing:\n{out}"
    );
    let child = out
        .lines()
        .find(|l| l.contains("ns_lookup:"))
        .unwrap_or_else(|| panic!("no ns_lookup child span in tree:\n{out}"));
    assert!(
        child.trim_start().starts_with("├─") || child.trim_start().starts_with("└─"),
        "child span must be indented under its parent: {child}"
    );
}

#[test]
fn repro_flame_emits_collapsed_stack_lines() {
    let dir = std::env::temp_dir().join(format!("dnsttl-flame-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    // A real run writes the trace; flame folds it.
    let out = repro()
        .args(["--smoke", "--seed", "7", "fig10"])
        .current_dir(&dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = dir.join("target/experiments/uy_latency_trace.jsonl");
    let folded = stdout_of(repro().arg("flame").arg(&trace).output().expect("runs"));
    assert!(!folded.trim().is_empty(), "no collapsed stacks emitted");
    for line in folded.lines() {
        // flamegraph.pl input: `frame;frame count` — exactly one space,
        // an integer weight, no whitespace inside frames.
        let (stack, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed collapsed-stack line: {line:?}"));
        assert!(!stack.is_empty(), "empty stack: {line:?}");
        assert!(
            !stack.contains(' '),
            "frames must not contain spaces: {line:?}"
        );
        weight
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("weight not an integer in {line:?}: {e}"));
    }
    assert!(
        folded.lines().any(|l| l.starts_with("resolve:")),
        "resolution frames missing:\n{folded}"
    );
    // Pointing flame at the run directory folds the same trace.
    let from_dir = stdout_of(
        repro()
            .arg("flame")
            .arg(dir.join("target/experiments"))
            .output()
            .expect("runs"),
    );
    assert_eq!(folded, from_dir, "directory mode must fold the same trace");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_doctor_passes_healthy_runs_and_flags_corruption() {
    let dir = std::env::temp_dir().join(format!("dnsttl-doctor-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = repro()
        .args(["--smoke", "--seed", "7", "--shards", "4", "resilience"])
        .current_dir(&dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let exp = dir.join("target/experiments");

    // Healthy run: every check passes, exit code 0. This is also the
    // CI assertion that the trace ring dropped nothing in a smoke run.
    let verdict = repro().arg("doctor").arg(&exp).output().expect("runs");
    let report = String::from_utf8_lossy(&verdict.stdout).to_string();
    assert!(
        verdict.status.success(),
        "doctor must pass a healthy run:\n{report}"
    );
    assert!(report.contains("trace ring dropped nothing"), "{report}");
    assert!(report.contains(", 0 failed"), "{report}");

    // Corrupt the manifest (claim a missing artifact and a drop) and
    // the audit must fail with a nonzero exit.
    let manifest_path = exp.join("resilience_manifest.json");
    let manifest = std::fs::read_to_string(&manifest_path).expect("manifest");
    std::fs::write(
        &manifest_path,
        manifest
            .replace("\"trace_dropped\":0", "\"trace_dropped\":5")
            .replace(
                "resilience_fault_plan.txt",
                "resilience_fault_plan_gone.txt",
            ),
    )
    .expect("rewrite manifest");
    let verdict = repro().arg("doctor").arg(&exp).output().expect("runs");
    let report = String::from_utf8_lossy(&verdict.stdout).to_string();
    assert!(
        !verdict.status.success(),
        "doctor must fail a corrupted run:\n{report}"
    );
    assert!(report.contains("dropped 5 events"), "{report}");
    assert!(report.contains("is missing"), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_shards_flag_matches_the_sequential_oracle() {
    // The full CLI path of the determinism contract (DESIGN.md §10):
    // `repro --shards 1` is the reference oracle and `--shards 4` must
    // reproduce its stdout and every CSV byte for byte. The resilience
    // module exercises the sharded client simulation plus CSV, fault
    // plan, and manifest emission in one run.
    let base = std::env::temp_dir().join(format!("dnsttl-shards-{}", std::process::id()));
    let mut captures = Vec::new();
    for workers in ["1", "4"] {
        let dir = base.join(format!("w{workers}"));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let out = repro()
            .args(["--smoke", "--seed", "7", "--shards", workers, "resilience"])
            .current_dir(&dir)
            .output()
            .expect("runs");
        let mut capture = stdout_of(out);

        let exp = dir.join("target/experiments");
        let mut files: Vec<_> = std::fs::read_dir(&exp)
            .expect("artifact dir written")
            .map(|e| e.expect("dir entry").path())
            .collect();
        files.sort();
        assert!(
            !files.is_empty(),
            "no artifacts written for --shards {workers}"
        );
        for f in &files {
            capture.push_str(&f.file_name().expect("name").to_string_lossy());
            capture.push('\n');
            capture.push_str(&std::fs::read_to_string(f).expect("artifact readable"));
        }
        captures.push(capture);
    }
    assert_eq!(
        captures[0], captures[1],
        "--shards 4 must be byte-identical to the sequential oracle"
    );
    let _ = std::fs::remove_dir_all(&base);

    // And the flag rejects a zero worker count.
    let out = repro()
        .args(["--shards", "0", "resilience"])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "--shards 0 must be rejected");
}
