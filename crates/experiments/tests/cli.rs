//! Process-level tests for the `sdig` and `repro` binaries: the
//! forensics flags (`--trace-json`, `--cache-dump`, snapshot diffing)
//! and the bench trajectory's determinism guarantee.

use std::process::Command;

fn sdig() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdig"))
}

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn stdout_of(out: std::process::Output) -> String {
    assert!(
        out.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn sdig_trace_json_emits_parseable_ledger_events() {
    let out = stdout_of(
        sdig()
            .args(["uy", "NS", "--trace-json"])
            .output()
            .expect("runs"),
    );
    let mut cache_inserts = 0;
    for line in out.lines().filter(|l| l.starts_with('{')) {
        let fields = dnsttl_telemetry::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        let event = dnsttl_telemetry::flat_get(&fields, "event")
            .and_then(|v| v.as_str())
            .expect("event field")
            .to_owned();
        if event == "cache_insert" {
            cache_inserts += 1;
            for key in ["qname", "rank", "origin", "bailiwick", "fp", "txn"] {
                assert!(
                    dnsttl_telemetry::flat_get(&fields, key).is_some(),
                    "cache_insert missing {key}: {line}"
                );
            }
        }
    }
    assert!(
        cache_inserts > 0,
        "a cold resolution must insert into cache:\n{out}"
    );
}

#[test]
fn sdig_cache_dump_lists_provenance_per_entry() {
    let out = stdout_of(
        sdig()
            .args([
                "--world",
                "cachetest",
                "p1.sub.cachetest.net",
                "AAAA",
                "--cache-dump",
            ])
            .output()
            .expect("runs"),
    );
    assert!(out.contains("cache snapshot @"), "{out}");
    // The in-bailiwick glue entry with full provenance.
    let glue = out
        .lines()
        .find(|l| l.contains("ns1.sub.cachetest.net. A "))
        .unwrap_or_else(|| panic!("glue entry missing from dump:\n{out}"));
    for token in [
        "rank=referral_additional",
        "origin=parent",
        "bw=in",
        "fp=",
        "sv=",
    ] {
        assert!(glue.contains(token), "dump line lacks {token}: {glue}");
    }
}

#[test]
fn sdig_snapshots_diff_across_time_via_repro() {
    let dir = std::env::temp_dir().join(format!("dnsttl-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    // Same world, one resolution vs three spaced past the 120 s A TTL:
    // the aged cache must differ.
    stdout_of(
        sdig()
            .args(["a.nic.uy", "A", "--cache-dump-json"])
            .arg(&a)
            .output()
            .expect("runs"),
    );
    stdout_of(
        sdig()
            .args([
                "a.nic.uy",
                "A",
                "--repeat",
                "3",
                "--every",
                "600",
                "--cache-dump-json",
            ])
            .arg(&b)
            .output()
            .expect("runs"),
    );
    let out = stdout_of(
        repro()
            .args(["cache-report", "--diff"])
            .arg(&a)
            .arg(&b)
            .output()
            .expect("runs"),
    );
    assert!(
        out.contains("a.nic.uy."),
        "diff must mention the re-fetched record:\n{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_bench_deterministic_section_is_byte_identical_across_reruns() {
    let dir = std::env::temp_dir().join(format!("dnsttl-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");
    for path in [&r1, &r2] {
        let out = repro()
            .args(["bench", "--quick", "--seed", "42", "--out"])
            .arg(path)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let t1 = std::fs::read_to_string(&r1).expect("report 1");
    let t2 = std::fs::read_to_string(&r2).expect("report 2");
    assert_eq!(
        dnsttl_bench::BenchReport::deterministic_portion(&t1),
        dnsttl_bench::BenchReport::deterministic_portion(&t2),
        "same-seed bench reruns must agree byte-for-byte below the timings marker"
    );
    // Both parse under the committed schema, timings included.
    let report = dnsttl_bench::BenchReport::parse(&t1).expect("valid report");
    assert!(!report.timings.is_empty());

    // And the check gate accepts a run against its own baseline.
    let out = repro()
        .args(["bench", "--quick", "--seed", "42", "--baseline"])
        .arg(&r1)
        .arg("--check")
        .output()
        .expect("runs");
    // Timing noise can trip the threshold on a loaded machine; accept
    // either verdict but require the gate to have *evaluated*.
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("bench check passed") || text.contains("bench regressions"),
        "gate did not run:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
