//! Figures 1–2 and Table 2: resolver centricity seen from Atlas VPs.
//!
//! * **Figure 1** — CDFs of observed TTLs for `.uy` NS (child 300 s vs
//!   parent 172 800 s) and `a.nic.uy` A (child 120 s): most responses
//!   sit at or below the child's TTL (child-centric majority), with a
//!   parent-centric minority up at day-plus values.
//! * **Figure 2** — `google.co` NS (parent 900 s vs child 345 600 s):
//!   most answers exceed the parent's 900 s; a visible band sits at
//!   Google Public DNS's 21 599 s cap; a small group at exactly the
//!   parent value.
//! * **Table 2** — the per-experiment probe/VP/query accounting.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::sharded::{self, WorldSpec};
use dnsttl_analysis::{ascii_cdf_log, BehaviorCensus, CsvWriter, Ecdf, Table};
use dnsttl_atlas::{
    run_measurement, Dataset, MeasurementSpec, Population, PopulationConfig, QueryName,
};
use dnsttl_netsim::SimRng;
use dnsttl_wire::{Name, RecordType};

struct Campaign {
    dataset: Dataset,
    vps: usize,
    probes: usize,
}

fn campaign(
    cfg: &ExpConfig,
    tag: &str,
    world: WorldSpec,
    qname: &str,
    qtype: RecordType,
    hours: u64,
) -> Campaign {
    let spec = MeasurementSpec::every_600s(
        QueryName::Fixed(Name::parse(qname).expect("static name")),
        qtype,
        hours,
    );
    if let Some(workers) = cfg.shards {
        let out = sharded::measurement_campaign(cfg, tag, world, &spec, workers);
        return Campaign {
            dataset: out.dataset,
            vps: out.vps,
            probes: out.probes,
        };
    }
    let (mut net, roots, _) = world.build();
    net.set_telemetry(cfg.telemetry.clone());
    let mut rng = SimRng::seed_from(cfg.seed_for(tag));
    let mut pop = Population::build(&PopulationConfig::small(cfg.probes), &roots, &mut rng);
    pop.set_telemetry(&cfg.telemetry);
    let dataset = run_measurement(&spec, &mut pop, &mut net, &mut rng);
    crate::flightdeck::record_latency_quantiles(&cfg.telemetry, tag, &dataset);
    Campaign {
        dataset,
        vps: pop.vp_count(),
        probes: pop.probe_count(),
    }
}

/// Runs the centricity experiments; returns reports for fig1, fig2 and
/// table2.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    // Figure 1 inputs: .uy before the change (§3.2 values).
    let uy_before = WorldSpec::Uy {
        ns_ttl: dnsttl_wire::Ttl::from_secs(300),
        a_ttl: dnsttl_wire::Ttl::from_secs(120),
    };
    let uy_ns = campaign(cfg, "fig1-ns", uy_before, "uy", RecordType::NS, 2);
    let uy_a = campaign(cfg, "fig1-a", uy_before, "a.nic.uy", RecordType::A, 3);
    // Figure 2 input: google.co.
    let gco = campaign(
        cfg,
        "fig2",
        WorldSpec::GoogleCo,
        "google.co",
        RecordType::NS,
        1,
    );

    let mut reports = Vec::new();

    // ----- Figure 1 -----
    let mut fig1 = Report::new("fig1", "TTLs from VPs for .uy-NS and a.nic.uy-A queries");
    let ns_ttls = Ecdf::from_u64(uy_ns.dataset.ttls());
    let a_ttls = Ecdf::from_u64(uy_a.dataset.ttls());
    fig1.push(ascii_cdf_log(
        &[(".uy NS", &ns_ttls), ("a.nic.uy A", &a_ttls)],
        64,
        12,
    ));
    fig1.push(format!(".uy NS observed TTLs: {}", ns_ttls.summary()));
    fig1.push(format!("a.nic.uy A observed TTLs: {}", a_ttls.summary()));
    let ns_child = ns_ttls.fraction_leq(300.0);
    let a_child = a_ttls.fraction_leq(120.0);
    let ns_full_parent = 1.0 - ns_ttls.fraction_leq(172_799.0);
    fig1.push(format!(
        "child-centric share: NS≤300s {:.1}%  A≤120s {:.1}%  (paper: 90% / 88%)",
        ns_child * 100.0,
        a_child * 100.0
    ));
    fig1.metric("frac_ns_child", ns_child);
    fig1.metric("frac_a_child", a_child);
    fig1.metric("frac_ns_full_parent", ns_full_parent);

    // Per-VP behaviour census (the paper's manual attribution of CDF
    // regions to resolver behaviours, automated).
    let mut series: Vec<Vec<u64>> = Vec::new();
    for (_vp, results) in uy_ns.dataset.by_vp() {
        series.push(
            results
                .iter()
                .filter(|r| r.valid)
                .filter_map(|r| r.ttl)
                .collect(),
        );
    }
    let census = BehaviorCensus::take(series.iter().map(|v| v.as_slice()), 300, 172_800);
    let mut t = Table::new(vec!["behaviour", "VPs", "share"]);
    let classified = (census.total() - census.unknown).max(1);
    let mut census_row = |label: &str, n: usize| {
        t.row(vec![
            label.into(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / classified as f64),
        ]);
    };
    census_row("child-centric", census.child_centric);
    census_row("parent-centric (aging)", census.parent_centric);
    census_row("pinned full TTL (RFC 7706 mirror)", census.pinned);
    census_row("TTL-capped", census.capped.len());
    census_row("mixed (fragmented backends)", census.mixed);
    fig1.push("per-VP behaviour census (.uy NS):");
    fig1.push(t.render());
    fig1.metric("census_child_fraction", census.child_fraction());
    fig1.metric("census_pinned", census.pinned as f64);
    fig1.metric("census_mixed", census.mixed as f64);
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(dir.join("fig1_uy_ttl_cdf.csv"), &["series", "ttl_s", "cdf"]);
        for (series, e) in [("uy-ns", &ns_ttls), ("a.nic.uy-a", &a_ttls)] {
            for (x, y) in e.points() {
                w.row(&[series.into(), format!("{x}"), format!("{y}")]);
            }
        }
        let _ = w.finish();
    }
    reports.push(fig1);

    // ----- Figure 2 -----
    let mut fig2 = Report::new("fig2", "TTLs from VPs for google.co-NS queries");
    let g_ttls = Ecdf::from_u64(gco.dataset.ttls());
    fig2.push(ascii_cdf_log(&[("google.co NS", &g_ttls)], 64, 12));
    fig2.push(format!("google.co NS observed TTLs: {}", g_ttls.summary()));
    let above_parent = 1.0 - g_ttls.fraction_leq(900.0);
    // The cap band: 21 599 s minus up to one experiment-hour of aging.
    let at_cap = g_ttls.fraction_leq(21_599.0) - g_ttls.fraction_leq(17_998.0);
    let at_parent = g_ttls.fraction_leq(900.0) - g_ttls.fraction_leq(899.0);
    fig2.push(format!(
        "above parent 900s: {:.1}% (paper ~70%+15%)  capped band @21599s: {:.1}% (paper ~15%)  exactly 900s: {:.1}% (paper ~9%)",
        above_parent * 100.0,
        at_cap * 100.0,
        at_parent * 100.0
    ));
    fig2.metric("frac_above_parent", above_parent);
    fig2.metric("frac_cap_band", at_cap);
    fig2.metric("frac_at_parent", at_parent);
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(dir.join("fig2_googleco_ttl_cdf.csv"), &["ttl_s", "cdf"]);
        for (x, y) in g_ttls.points() {
            w.row_display(&[x, y]);
        }
        let _ = w.finish();
    }
    reports.push(fig2);

    // ----- Table 2 -----
    let mut table2 = Report::new("table2", "Resolver centricity experiments");
    let mut t = Table::new(vec!["", ".uy-NS", "a.nic.uy-A", "google.co-NS"]);
    let row = |label: &str, f: &dyn Fn(&Campaign) -> String, cs: &[&Campaign]| -> Vec<String> {
        let mut cells = vec![label.to_owned()];
        cells.extend(cs.iter().map(|c| f(c)));
        cells
    };
    let campaigns = [&uy_ns, &uy_a, &gco];
    t.row(row("TTL Parent", &|_| "172800 / 900".into(), &[]));
    t.row(row("Probes", &|c| c.probes.to_string(), &campaigns));
    t.row(row("VPs", &|c| c.vps.to_string(), &campaigns));
    t.row(row("Queries", &|c| c.dataset.len().to_string(), &campaigns));
    t.row(row(
        "Responses (valid)",
        &|c| c.dataset.valid_count().to_string(),
        &campaigns,
    ));
    t.row(row(
        "Responses (disc.)",
        &|c| c.dataset.discarded_count().to_string(),
        &campaigns,
    ));
    table2.push(t.render());
    table2.metric("uy_ns_queries", uy_ns.dataset.len() as f64);
    table2.metric("uy_ns_valid", uy_ns.dataset.valid_count() as f64);
    table2.metric("uy_ns_vps", uy_ns.vps as f64);
    table2.metric(
        "discard_fraction",
        uy_ns.dataset.discarded_count() as f64 / uy_ns.dataset.len().max(1) as f64,
    );
    reports.push(table2);

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centricity_shapes_match_paper() {
        let reports = run(&ExpConfig::quick());
        let fig1 = &reports[0];
        // Paper: 90% of .uy-NS ≤ 300 s, 88% of a.nic.uy-A ≤ 120 s.
        assert!(
            fig1.get("frac_ns_child") > 0.75,
            "{}",
            fig1.get("frac_ns_child")
        );
        assert!(
            fig1.get("frac_a_child") > 0.75,
            "{}",
            fig1.get("frac_a_child")
        );
        // A parent-centric minority exists but is a minority.
        assert!(fig1.get("frac_ns_child") < 0.99);
        // ~2.9% show the full parent TTL (local-root mirrors).
        assert!(fig1.get("frac_ns_full_parent") > 0.0);
        assert!(fig1.get("frac_ns_full_parent") < 0.2);

        let fig2 = &reports[1];
        // Paper: ~85% above the parent's 900 s (70% child + 15% capped).
        assert!(fig2.get("frac_above_parent") > 0.7);
        // The 21599 s capping band exists.
        assert!(fig2.get("frac_cap_band") > 0.02);
        // Some answers sit exactly at the parent's 900 s.
        assert!(fig2.get("frac_at_parent") > 0.0);

        let table2 = &reports[2];
        assert!(table2.get("uy_ns_queries") > 0.0);
        assert!(table2.get("discard_fraction") < 0.2);
    }

    #[test]
    fn centricity_shapes_survive_sharding() {
        let cfg = ExpConfig {
            shards: Some(2),
            ..ExpConfig::quick()
        };
        let reports = run(&cfg);
        let fig1 = &reports[0];
        assert!(
            fig1.get("frac_ns_child") > 0.75,
            "{}",
            fig1.get("frac_ns_child")
        );
        assert!(fig1.get("frac_ns_child") < 0.99);
        let fig2 = &reports[1];
        assert!(
            fig2.get("frac_above_parent") > 0.7,
            "{}",
            fig2.get("frac_above_parent")
        );
    }
}
