//! The flight recorder: causal span trees, per-scenario latency
//! quantiles, and run-directory auditing.
//!
//! `crates/telemetry` records a flat stream of trace events; this
//! module turns it into walkable structure (DESIGN.md §12):
//!
//! * [`SpanForest`] — parent/child span trees reconstructed from a
//!   trace (in-process or from a `*_trace.jsonl` file), rendered as an
//!   ASCII tree by `sdig --explain` and as collapsed-stack lines
//!   (flamegraph.pl / inferno compatible) by `repro flame`;
//! * [`record_latency_quantiles`] — folds a measurement [`Dataset`]
//!   into per-scenario and per-TTL-band quantile sketches, the numbers
//!   the paper's §5–§6 latency claims are stated in;
//! * [`doctor_dir`] — the `repro doctor` audit: manifest/seed
//!   consistency, trace-ring drop counters, span-tree well-formedness,
//!   and cache-ledger conservation across a run directory.

use dnsttl_atlas::Dataset;
use dnsttl_telemetry::{flat_get, parse_flat_object, JsonScalar, Telemetry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

// ───────────────────────── quantile recording ──────────────────────

/// The TTL bands the per-TTL quantile sketches are keyed by: fine
/// where the paper's TTL arguments live (seconds to an hour), coarse
/// above. `None` (no answer / no TTL observed) gets its own band.
pub fn ttl_band(ttl: Option<u64>) -> &'static str {
    match ttl {
        None => "none",
        Some(0) => "0",
        Some(1..=60) => "1-60",
        Some(61..=300) => "61-300",
        Some(301..=3600) => "301-3600",
        Some(3601..=86400) => "3601-86400",
        Some(_) => ">86400",
    }
}

/// Records every valid measurement of `dataset` into the scenario's
/// quantile sketches: `resolution_latency_ms{scenario=…}` and
/// `resolution_latency_by_ttl_ms{scenario=…,ttl_band=…}`.
///
/// Called on the *merged* dataset (after `Dataset::merge_shards`), so
/// the sketch contents depend only on the dataset rows — byte-identical
/// for any worker count by construction.
pub fn record_latency_quantiles(telemetry: &Telemetry, scenario: &str, dataset: &Dataset) {
    if !telemetry.is_enabled() {
        return;
    }
    for r in dataset.valid() {
        telemetry.sketch_with("resolution_latency_ms", &[("scenario", scenario)], r.rtt_ms);
        telemetry.sketch_with(
            "resolution_latency_by_ttl_ms",
            &[("scenario", scenario), ("ttl_band", ttl_band(r.ttl))],
            r.rtt_ms,
        );
    }
}

// ───────────────────────── span forest ─────────────────────────────

/// One parsed trace line, the common shape behind in-process tracers
/// and `*_trace.jsonl` files.
#[derive(Debug, Clone)]
pub struct TraceLine {
    /// Simulation time in milliseconds.
    pub t_ms: u64,
    /// Monotonic sequence number.
    pub seq: u64,
    /// Event kind string (`span_start`, `cache_hit`, …).
    pub event: String,
    /// The span the event belongs to, if any.
    pub span: Option<u64>,
    /// Causal parent span (on `span_start` of child resolutions).
    pub parent: Option<u64>,
    /// Remaining fields, rendered to strings in line order.
    pub fields: Vec<(String, String)>,
}

fn scalar_to_string(v: &JsonScalar) -> String {
    match v {
        JsonScalar::Str(s) => s.clone(),
        JsonScalar::Num(n) => {
            if *n == n.trunc() && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonScalar::Bool(b) => b.to_string(),
        JsonScalar::Null => "null".to_string(),
    }
}

/// Parses one trace JSONL line into a [`TraceLine`].
pub fn parse_trace_line(line: &str) -> Result<TraceLine, String> {
    let fields = parse_flat_object(line)?;
    let t_ms = flat_get(&fields, "t_ms")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing t_ms in {line:?}"))?;
    let seq = flat_get(&fields, "seq")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing seq in {line:?}"))?;
    let event = flat_get(&fields, "event")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("missing event in {line:?}"))?
        .to_string();
    let span = flat_get(&fields, "span").and_then(|v| v.as_u64());
    let parent = flat_get(&fields, "parent").and_then(|v| v.as_u64());
    let rest = fields
        .iter()
        .filter(|(k, _)| !matches!(k.as_str(), "t_ms" | "seq" | "event" | "span" | "parent"))
        .map(|(k, v)| (k.clone(), scalar_to_string(v)))
        .collect();
    Ok(TraceLine {
        t_ms,
        seq,
        event,
        span,
        parent,
        fields: rest,
    })
}

/// Parses a whole trace JSONL export.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<TraceLine>, String> {
    text.lines()
        .enumerate()
        .map(|(i, line)| parse_trace_line(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span id from the trace.
    pub id: u64,
    /// Causal parent, if this span was triggered by another.
    pub parent: Option<u64>,
    /// Start time (the `span_start` event's `t_ms`).
    pub start_ms: u64,
    /// End time (the `span_end` event's `t_ms`; `start_ms` if missing).
    pub end_ms: u64,
    /// Whether a `span_end` was seen.
    pub ended: bool,
    /// Flame-frame label, e.g. `resolve:example.:A` or
    /// `ns_lookup:a.nic.cl:A` — `cause` (default `resolve`), qname,
    /// qtype joined with `:` (no spaces or semicolons, so frames stay
    /// collapsed-stack clean).
    pub frame: String,
    /// `span_start` fields (resolver, qname, …), for the tree header.
    pub start_fields: Vec<(String, String)>,
    /// `span_end` fields (rcode, cache_hit, …), for the tree header.
    pub end_fields: Vec<(String, String)>,
    /// Mid-span events: `(t_ms, seq, rendered text)`.
    pub events: Vec<(u64, u64, String)>,
    /// Child span ids, in start order.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// Span duration in sim-milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }
}

/// A trace's spans, linked into causal trees.
#[derive(Debug, Default)]
pub struct SpanForest {
    /// Every span seen, keyed by id.
    pub nodes: BTreeMap<u64, SpanNode>,
    /// Spans with no (known) parent, in start order.
    pub roots: Vec<u64>,
    /// Structural problems found while building: duplicate starts,
    /// events on unknown spans, parents that never started. Empty for
    /// a well-formed, drop-free trace.
    pub issues: Vec<String>,
}

fn field<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Builds the span forest from parsed trace lines (which must be in
/// trace order, as both the tracer and the JSONL export guarantee).
pub fn build_span_forest(lines: &[TraceLine]) -> SpanForest {
    let mut forest = SpanForest::default();
    for line in lines {
        let Some(span) = line.span else { continue };
        match line.event.as_str() {
            "span_start" => {
                if forest.nodes.contains_key(&span) {
                    forest.issues.push(format!(
                        "span {span}: second span_start at seq {}",
                        line.seq
                    ));
                    continue;
                }
                let cause = field(&line.fields, "cause").unwrap_or("resolve");
                let mut frame = String::from(cause);
                for key in ["qname", "qtype"] {
                    if let Some(v) = field(&line.fields, key) {
                        frame.push(':');
                        // Frames must stay collapsed-stack clean.
                        frame.extend(v.chars().map(|c| {
                            if c == ';' || c.is_whitespace() {
                                '_'
                            } else {
                                c
                            }
                        }));
                    }
                }
                if let Some(parent) = line.parent {
                    match forest.nodes.get_mut(&parent) {
                        Some(p) => p.children.push(span),
                        None => forest.issues.push(format!(
                            "span {span}: parent {parent} never started (orphan)"
                        )),
                    }
                }
                forest.nodes.insert(
                    span,
                    SpanNode {
                        id: span,
                        parent: line.parent,
                        start_ms: line.t_ms,
                        end_ms: line.t_ms,
                        ended: false,
                        frame,
                        start_fields: line.fields.clone(),
                        end_fields: Vec::new(),
                        events: Vec::new(),
                        children: Vec::new(),
                    },
                );
                if line.parent.is_none() || !forest.nodes.contains_key(&line.parent.unwrap()) {
                    forest.roots.push(span);
                }
            }
            "span_end" => match forest.nodes.get_mut(&span) {
                Some(node) => {
                    if node.ended {
                        forest
                            .issues
                            .push(format!("span {span}: second span_end at seq {}", line.seq));
                    }
                    node.ended = true;
                    node.end_ms = node.end_ms.max(line.t_ms);
                    node.end_fields = line.fields.clone();
                }
                None => forest.issues.push(format!(
                    "span_end for unknown span {span} at seq {}",
                    line.seq
                )),
            },
            other => match forest.nodes.get_mut(&span) {
                Some(node) => {
                    let mut text = other.to_string();
                    for (k, v) in &line.fields {
                        let _ = write!(text, " {k}={v}");
                    }
                    node.events.push((line.t_ms, line.seq, text));
                }
                None => forest.issues.push(format!(
                    "{} on unknown span {span} at seq {}",
                    other, line.seq
                )),
            },
        }
    }
    forest
}

/// Checks span-tree well-formedness: every span ended at or after its
/// start, and every child's sim-time interval nests within its
/// parent's. Returns human-readable violations (empty = well-formed).
/// Build-time issues ([`SpanForest::issues`]) are included.
pub fn well_formedness_issues(forest: &SpanForest) -> Vec<String> {
    let mut issues = forest.issues.clone();
    for node in forest.nodes.values() {
        if !node.ended {
            issues.push(format!("span {}: never ended", node.id));
        }
        if node.end_ms < node.start_ms {
            issues.push(format!(
                "span {}: ends at {} before start {}",
                node.id, node.end_ms, node.start_ms
            ));
        }
        for &child in &node.children {
            let Some(c) = forest.nodes.get(&child) else {
                issues.push(format!("span {}: missing child {child}", node.id));
                continue;
            };
            if c.start_ms < node.start_ms || (c.ended && c.end_ms > node.end_ms) {
                issues.push(format!(
                    "span {child} [{}..{}] not nested within parent {} [{}..{}]",
                    c.start_ms, c.end_ms, node.id, node.start_ms, node.end_ms
                ));
            }
        }
    }
    issues
}

// ───────────────────────── renderings ──────────────────────────────

fn render_header(node: &SpanNode) -> String {
    let mut out = format!(
        "span {} {} [{}..{} ms]",
        node.id, node.frame, node.start_ms, node.end_ms
    );
    for key in [
        "rcode",
        "cache_hit",
        "stale",
        "upstream_queries",
        "elapsed_ms",
    ] {
        if let Some(v) = field(&node.end_fields, key) {
            let _ = write!(out, " {key}={v}");
        }
    }
    out
}

fn render_subtree(forest: &SpanForest, id: u64, prefix: &str, out: &mut String) {
    let Some(node) = forest.nodes.get(&id) else {
        return;
    };
    // Interleave mid-span events and child spans by (t_ms, seq): the
    // tree reads as a timeline of what the resolution actually did.
    enum Item<'a> {
        Event(&'a str),
        Child(u64),
    }
    let mut items: Vec<(u64, u64, Item)> = node
        .events
        .iter()
        .map(|(t, s, text)| (*t, *s, Item::Event(text.as_str())))
        .collect();
    for &child in &node.children {
        if let Some(c) = forest.nodes.get(&child) {
            // Children sort by their start event's position.
            items.push((c.start_ms, u64::MAX, Item::Child(child)));
        }
    }
    items.sort_by_key(|(t, s, _)| (*t, *s));
    let n = items.len();
    for (i, (t, _, item)) in items.into_iter().enumerate() {
        let last = i + 1 == n;
        let (tee, bar) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        match item {
            Item::Event(text) => {
                let _ = writeln!(out, "{prefix}{tee}@{t} {text}");
            }
            Item::Child(child) => {
                let header = render_header(&forest.nodes[&child]);
                let _ = writeln!(out, "{prefix}{tee}{header}");
                render_subtree(forest, child, &format!("{prefix}{bar}"), out);
            }
        }
    }
}

/// Renders the whole forest as an ASCII causal tree (`sdig --explain`).
pub fn render_tree(forest: &SpanForest) -> String {
    let mut out = String::new();
    for &root in &forest.roots {
        let _ = writeln!(out, "{}", render_header(&forest.nodes[&root]));
        render_subtree(forest, root, "", &mut out);
    }
    out
}

/// Folds the forest into collapsed-stack lines (`frame;frame weight`),
/// flamegraph.pl / inferno compatible. The weight is *self* sim-time in
/// milliseconds: a span's duration minus its children's durations
/// (clamped at zero), so stacking the lines reproduces total sim-time
/// without double-counting. Identical stacks aggregate; zero-weight
/// stacks are dropped.
pub fn collapsed_stacks(forest: &SpanForest) -> Vec<String> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    fn walk(
        forest: &SpanForest,
        id: u64,
        stack: &mut Vec<String>,
        totals: &mut BTreeMap<String, u64>,
    ) {
        let Some(node) = forest.nodes.get(&id) else {
            return;
        };
        stack.push(node.frame.clone());
        let child_total: u64 = node
            .children
            .iter()
            .filter_map(|c| forest.nodes.get(c))
            .map(|c| c.duration_ms())
            .sum();
        let self_ms = node.duration_ms().saturating_sub(child_total);
        if self_ms > 0 {
            *totals.entry(stack.join(";")).or_insert(0) += self_ms;
        }
        for &child in &node.children {
            walk(forest, child, stack, totals);
        }
        stack.pop();
    }
    for &root in &forest.roots {
        let mut stack = Vec::new();
        walk(forest, root, &mut stack, &mut totals);
    }
    totals
        .into_iter()
        .map(|(stack, ms)| format!("{stack} {ms}"))
        .collect()
}

// ───────────────────────── repro doctor ────────────────────────────

/// Extracts `"key":<u64>` from (possibly nested) JSON text by direct
/// scan — the manifest format is nested, which the strict flat parser
/// rejects, and a doctor must not trust the writer it is auditing
/// anyway.
pub(crate) fn scan_u64_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let digits: String = text[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extracts the string items of `"key":[ … ]`.
pub(crate) fn scan_str_array(text: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":[");
    let Some(start) = text.find(&pat).map(|i| i + pat.len()) else {
        return Vec::new();
    };
    let Some(end) = text[start..].find(']').map(|i| start + i) else {
        return Vec::new();
    };
    text[start..end]
        .split(',')
        .filter_map(|item| {
            let item = item.trim();
            item.strip_prefix('"')?
                .strip_suffix('"')
                .map(str::to_string)
        })
        .collect()
}

/// Extracts the flat object under `"key":{ … }` and parses it.
fn scan_flat_object(text: &str, key: &str) -> Vec<(String, JsonScalar)> {
    let pat = format!("\"{key}\":{{");
    let Some(start) = text.find(&pat).map(|i| i + pat.len() - 1) else {
        return Vec::new();
    };
    let Some(end) = text[start..].find('}').map(|i| start + i + 1) else {
        return Vec::new();
    };
    parse_flat_object(&text[start..end]).unwrap_or_default()
}

/// The outcome of one `repro doctor` audit.
#[derive(Debug, Default)]
pub struct DoctorReport {
    /// Checks that passed, as `module: what` lines.
    pub passed: Vec<String>,
    /// Failures; non-empty means the run directory is unhealthy and
    /// `repro doctor` exits nonzero.
    pub failures: Vec<String>,
}

impl DoctorReport {
    fn ok(&mut self, line: impl Into<String>) {
        self.passed.push(line.into());
    }
    fn fail(&mut self, line: impl Into<String>) {
        self.failures.push(line.into());
    }

    /// Renders the audit, pass lines first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.passed {
            let _ = writeln!(out, "ok:   {line}");
        }
        for line in &self.failures {
            let _ = writeln!(out, "FAIL: {line}");
        }
        let _ = writeln!(
            out,
            "{} checks passed, {} failed",
            self.passed.len(),
            self.failures.len()
        );
        out
    }
}

/// Audits one run directory: every `<module>_manifest.json` and its
/// `<module>_trace.jsonl`, plus any `*_ledger.jsonl` journals.
///
/// Checks, per module: the manifest carries a seed consistent with
/// every other manifest in the directory; every artifact it lists
/// exists; the trace ring dropped nothing (`trace_dropped == 0`); the
/// event counts satisfy cache conservation (entries removed never
/// exceed entries inserted); the trace parses line by line, is
/// correctly ordered, and its span trees are well-formed.
pub fn doctor_dir(dir: &Path) -> DoctorReport {
    let mut report = DoctorReport::default();
    let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            report.fail(format!("cannot read {}: {e}", dir.display()));
            return report;
        }
    };
    entries.sort();

    let manifests: Vec<&std::path::PathBuf> = entries
        .iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with("_manifest.json"))
        })
        .collect();
    if manifests.is_empty() {
        report.fail(format!("no *_manifest.json found in {}", dir.display()));
        return report;
    }

    let mut seeds: Vec<(String, u64)> = Vec::new();
    for path in &manifests {
        let module = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .trim_end_matches("_manifest.json")
            .to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                report.fail(format!("{module}: cannot read manifest: {e}"));
                continue;
            }
        };

        match scan_u64_field(&text, "seed") {
            Some(seed) => seeds.push((module.clone(), seed)),
            None => report.fail(format!("{module}: manifest has no seed")),
        }

        let dropped = scan_u64_field(&text, "trace_dropped");
        match dropped {
            Some(0) => report.ok(format!("{module}: trace ring dropped nothing")),
            Some(n) => report.fail(format!("{module}: trace ring dropped {n} events")),
            None => report.fail(format!("{module}: manifest has no trace_dropped")),
        }

        let artifacts = scan_str_array(&text, "artifacts");
        let mut missing = 0;
        for artifact in &artifacts {
            if !dir.join(artifact).exists() {
                report.fail(format!("{module}: listed artifact {artifact} is missing"));
                missing += 1;
            }
        }
        if missing == 0 {
            report.ok(format!(
                "{module}: all {} listed artifacts exist",
                artifacts.len()
            ));
        }

        // Cache conservation: every removal (eviction, TTL drop,
        // invalidation) removes an entry some insert created, so
        // removals can never exceed inserts.
        let events = scan_flat_object(&text, "event_counts");
        let count = |key: &str| flat_get(&events, key).and_then(|v| v.as_u64()).unwrap_or(0);
        let inserts = count("cache_insert");
        let removals =
            count("cache_evict") + count("cache_expired_drop") + count("cache_invalidate");
        if removals <= inserts {
            report.ok(format!(
                "{module}: cache conservation holds ({inserts} inserts >= {removals} removals)"
            ));
        } else {
            report.fail(format!(
                "{module}: cache conservation violated ({removals} removals > {inserts} inserts)"
            ));
        }

        // The paired trace, when present.
        let trace_path = dir.join(format!("{module}_trace.jsonl"));
        if trace_path.exists() {
            audit_trace(&module, &trace_path, dropped == Some(0), &mut report);
        }

        // The paired sim-time series, when present.
        let ts_path = dir.join(format!("{module}_timeseries.jsonl"));
        if ts_path.exists() {
            let prom_path = dir.join(format!("{module}_metrics.prom"));
            audit_timeseries(&module, &ts_path, &prom_path, &mut report);
        }
    }

    if let Some(((first_m, first_s), rest)) = seeds.split_first() {
        let mismatched: Vec<&(String, u64)> = rest.iter().filter(|(_, s)| s != first_s).collect();
        if mismatched.is_empty() {
            report.ok(format!(
                "all {} manifests agree on seed {first_s}",
                seeds.len()
            ));
        } else {
            for (m, s) in mismatched {
                report.fail(format!(
                    "seed mismatch: {m} has {s}, {first_m} has {first_s}"
                ));
            }
        }
    }

    // Ledger journals, when a run exported them.
    for path in &entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.ends_with("_ledger.jsonl") {
            continue;
        }
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| dnsttl_telemetry::Journal::parse_jsonl(&text))
        {
            Ok(records) => {
                let mut inserts = 0u64;
                let mut removals = 0u64;
                for rec in &records {
                    if rec.op == dnsttl_telemetry::CacheOp::Insert {
                        inserts += 1;
                    }
                    if rec.op.is_removal() {
                        removals += 1;
                    }
                }
                if removals <= inserts {
                    report.ok(format!(
                        "{name}: ledger conservation holds ({inserts} inserts >= {removals} removals)"
                    ));
                } else {
                    report.fail(format!(
                        "{name}: ledger conservation violated ({removals} removals > {inserts} inserts)"
                    ));
                }
            }
            Err(e) => report.fail(format!("{name}: unparseable ledger: {e}")),
        }
    }

    report
}

/// Audits a `<module>_timeseries.jsonl`: per (series, kind) the bucket
/// boundaries must be strictly increasing, gap-free (each bucket starts
/// exactly one width after the previous), and constant-width; and every
/// counter series must conserve — the sum of its per-bucket deltas
/// equals the final registry value in `<module>_metrics.prom`.
fn audit_timeseries(module: &str, path: &Path, prom_path: &Path, report: &mut DoctorReport) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            report.fail(format!("{module}: cannot read timeseries: {e}"));
            return;
        }
    };
    let lines = match crate::timeline::parse_timeseries_jsonl(&text) {
        Ok(lines) => lines,
        Err(e) => {
            report.fail(format!("{module}: unparseable timeseries: {e}"));
            return;
        }
    };
    report.ok(format!(
        "{module}: timeseries parses ({} buckets)",
        lines.len()
    ));

    let mut groups: std::collections::BTreeMap<(&str, &str), Vec<&crate::timeline::TsLine>> =
        std::collections::BTreeMap::new();
    for line in &lines {
        groups
            .entry((line.series.as_str(), line.kind.as_str()))
            .or_default()
            .push(line);
    }
    let mut shape_issues = 0usize;
    let mut counter_sums: Vec<(&str, u64)> = Vec::new();
    for ((series, kind), group) in &groups {
        let width = group[0].width_ms;
        let constant_width = group.iter().all(|l| l.width_ms == width);
        let gap_free = group.windows(2).all(|w| w[1].t_ms == w[0].t_ms + width);
        if !constant_width || !gap_free || width == 0 {
            report.fail(format!(
                "{module}: timeseries {series} ({kind}) has gaps, unordered buckets, or varying width"
            ));
            shape_issues += 1;
        }
        if *kind == "counter" {
            let sum: f64 = group.iter().map(|l| l.headline()).sum();
            counter_sums.push((series, sum as u64));
        }
    }
    if shape_issues == 0 {
        report.ok(format!(
            "{module}: {} series monotone, gap-free, constant-width",
            groups.len()
        ));
    }

    // Conservation against the final registry: the time series is the
    // same counters resolved over sim time, so the bucket deltas must
    // sum back to the number the registry reports at the end.
    if counter_sums.is_empty() {
        return;
    }
    let prom = match std::fs::read_to_string(prom_path) {
        Ok(t) => t,
        Err(e) => {
            report.fail(format!(
                "{module}: timeseries has counters but metrics.prom is unreadable: {e}"
            ));
            return;
        }
    };
    let mut finals: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for line in prom.lines() {
        if line.starts_with('#') || line.contains('{') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                finals.insert(name, v);
            }
        }
    }
    let mut bad = 0usize;
    for (series, sum) in &counter_sums {
        match finals.get(series) {
            Some(v) if (*v - *sum as f64).abs() < 0.5 => {}
            Some(v) => {
                report.fail(format!(
                    "{module}: counter {series} bucket deltas sum to {sum} but the final registry says {v}"
                ));
                bad += 1;
            }
            None => {
                report.fail(format!(
                    "{module}: counter {series} has a time series but no final registry sample"
                ));
                bad += 1;
            }
        }
    }
    if bad == 0 {
        report.ok(format!(
            "{module}: {} counter series conserve (bucket sums match final registry)",
            counter_sums.len()
        ));
    }
}

fn audit_trace(module: &str, path: &Path, drop_free: bool, report: &mut DoctorReport) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            report.fail(format!("{module}: cannot read trace: {e}"));
            return;
        }
    };
    let lines = match parse_trace_jsonl(&text) {
        Ok(lines) => lines,
        Err(e) => {
            report.fail(format!("{module}: unparseable trace: {e}"));
            return;
        }
    };
    report.ok(format!("{module}: trace parses ({} events)", lines.len()));

    // `t_ms` legitimately restarts when one module runs several
    // campaigns back to back; the tracer's hard guarantee is that
    // sequence numbers strictly increase across the whole stream.
    let ordered = lines.windows(2).all(|w| w[0].seq < w[1].seq);
    if ordered {
        report.ok(format!("{module}: trace seq strictly increasing"));
    } else {
        report.fail(format!("{module}: trace seq out of order"));
    }

    // Span-tree structure is only auditable when the ring dropped
    // nothing — eviction legitimately amputates old spans.
    if drop_free {
        let forest = build_span_forest(&lines);
        let issues = well_formedness_issues(&forest);
        if issues.is_empty() {
            report.ok(format!(
                "{module}: span trees well-formed ({} spans, {} roots)",
                forest.nodes.len(),
                forest.roots.len()
            ));
        } else {
            for issue in issues.iter().take(10) {
                report.fail(format!("{module}: {issue}"));
            }
            if issues.len() > 10 {
                report.fail(format!(
                    "{module}: …and {} more span-tree issues",
                    issues.len() - 10
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(text: &str) -> Vec<TraceLine> {
        parse_trace_jsonl(text.trim()).expect("parse test trace")
    }

    const WELL_FORMED: &str = r#"
{"t_ms":100,"seq":0,"event":"span_start","span":0,"qname":"example.","qtype":"A"}
{"t_ms":105,"seq":1,"event":"cache_miss","span":0,"qname":"example."}
{"t_ms":110,"seq":2,"event":"span_start","span":1,"parent":0,"cause":"ns_lookup","qname":"ns.example.","qtype":"A"}
{"t_ms":130,"seq":3,"event":"span_end","span":1,"elapsed_ms":20}
{"t_ms":160,"seq":4,"event":"span_end","span":0,"rcode":"NOERROR","elapsed_ms":60}
"#;

    #[test]
    fn forest_builds_and_is_well_formed() {
        let forest = build_span_forest(&lines(WELL_FORMED));
        assert_eq!(forest.roots, vec![0]);
        assert_eq!(forest.nodes[&0].children, vec![1]);
        assert_eq!(forest.nodes[&1].parent, Some(0));
        assert!(well_formedness_issues(&forest).is_empty());
        let tree = render_tree(&forest);
        assert!(tree.contains("span 0 resolve:example.:A"), "{tree}");
        assert!(tree.contains("└─ span 1 ns_lookup:ns.example.:A"), "{tree}");
        assert!(tree.contains("├─ @105 cache_miss qname=example."), "{tree}");
    }

    #[test]
    fn collapsed_stacks_use_self_time() {
        let forest = build_span_forest(&lines(WELL_FORMED));
        let stacks = collapsed_stacks(&forest);
        // Root span: 60ms total, child took 20 → 40 self.
        assert_eq!(
            stacks,
            vec![
                "resolve:example.:A 40".to_string(),
                "resolve:example.:A;ns_lookup:ns.example.:A 20".to_string(),
            ]
        );
    }

    #[test]
    fn violations_are_reported() {
        let bad = r#"
{"t_ms":100,"seq":0,"event":"span_start","span":0,"qname":"a."}
{"t_ms":90,"seq":1,"event":"span_start","span":1,"parent":7,"qname":"b."}
{"t_ms":95,"seq":2,"event":"span_end","span":1}
{"t_ms":120,"seq":3,"event":"cache_hit","span":9}
"#;
        let forest = build_span_forest(&lines(bad));
        let issues = well_formedness_issues(&forest);
        assert!(issues.iter().any(|i| i.contains("parent 7 never started")));
        assert!(issues.iter().any(|i| i.contains("unknown span 9")));
        assert!(issues.iter().any(|i| i.contains("span 0: never ended")));
    }

    #[test]
    fn ttl_bands_cover_the_paper_ranges() {
        assert_eq!(ttl_band(None), "none");
        assert_eq!(ttl_band(Some(0)), "0");
        assert_eq!(ttl_band(Some(60)), "1-60");
        assert_eq!(ttl_band(Some(300)), "61-300");
        assert_eq!(ttl_band(Some(3600)), "301-3600");
        assert_eq!(ttl_band(Some(86400)), "3601-86400");
        assert_eq!(ttl_band(Some(172800)), ">86400");
    }

    #[test]
    fn doctor_flags_drops_and_missing_artifacts() {
        let dir = std::env::temp_dir().join(format!("dnsttl-doctor-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("m_manifest.json"),
            r#"{"experiment":"m","seed":42,"event_counts":{"cache_insert":5,"cache_evict":1},"trace_dropped":0,"artifacts":["m_trace.jsonl"]}"#,
        )
        .unwrap();
        std::fs::write(dir.join("m_trace.jsonl"), WELL_FORMED.trim_start()).unwrap();
        let report = doctor_dir(&dir);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.render().contains("span trees well-formed"));

        // Now a second manifest with a different seed and a drop.
        std::fs::write(
            dir.join("n_manifest.json"),
            r#"{"experiment":"n","seed":7,"event_counts":{},"trace_dropped":3,"artifacts":["gone.csv"]}"#,
        )
        .unwrap();
        let report = doctor_dir(&dir);
        assert!(report.failures.iter().any(|f| f.contains("dropped 3")));
        assert!(report.failures.iter().any(|f| f.contains("gone.csv")));
        assert!(report.failures.iter().any(|f| f.contains("seed mismatch")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctor_checks_timeseries_shape_and_conservation() {
        let dir = std::env::temp_dir().join(format!("dnsttl-doctor-ts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("m_manifest.json"),
            r#"{"experiment":"m","seed":42,"event_counts":{},"trace_dropped":0,"artifacts":[]}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("m_timeseries.jsonl"),
            concat!(
                r#"{"series":"q","kind":"counter","t_ms":0,"width_ms":60000,"value":3}"#,
                "\n",
                r#"{"series":"q","kind":"counter","t_ms":60000,"width_ms":60000,"value":4}"#,
                "\n",
            ),
        )
        .unwrap();
        std::fs::write(dir.join("m_metrics.prom"), "# TYPE q counter\nq 7\n").unwrap();
        let report = doctor_dir(&dir);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report
            .passed
            .iter()
            .any(|p| p.contains("counter series conserve")));

        // A final registry value the buckets cannot reach is drift.
        std::fs::write(dir.join("m_metrics.prom"), "# TYPE q counter\nq 9\n").unwrap();
        let report = doctor_dir(&dir);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("bucket deltas sum to 7")));

        // A gap in the bucket boundaries is a shape failure.
        std::fs::write(
            dir.join("m_timeseries.jsonl"),
            concat!(
                r#"{"series":"q","kind":"counter","t_ms":0,"width_ms":60000,"value":3}"#,
                "\n",
                r#"{"series":"q","kind":"counter","t_ms":180000,"width_ms":60000,"value":4}"#,
                "\n",
            ),
        )
        .unwrap();
        std::fs::write(dir.join("m_metrics.prom"), "# TYPE q counter\nq 7\n").unwrap();
        let report = doctor_dir(&dir);
        assert!(report.failures.iter().any(|f| f.contains("has gaps")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
