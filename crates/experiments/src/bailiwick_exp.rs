//! §4: the renumbering experiments — Figure 5 (setup), Figures 6–8
//! (time series and matched-VP behaviour), Tables 3–4 (accounting and
//! sticky classification).
//!
//! Both configurations renumber the sub-zone's name server nine minutes
//! into a four-hour campaign of per-probe AAAA queries and watch which
//! answers (old VM vs new VM) each vantage point receives:
//!
//! * **in-bailiwick** (Figure 6): the server's address is glue in the
//!   parent; when the NS RRset expires at 60 min, re-fetched referrals
//!   carry the new glue, so the still-valid 7200 s A record dies with
//!   its NS — most VPs switch at the one-hour mark;
//! * **out-of-bailiwick** (Figure 7): the address was fetched from the
//!   host's own zone and is trusted for its full 7200 s — VPs keep the
//!   old server until the two-hour mark, and parent-centric resolvers
//!   (OpenDNS-style, trusting `.com`'s 2-day glue) hang on far longer,
//!   forming Table 4's sticky population.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::worlds::{self, CachetestWorld};
use dnsttl_analysis::{ascii_cdf_multi, CsvWriter, Ecdf, Table, TimeSeries};
use dnsttl_atlas::{
    run_measurement_with_hooks, Dataset, Hook, MeasurementSpec, Population, PopulationConfig,
    QueryName,
};
use dnsttl_netsim::{SimRng, SimTime};
use dnsttl_telemetry::EventKind;
use dnsttl_wire::{Name, RecordType};

/// When the renumbering happens (the paper's t = 9 min).
const RENUMBER_AT: SimTime = SimTime::from_secs(9 * 60);
/// Campaign length (4 h).
const HOURS: u64 = 4;

struct RunOutput {
    dataset: Dataset,
    vps: usize,
    probes: usize,
    resolvers: usize,
    timeouts: u64,
}

fn run_config(cfg: &ExpConfig, out_of_bailiwick: bool) -> RunOutput {
    let CachetestWorld {
        mut net,
        roots,
        parent,
        com,
        ..
    } = worlds::cachetest_world(out_of_bailiwick);
    net.set_telemetry(cfg.telemetry.clone());

    // The same population seed for both configurations, so Figure 8
    // can match VPs across them (the paper compares the same probes).
    let mut pop_rng = SimRng::seed_from(cfg.seed_for("bailiwick-pop"));
    let mut pop = Population::build(&PopulationConfig::small(cfg.probes), &roots, &mut pop_rng);
    pop.set_telemetry(&cfg.telemetry);
    let mut rng = SimRng::seed_from(cfg.seed_for(if out_of_bailiwick {
        "bailiwick-out"
    } else {
        "bailiwick-in"
    }));

    let spec = MeasurementSpec::every_600s(
        QueryName::PerProbe {
            suffix: Name::parse("sub.cachetest.net").expect("static name"),
        },
        RecordType::AAAA,
        HOURS,
    );

    let telemetry = cfg.telemetry.clone();
    let renumber: Box<dyn FnOnce(&mut dnsttl_netsim::Network)> = if out_of_bailiwick {
        let gtld = com.expect("out-of-bailiwick world has .com");
        Box::new(move |_net| {
            let mut gtld = gtld.borrow_mut();
            let zone = gtld
                .zone_mut(&Name::parse("com").unwrap())
                .expect("com zone");
            zone.replace_address(
                &Name::parse("ns1.zurrundedu.com").unwrap(),
                match worlds::addrs::SUB_NEW {
                    std::net::IpAddr::V4(a) => a,
                    _ => unreachable!(),
                },
                dnsttl_wire::Ttl::TWO_DAYS,
            );
            telemetry.count("experiment_renumbers", 1);
            telemetry.event(RENUMBER_AT.as_millis(), EventKind::Renumber, |f| {
                f.push("zone", "com");
                f.push("host", "ns1.zurrundedu.com");
                f.push("new_addr", worlds::addrs::SUB_NEW.to_string());
                f.push("bailiwick", "out");
            });
        })
    } else {
        Box::new(move |_net| {
            let mut parent = parent.borrow_mut();
            let zone = parent
                .zone_mut(&Name::parse("cachetest.net").unwrap())
                .expect("cachetest zone");
            zone.replace_address(
                &Name::parse("ns1.sub.cachetest.net").unwrap(),
                match worlds::addrs::SUB_NEW {
                    std::net::IpAddr::V4(a) => a,
                    _ => unreachable!(),
                },
                dnsttl_wire::Ttl::from_secs(7_200),
            );
            telemetry.count("experiment_renumbers", 1);
            telemetry.event(RENUMBER_AT.as_millis(), EventKind::Renumber, |f| {
                f.push("zone", "cachetest.net");
                f.push("host", "ns1.sub.cachetest.net");
                f.push("new_addr", worlds::addrs::SUB_NEW.to_string());
                f.push("bailiwick", "in");
            });
        })
    };

    let dataset = run_measurement_with_hooks(
        &spec,
        &mut pop,
        &mut net,
        &mut rng,
        vec![Hook {
            at: RENUMBER_AT,
            action: renumber,
        }],
    );
    let timeouts: u64 = pop.resolvers.iter().map(|r| r.stats().timeouts).sum();
    crate::flightdeck::record_latency_quantiles(
        &cfg.telemetry,
        if out_of_bailiwick {
            "bailiwick-out"
        } else {
            "bailiwick-in"
        },
        &dataset,
    );
    RunOutput {
        vps: pop.vp_count(),
        probes: pop.probe_count(),
        resolvers: dataset.distinct_resolvers(),
        dataset,
        timeouts,
    }
}

fn is_new(answers: &[String]) -> bool {
    answers.iter().any(|a| a == &worlds::NEW_MARKER.to_string())
}

fn is_old(answers: &[String]) -> bool {
    answers.iter().any(|a| a == &worlds::OLD_MARKER.to_string())
}

/// Fraction of valid answers in `[from, to)` minutes that came from the
/// new server.
fn new_fraction(ds: &Dataset, from_min: u64, to_min: u64) -> f64 {
    let (mut new, mut total) = (0usize, 0usize);
    for r in ds.valid() {
        let min = r.at.as_secs() / 60;
        if min >= from_min && min < to_min {
            total += 1;
            new += is_new(&r.answers) as usize;
        }
    }
    if total == 0 {
        0.0
    } else {
        new as f64 / total as f64
    }
}

/// Sticky VPs: answered in the first round and *never* returned a
/// new-server answer, all the way past both TTL horizons (the paper's
/// "always contact the same authoritative name server, even when TTLs
/// expire").
fn sticky_vps(ds: &Dataset) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (vp, results) in ds.by_vp() {
        let mut valid = results.iter().filter(|r| r.valid);
        let Some(first) = valid.next() else { continue };
        if first.at.as_secs() >= 600 {
            continue; // did not answer in the first round
        }
        let saw_new = results.iter().any(|r| r.valid && is_new(&r.answers));
        let answered_late = results
            .iter()
            .any(|r| r.valid && r.at.as_secs() >= (HOURS * 3_600).saturating_sub(1_800));
        if !saw_new && answered_late {
            out.push(vp);
        }
    }
    out
}

fn timeseries(ds: &Dataset) -> TimeSeries {
    let mut ts = TimeSeries::new(600);
    for r in ds.valid() {
        if is_new(&r.answers) {
            ts.record(r.at.as_secs(), "new");
        } else if is_old(&r.answers) {
            ts.record(r.at.as_secs(), "old");
        }
    }
    ts
}

fn dump_timeseries(cfg: &ExpConfig, file: &str, ts: &TimeSeries) {
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(dir.join(file), &["t_s", "old", "new"]);
        let old = ts.series("old");
        let new = ts.series("new");
        for (i, (t, o)) in old.iter().enumerate() {
            let n = new.get(i).map(|(_, n)| *n).unwrap_or(0);
            w.row_display(&[*t, *o, n]);
        }
        let _ = w.finish();
    }
}

/// Runs both configurations; returns fig5, fig6, fig7, fig8, table3,
/// table4.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let input = run_config(cfg, false);
    let output = run_config(cfg, true);

    let mut reports = Vec::new();

    // ----- Figure 5: the experiment setup -----
    let mut fig5 = Report::new("fig5", "TTLs and domains for the bailiwick experiments");
    fig5.push(
        r#"
.                 (root)
└── net                         NS a.gtld-servers.net     172800s
    └── cachetest.net           NS ns1.cachetest.net      172800s (glue 172800s)
        │                        child zone TTLs: 3600s
        └── sub.cachetest.net
            in-bailiwick:       NS ns1.sub.cachetest.net  3600s
                                 glue A                   7200s   (renumbered at t=9min)
            out-of-bailiwick:   NS ns1.zurrundedu.com     3600s   (no glue here;
                                 A from zurrundedu.com    7200s    .com glue 172800s)
            AAAA PROBEID.sub.cachetest.net                60s
"#,
    );
    fig5.metric("renumber_at_s", RENUMBER_AT.as_secs() as f64);
    reports.push(fig5);

    // ----- Figure 6: in-bailiwick time series -----
    let ts_in = timeseries(&input.dataset);
    let mut fig6 = Report::new("fig6", "Timeseries of answers, in-bailiwick renumbering");
    fig6.push(ts_in.render());
    let in_before = new_fraction(&input.dataset, 0, 9);
    let in_mid = new_fraction(&input.dataset, 15, 59);
    let in_after_ns = new_fraction(&input.dataset, 65, 119);
    let in_after_all = new_fraction(&input.dataset, 125, 240);
    fig6.push(format!(
        "new-server share: t<9min {:.1}%  9-60min {:.1}%  60-120min {:.1}%  >120min {:.1}%",
        in_before * 100.0,
        in_mid * 100.0,
        in_after_ns * 100.0,
        in_after_all * 100.0
    ));
    fig6.push("paper: ~90% of first-round resolvers switch at the 1-hour NS expiry.");
    fig6.metric("new_before_renumber", in_before);
    fig6.metric("new_9_60", in_mid);
    fig6.metric("new_60_120", in_after_ns);
    fig6.metric("new_after_120", in_after_all);
    dump_timeseries(cfg, "fig6_inbailiwick_timeseries.csv", &ts_in);
    reports.push(fig6);

    // ----- Figure 7: out-of-bailiwick time series -----
    let ts_out = timeseries(&output.dataset);
    let mut fig7 = Report::new(
        "fig7",
        "Timeseries of answers, out-of-bailiwick renumbering",
    );
    fig7.push(ts_out.render());
    let out_mid = new_fraction(&output.dataset, 15, 59);
    let out_after_ns = new_fraction(&output.dataset, 65, 119);
    let out_after_all = new_fraction(&output.dataset, 125, 240);
    fig7.push(format!(
        "new-server share: 9-60min {:.1}%  60-120min {:.1}%  >120min {:.1}%",
        out_mid * 100.0,
        out_after_ns * 100.0,
        out_after_all * 100.0
    ));
    fig7.push(
        "paper: cached A records are trusted to their full 7200 s; the switch happens at 2 h.",
    );
    fig7.metric("new_9_60", out_mid);
    fig7.metric("new_60_120", out_after_ns);
    fig7.metric("new_after_120", out_after_all);
    dump_timeseries(cfg, "fig7_outbailiwick_timeseries.csv", &ts_out);
    reports.push(fig7);

    // ----- Figure 8 + Table 4: sticky VPs and matched behaviour -----
    let sticky_in = sticky_vps(&input.dataset);
    let sticky_out = sticky_vps(&output.dataset);

    let in_by_vp = input.dataset.by_vp();
    let mut ratios = Vec::new();
    for vp in &sticky_out {
        if let Some(results) = in_by_vp.get(vp) {
            let valid: Vec<_> = results.iter().filter(|r| r.valid).collect();
            // Only results after the renumber can possibly be "new".
            let late: Vec<_> = valid
                .iter()
                .filter(|r| r.at.as_secs() > RENUMBER_AT.as_secs())
                .collect();
            if late.is_empty() {
                continue;
            }
            let new = late.iter().filter(|r| is_new(&r.answers)).count();
            ratios.push(new as f64 / late.len() as f64);
        }
    }
    let mut fig8 = Report::new(
        "fig8",
        "Responses from the new server, in-bailiwick, for VPs sticky out-of-bailiwick",
    );
    let ratio_ecdf = Ecdf::new(ratios.clone());
    if !ratio_ecdf.is_empty() {
        fig8.push(ascii_cdf_multi(
            &[("new-server ratio", &ratio_ecdf)],
            64,
            10,
        ));
        fig8.push(format!(
            "matched VPs: {}  median ratio {:.2}",
            ratios.len(),
            ratio_ecdf.median()
        ));
    }
    fig8.push("paper: VPs sticky out-of-bailiwick mostly behave normally in-bailiwick.");
    fig8.metric("matched_vps", ratios.len() as f64);
    fig8.metric(
        "median_new_ratio",
        if ratio_ecdf.is_empty() {
            0.0
        } else {
            ratio_ecdf.median()
        },
    );
    reports.push(fig8);

    // ----- Table 3 -----
    let mut table3 = Report::new("table3", "Bailiwick experiment accounting");
    let mut t = Table::new(vec!["", "in-bailiwick", "out-of-bailiwick"]);
    type Cell = Box<dyn Fn(&RunOutput) -> String>;
    let pairs: [(&str, Cell); 8] = [
        ("Frequency", Box::new(|_| "600 s".into())),
        ("Duration", Box::new(|_| format!("{HOURS}h"))),
        ("Probes", Box::new(|r| r.probes.to_string())),
        ("VPs", Box::new(|r| r.vps.to_string())),
        ("Queries", Box::new(|r| r.dataset.len().to_string())),
        ("Queries (timeout)", Box::new(|r| r.timeouts.to_string())),
        (
            "Responses (val.)",
            Box::new(|r| r.dataset.valid_count().to_string()),
        ),
        (
            "Resolvers (backends)",
            Box::new(|r| r.resolvers.to_string()),
        ),
    ];
    for (label, f) in &pairs {
        t.row(vec![label.to_string(), f(&input), f(&output)]);
    }
    table3.push(t.render());
    table3.metric("in_queries", input.dataset.len() as f64);
    table3.metric("out_queries", output.dataset.len() as f64);
    table3.metric("in_valid", input.dataset.valid_count() as f64);
    reports.push(table3);

    let mut table4 = Report::new("table4", "Sticky resolver classification");
    let mut t = Table::new(vec!["", "in-bailiwick", "out-of-bailiwick"]);
    t.row(vec![
        "Sticky VPs".into(),
        sticky_in.len().to_string(),
        sticky_out.len().to_string(),
    ]);
    t.row(vec![
        "VPs total".into(),
        input.vps.to_string(),
        output.vps.to_string(),
    ]);
    table4.push(t.render());
    table4.push("paper: 196 sticky VPs in-bailiwick vs 1642 out-of-bailiwick — the out-of-\nbailiwick configuration manufactures stickiness via parent-centric glue trust.");
    table4.metric("sticky_in", sticky_in.len() as f64);
    table4.metric("sticky_out", sticky_out.len() as f64);
    reports.push(table4);

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bailiwick_contrast_reproduces() {
        let reports = run(&ExpConfig::quick());
        let by_id = |id: &str| reports.iter().find(|r| r.id == id).unwrap();

        let fig6 = by_id("fig6");
        // Nobody sees the new server before the renumbering.
        assert_eq!(fig6.get("new_before_renumber"), 0.0);
        // In-bailiwick: the NS expiry at 1 h drags the A record with it.
        assert!(fig6.get("new_60_120") > 0.6, "{}", fig6.get("new_60_120"));
        assert!(
            fig6.get("new_after_120") > 0.8,
            "{}",
            fig6.get("new_after_120")
        );

        let fig7 = by_id("fig7");
        // Out-of-bailiwick: the cached address survives the NS expiry…
        assert!(
            fig7.get("new_60_120") < fig6.get("new_60_120") - 0.25,
            "out {} vs in {}",
            fig7.get("new_60_120"),
            fig6.get("new_60_120")
        );
        // …and most (but not all — sticky parent-centric resolvers
        // remain) switch after the 2-hour address expiry.
        assert!(fig7.get("new_after_120") > 0.5);

        let table4 = by_id("table4");
        // The paper's Table 4: far more sticky VPs out-of-bailiwick.
        assert!(
            table4.get("sticky_out") > table4.get("sticky_in"),
            "sticky in={} out={}",
            table4.get("sticky_in"),
            table4.get("sticky_out")
        );

        let fig8 = by_id("fig8");
        // Sticky-out VPs behave normally in-bailiwick.
        if fig8.get("matched_vps") > 3.0 {
            assert!(
                fig8.get("median_new_ratio") > 0.5,
                "{}",
                fig8.get("median_new_ratio")
            );
        }
    }
}
