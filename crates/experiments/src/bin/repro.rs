//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                  # everything, paper order
//! repro fig1 fig2 table2     # a subset
//! repro --paper-scale all    # full population sizes (slow)
//! repro --quick fig6         # tiny populations (CI smoke), no CSVs
//! repro --smoke resilience   # tiny populations, CSVs kept
//! repro --seed 7 fig10       # different random world
//! repro --shards 4 fig1      # sharded engine on 4 worker threads
//! repro --cells 64 zipf-population   # tunable cell layout (identity-changing)
//! repro --metrics fig6       # + metrics dashboard and Prometheus text
//! repro --list               # show available artifact ids
//!
//! repro cache-report               # ledger forensics (Tables 3–4)
//! repro cache-report --diff A B    # diff two cache snapshots (JSONL)
//! repro bench --quick              # headless bench trajectory
//! repro bench --out BENCH_report.json --baseline BENCH_report.json --check
//! repro flame RUN_DIR_OR_TRACE     # collapsed stacks from sim-time spans
//! repro doctor RUN_DIR             # audit manifests, traces, ledgers
//! repro timeline RUN_DIR           # sim-time series → CSV + sparklines
//! repro diff RUN_A RUN_B           # structured run comparison (JSON verdict)
//! ```
//!
//! Every module run writes a provenance manifest
//! (`<module>_manifest.json`), a simulation-time trace
//! (`<module>_trace.jsonl`), a sim-time series
//! (`<module>_timeseries.jsonl`), and the final metrics
//! (`<module>_metrics.prom`) next to its CSVs, unless `--no-csv`.

use dnsttl_experiments::{
    bailiwick_exp, centricity, controlled, crawl_exp, extensions, flightdeck, insight, passive_nl,
    resilience, rundiff, shared_cache, table1, timeline, uy_latency, zipf, ExpConfig, Report,
};
use dnsttl_telemetry::{RunManifest, Telemetry};

const ARTIFACTS: &[(&str, &str)] = &[
    ("table1", "a.nic.cl TTLs in parent and child (§3.1)"),
    ("fig1", "TTL CDFs for .uy-NS / a.nic.uy-A (§3.2)"),
    ("fig2", "TTL CDF for google.co-NS (§3.3)"),
    ("table2", "centricity experiment accounting (§3.2–3.3)"),
    ("fig3", "queries per resolver/qname, .nl passive (§3.4)"),
    ("fig4", "min interarrival per resolver/qname (§3.4)"),
    ("fig5", "bailiwick experiment setup (§4.1)"),
    ("fig6", "in-bailiwick renumbering timeseries (§4.2)"),
    ("fig7", "out-of-bailiwick renumbering timeseries (§4.3)"),
    ("fig8", "matched sticky-VP behaviour (§4.5)"),
    ("table3", "bailiwick experiment accounting (§4)"),
    ("table4", "sticky resolver classification (§4.4)"),
    ("table5", "crawl datasets and RR counts (§5.1)"),
    ("fig9", "TTL CDFs per record type per list (§5.1)"),
    ("table6", ".nl DMap content categories (§5.1.1)"),
    ("table7", "median TTL by content category (§5.1.1)"),
    ("table8", "TTL=0 domains (§5.1.2)"),
    ("table9", "bailiwick in the wild (§5.1.3)"),
    ("fig10", ".uy latency before/after TTL change (§5.3)"),
    ("table10", "controlled TTL experiments (§6.2)"),
    ("fig11", "latency CDFs, controlled + anycast (§6.2)"),
    (
        "ext-offline",
        "child authoritatives offline (§4.4, extension)",
    ),
    (
        "ext-dnssec",
        "DNSSEC validation vs centricity (§2, extension)",
    ),
    ("ext-ddos", "TTL vs DDoS survival (§6.1, extension)"),
    ("ext-hitrate", "analytic cache model validation (extension)"),
    (
        "ext-loadbalance",
        "DNS load-balancing agility vs TTL (§6.1, extension)",
    ),
    (
        "ext-negttl",
        "negative-caching TTL vs typo load (RFC 2308, extension)",
    ),
    (
        "ext-secondary",
        "renumbering propagation via secondaries (extension)",
    ),
    (
        "cache-report",
        "cache forensics: Tables 3–4 lifetimes from the provenance ledger",
    ),
    (
        "resilience",
        "failure rate vs TTL under a scripted 1 h outage (§6.2, chaos)",
    ),
    (
        "shared-cache",
        "hit rate and latency vs TTL: shared concurrent cache vs partitioned caches",
    ),
    (
        "zipf-population",
        "Zipf/diurnal population campaign at scale (§5–6 calibration)",
    ),
];

/// Which experiment module regenerates an artifact. Artifacts sharing
/// a module are produced by one run.
fn module_of(id: &str) -> &'static str {
    match id {
        "table1" => "table1",
        "fig1" | "fig2" | "table2" => "centricity",
        "fig3" | "fig4" => "passive_nl",
        "fig5" | "fig6" | "fig7" | "fig8" | "table3" | "table4" => "bailiwick",
        "table5" | "fig9" | "table6" | "table7" | "table8" | "table9" => "crawl",
        "fig10" | "fig10a" | "fig10b" => "uy_latency",
        "table10" | "fig11" | "fig11a" | "fig11b" => "controlled",
        "ext-offline" | "ext-dnssec" | "ext-ddos" | "ext-hitrate" | "ext-loadbalance"
        | "ext-negttl" | "ext-secondary" => "extensions",
        "cache-report" => "insight",
        "resilience" => "resilience",
        "shared-cache" => "shared_cache",
        "zipf-population" => "zipf",
        other => {
            eprintln!("unknown artifact {other:?}; try --list");
            std::process::exit(2);
        }
    }
}

fn produce(module: &str, cfg: &ExpConfig) -> Vec<Report> {
    match module {
        "table1" => vec![table1::run(cfg)],
        "centricity" => centricity::run(cfg),
        "passive_nl" => passive_nl::run(cfg),
        "bailiwick" => bailiwick_exp::run(cfg),
        "crawl" => crawl_exp::run(cfg),
        "uy_latency" => uy_latency::run(cfg),
        "controlled" => controlled::run(cfg),
        "extensions" => extensions::run(cfg),
        "insight" => insight::run(cfg),
        "resilience" => resilience::run(cfg),
        "shared_cache" => shared_cache::run(cfg),
        "zipf" => zipf::run(cfg),
        _ => unreachable!("module_of only returns known modules"),
    }
}

/// Writes `<module>_manifest.json` and `<module>_trace.jsonl` next to
/// the module's CSVs. Wall time stays on stderr: manifests and traces
/// must be byte-identical across same-seed reruns.
fn write_observability(module: &str, cfg: &ExpConfig, telemetry: &Telemetry, reports: &[Report]) {
    let Some(dir) = &cfg.out_dir else { return };
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("cannot create {}", dir.display());
        return;
    }
    let trace_name = format!("{module}_trace.jsonl");
    if let Err(e) = std::fs::write(dir.join(&trace_name), telemetry.trace_jsonl()) {
        eprintln!("cannot write {trace_name}: {e}");
    }
    // The time-resolved twin of the metrics: counters per sim-time
    // bucket, plus the final registry as Prometheus text so `repro
    // diff` and the doctor's conservation check can compare them.
    let ts_name = format!("{module}_timeseries.jsonl");
    if let Err(e) = std::fs::write(dir.join(&ts_name), telemetry.timeseries_jsonl()) {
        eprintln!("cannot write {ts_name}: {e}");
    }
    let prom_name = format!("{module}_metrics.prom");
    if let Err(e) = std::fs::write(dir.join(&prom_name), telemetry.prometheus_text()) {
        eprintln!("cannot write {prom_name}: {e}");
    }

    let mut manifest = RunManifest::new(module, cfg.seed);
    manifest.sim_duration_ms =
        telemetry.with_tracer(|t| t.events().map(|e| e.t_ms).max().unwrap_or(0));
    manifest
        .world_note("probes", cfg.probes as u64)
        .world_note("crawl_scale", cfg.crawl_scale)
        .world_note("nl_resolvers", cfg.nl_resolvers as u64)
        .world_note("nl_hours", cfg.nl_hours);
    manifest.policy("mix", "paper_population");
    telemetry.fill_manifest(&mut manifest);
    manifest.artifact(&trace_name);
    manifest.artifact(&ts_name);
    manifest.artifact(&prom_name);
    for report in reports {
        for artifact in &report.artifacts {
            manifest.artifact(artifact);
        }
    }
    let ids: Vec<String> = reports.iter().map(|r| r.id.clone()).collect();
    manifest.note("reports", ids.join(","));
    let manifest_name = format!("{module}_manifest.json");
    if let Err(e) = std::fs::write(dir.join(&manifest_name), manifest.to_json()) {
        eprintln!("cannot write {manifest_name}: {e}");
    }
}

/// `repro bench`: run the headless benchmark trajectory, write the
/// schema-versioned report, and optionally gate on a committed
/// baseline.
fn run_bench(args: &[String]) -> ! {
    use dnsttl_bench::{
        BenchConfig, BenchReport, FANOUT_TOLERANCE, REGRESSION_THRESHOLD, WHEEL_IMPROVEMENT_FACTOR,
    };

    let mut seed = 42u64;
    let mut quick = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut baseline: Option<std::path::PathBuf> = None;
    let mut check = false;
    let mut threshold = REGRESSION_THRESHOLD;
    let mut i = 0;
    let bad = |msg: &str| -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: repro bench [--quick] [--seed N] [--out FILE] [--baseline FILE] [--check] [--tolerance PCT]"
        );
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .unwrap_or_else(|| bad("--out needs a path"))
                        .into(),
                );
            }
            "--baseline" => {
                i += 1;
                baseline = Some(
                    args.get(i)
                        .unwrap_or_else(|| bad("--baseline needs a path"))
                        .into(),
                );
            }
            "--check" => check = true,
            // Regression gate width as a percent (default the
            // committed REGRESSION_THRESHOLD).
            "--tolerance" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| bad("--tolerance needs a percent"));
                let pct: f64 = v
                    .parse()
                    .unwrap_or_else(|_| bad(&format!("bad tolerance {v:?} (want a percent)")));
                if !(0.0..=100.0).contains(&pct) {
                    bad(&format!("tolerance {pct}% out of range 0..=100"));
                }
                threshold = pct / 100.0;
            }
            other => bad(&format!("unknown bench flag {other:?}")),
        }
        i += 1;
    }

    let config = if quick {
        BenchConfig::quick(seed)
    } else {
        BenchConfig::full(seed)
    };
    let started = std::time::Instant::now();
    let report = dnsttl_bench::runner::run(config);
    eprint!("{}", report.summary());
    eprintln!("({:.1}s wall)", started.elapsed().as_secs_f64());

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.render()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("bench report written to {}", path.display());
    }

    if check {
        let Some(path) = &baseline else {
            bad("--check needs --baseline FILE");
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let base = BenchReport::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let failures = report.compare(&base, threshold);
        if failures.is_empty() {
            println!(
                "bench check passed: no scenario regressed more than {:.0}% vs {}",
                threshold * 100.0,
                path.display()
            );
        } else {
            eprintln!("bench regressions vs {}:", path.display());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        // Self-check, independent of the baseline: the multi-worker
        // sharded run must not lose to its own sequential oracle.
        let fanout = report.fanout_failures(FANOUT_TOLERANCE);
        if fanout.is_empty() {
            println!(
                "fanout check passed: sharded_population_w8 within {:.0}% of w1",
                FANOUT_TOLERANCE * 100.0
            );
        } else {
            eprintln!("fanout check failed:");
            for f in &fanout {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        // The scale campaign must show *actual* parallel speedup,
        // scaled to the cores of the host that produced the report.
        let speedup = report.speedup_failures(FANOUT_TOLERANCE);
        if speedup.is_empty() {
            println!("speedup check passed: zipf_population_w8 meets the host-scaled target");
        } else {
            eprintln!("speedup check failed:");
            for f in &speedup {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        // The timing-wheel swap must keep paying for itself: the
        // wheel_churn replay has to beat its in-report BTreeSet
        // reference by the committed factor, on whatever host ran the
        // suite.
        let improvement = report.improvement_failures(WHEEL_IMPROVEMENT_FACTOR, FANOUT_TOLERANCE);
        if improvement.is_empty() {
            println!(
                "improvement check passed: wheel_churn at least {WHEEL_IMPROVEMENT_FACTOR:.0}x \
                 faster than its BTreeSet reference"
            );
        } else {
            eprintln!("improvement check failed:");
            for f in &improvement {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

/// `repro cache-report --diff A B`: diff two cache snapshots.
fn run_snapshot_diff(a: &str, b: &str) -> ! {
    use dnsttl_resolver::CacheSnapshot;
    let load = |path: &str| -> CacheSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        CacheSnapshot::parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        })
    };
    let before = load(a);
    let after = load(b);
    let diff = before.diff(&after);
    if diff.is_empty() {
        println!("snapshots are identical ({} entries)", before.len());
    } else {
        print!("{}", diff.render());
    }
    std::process::exit(0);
}

/// `repro flame`: fold the sim-time span trees of one or more trace
/// files into collapsed-stack lines (flamegraph.pl / inferno input).
fn run_flame(args: &[String]) -> ! {
    let mut out: Option<std::path::PathBuf> = None;
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .unwrap_or_else(|| {
                            eprintln!("--out needs a path");
                            std::process::exit(2);
                        })
                        .into(),
                );
            }
            other => inputs.push(other.into()),
        }
        i += 1;
    }
    if inputs.is_empty() {
        eprintln!("usage: repro flame [--out FILE] TRACE.jsonl…|RUN_DIR…");
        std::process::exit(2);
    }
    // A directory stands for every *_trace.jsonl inside it.
    let mut traces: Vec<std::path::PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let mut found: Vec<std::path::PathBuf> = std::fs::read_dir(&input)
                .map(|rd| {
                    rd.filter_map(|e| e.ok().map(|e| e.path()))
                        .filter(|p| {
                            p.file_name()
                                .and_then(|n| n.to_str())
                                .is_some_and(|n| n.ends_with("_trace.jsonl"))
                        })
                        .collect()
                })
                .unwrap_or_default();
            found.sort();
            if found.is_empty() {
                eprintln!("no *_trace.jsonl in {}", input.display());
                std::process::exit(1);
            }
            traces.extend(found);
        } else {
            traces.push(input);
        }
    }
    let mut rendered = String::new();
    for path in &traces {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let lines = flightdeck::parse_trace_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", path.display());
            std::process::exit(1);
        });
        let forest = flightdeck::build_span_forest(&lines);
        let stacks = flightdeck::collapsed_stacks(&forest);
        eprintln!(
            "{}: {} spans, {} stacks",
            path.display(),
            forest.nodes.len(),
            stacks.len()
        );
        for line in stacks {
            rendered.push_str(&line);
            rendered.push('\n');
        }
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("collapsed stacks written to {}", path.display());
        }
        None => print!("{rendered}"),
    }
    std::process::exit(0);
}

/// `repro doctor`: audit a run directory's manifests, traces, and
/// ledgers. Exits nonzero when any check fails.
fn run_doctor(args: &[String]) -> ! {
    let [dir] = args else {
        eprintln!("usage: repro doctor RUN_DIR");
        std::process::exit(2);
    };
    let report = flightdeck::doctor_dir(std::path::Path::new(dir));
    print!("{}", report.render());
    std::process::exit(i32::from(!report.failures.is_empty()));
}

/// `repro timeline`: render a run directory's sim-time series as
/// `timeline.csv` plus ASCII sparklines on stdout.
fn run_timeline(args: &[String]) -> ! {
    let [dir] = args else {
        eprintln!("usage: repro timeline RUN_DIR");
        std::process::exit(2);
    };
    let dir = std::path::Path::new(dir);
    match timeline::render_dir(dir) {
        Ok(text) => {
            print!("{text}");
            eprintln!(
                "(timeline CSV written to {})",
                dir.join("timeline.csv").display()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("timeline: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro diff`: compare two run directories metric by metric. Prints
/// a JSON verdict on stdout, a human summary on stderr, and exits
/// nonzero when any metric drifts beyond tolerance.
fn run_diff(args: &[String]) -> ! {
    let bad = |msg: &str| -> ! {
        eprintln!("{msg}");
        eprintln!("usage: repro diff [--tolerance [METRIC=]PCT]… RUN_A RUN_B");
        std::process::exit(2);
    };
    let mut cfg = rundiff::DiffConfig::default();
    let mut dirs: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let spec = args
                    .get(i)
                    .unwrap_or_else(|| bad("--tolerance needs a value"));
                let parse_pct = |v: &str| -> f64 {
                    let pct: f64 = v
                        .parse()
                        .unwrap_or_else(|_| bad(&format!("bad tolerance {v:?} (want a percent)")));
                    if !(0.0..=100.0).contains(&pct) {
                        bad(&format!("tolerance {pct}% out of range 0..=100"));
                    }
                    pct / 100.0
                };
                match spec.split_once('=') {
                    Some((metric, pct)) => cfg.per_metric.push((metric.to_owned(), parse_pct(pct))),
                    None => cfg.default_tolerance = parse_pct(spec),
                }
            }
            other if other.starts_with('-') => bad(&format!("unknown diff flag {other:?}")),
            _ => dirs.push(&args[i]),
        }
        i += 1;
    }
    let [a, b] = dirs[..] else {
        bad("diff needs exactly two run directories");
    };
    let verdict = rundiff::diff_dirs(std::path::Path::new(a), std::path::Path::new(b), &cfg)
        .unwrap_or_else(|e| {
            eprintln!("diff: {e}");
            std::process::exit(2);
        });
    println!("{}", verdict.to_json(a, b));
    eprint!("{}", verdict.render_text());
    std::process::exit(i32::from(!verdict.clean()));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bench") {
        run_bench(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("flame") {
        run_flame(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("doctor") {
        run_doctor(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("timeline") {
        run_timeline(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("diff") {
        run_diff(&argv[1..]);
    }
    if let Some(pos) = argv.iter().position(|a| a == "--diff") {
        if argv.first().map(String::as_str) != Some("cache-report") || argv.len() != pos + 3 {
            eprintln!("usage: repro cache-report --diff SNAPSHOT_A SNAPSHOT_B");
            std::process::exit(2);
        }
        run_snapshot_diff(&argv[pos + 1], &argv[pos + 2]);
    }

    let mut cfg = ExpConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut show_metrics = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                println!("available artifacts:");
                for (id, desc) in ARTIFACTS {
                    println!("  {id:<8} {desc}");
                }
                return;
            }
            "--paper-scale" => cfg = ExpConfig::paper_scale(),
            // `--smoke` is `--quick` for CI smoke stages: tiny
            // populations, CSVs still written for schema checks.
            "--quick" => cfg = ExpConfig::quick(),
            "--smoke" => {
                let out_dir = cfg.out_dir.clone();
                cfg = ExpConfig::quick();
                cfg.out_dir = out_dir;
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    std::process::exit(2);
                });
                cfg.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--probes" => {
                let v = args.next().unwrap_or_default();
                cfg.probes = v.parse().unwrap_or_else(|_| {
                    eprintln!("--probes needs an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            // Worker threads for the sharded engine. Output is
            // byte-identical for every N (DESIGN.md §10): the shard
            // count is a throughput knob, not part of the experiment.
            "--shards" => {
                let v = args.next().unwrap_or_default();
                let n: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("--shards needs an integer, got {v:?}");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("--shards needs at least 1 worker");
                    std::process::exit(2);
                }
                cfg.shards = Some(n);
            }
            // Logical cell count for sharded campaigns. Unlike
            // `--shards`, this IS part of the experiment's identity:
            // a different partition means different per-cell RNG
            // streams. Restricted to powers of two so the space of
            // comparable identities stays enumerable (16, 64, 256, …).
            "--cells" => {
                let v = args.next().unwrap_or_default();
                let n: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("--cells needs an integer, got {v:?}");
                    std::process::exit(2);
                });
                if n == 0 || !n.is_power_of_two() {
                    eprintln!("--cells must be a power of two (16, 64, 256, …), got {n}");
                    std::process::exit(2);
                }
                cfg.cells = Some(n);
            }
            "--no-csv" => cfg.out_dir = None,
            // Redirect artifacts (CSVs, manifests, traces, time series)
            // to DIR; the CI self-diff stage uses this to lay two runs
            // side by side.
            "--out" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                });
                cfg.out_dir = Some(v.into());
            }
            // Live campaign heartbeats on stderr (sharded engine only);
            // wall clock never reaches the artifacts.
            "--progress" => cfg.progress_ms = Some(2_000),
            "--ts-bucket-ms" => {
                let v = args.next().unwrap_or_default();
                let ms: u64 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--ts-bucket-ms needs an integer, got {v:?}");
                    std::process::exit(2);
                });
                if ms == 0 {
                    eprintln!("--ts-bucket-ms needs at least 1 ms");
                    std::process::exit(2);
                }
                cfg.ts_bucket_ms = ms;
            }
            "--metrics" => show_metrics = true,
            "all" => wanted.extend(ARTIFACTS.iter().map(|(id, _)| id.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--paper-scale|--quick|--smoke] [--seed N] [--probes N] [--shards N] [--cells N] [--out DIR|--no-csv] [--progress] [--ts-bucket-ms N] [--metrics] <artifact…|all>");
        eprintln!("       repro --list");
        std::process::exit(2);
    }

    // Deduplicate module runs: several artifacts share one experiment.
    let mut done_modules: Vec<&'static str> = Vec::new();
    for id in &wanted {
        let module = module_of(id);
        if done_modules.contains(&module) {
            continue;
        }
        done_modules.push(module);
        // Each module gets its own enabled telemetry handle, so traces
        // and metrics are per-experiment and same-seed reruns stay
        // byte-identical.
        let telemetry = Telemetry::new();
        telemetry.configure_timeseries(cfg.ts_bucket_ms, cfg.ts_span_cap);
        let mut module_cfg = cfg.clone();
        module_cfg.telemetry = telemetry.clone();
        let started = std::time::Instant::now();
        let reports = produce(module, &module_cfg);
        let wall = started.elapsed();
        for report in &reports {
            // Only print what was asked for (a module may produce
            // siblings the user did not request).
            let asked = wanted.iter().any(|w| report.id.starts_with(w.as_str()));
            if asked {
                println!("{}", report.render());
            }
        }
        write_observability(module, &cfg, &telemetry, &reports);
        if show_metrics {
            println!("=== {module}: metrics dashboard ===");
            println!("{}", telemetry.dashboard());
            println!("=== {module}: prometheus exposition ===");
            println!("{}", telemetry.prometheus_text());
        }
        eprintln!(
            "({module}: {:.1}s wall, {} trace events)",
            wall.as_secs_f64(),
            telemetry.events_recorded()
        );
    }
    if let Some(dir) = &cfg.out_dir {
        eprintln!("(CSV series written under {})", dir.display());
    }
}
