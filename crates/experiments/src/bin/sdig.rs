//! `sdig` — dig, against the simulated worlds.
//!
//! ```text
//! sdig uy NS                      # resolve via a fresh recursive
//! sdig a.nic.uy A --parent-centric
//! sdig --world google-co google.co NS
//! sdig --world cachetest p1.sub.cachetest.net AAAA --at 4000
//! sdig uy NS --repeat 3 --every 600   # watch the cache age
//! sdig uy NS --trace                  # resolution walkthrough
//! sdig uy NS --trace-json             # walkthrough as JSONL events
//! sdig uy NS --explain                # causal span tree (who queried whom, and why)
//! sdig uy NS --cache-dump             # dump cache state afterwards
//! sdig uy NS --cache-dump-json snap.jsonl   # snapshot for --diff
//! ```
//!
//! Worlds: `uy` (default; .uy with 300 s/120 s child TTLs),
//! `uy-after` (both 86400 s), `google-co`, `cachetest`,
//! `cachetest-out`, `nl`.

use dnsttl_core::ResolverPolicy;
use dnsttl_experiments::{flightdeck, worlds};
use dnsttl_netsim::{FaultPlan, Network, Region, SimRng, SimTime};
use dnsttl_resolver::{RecursiveResolver, RootHint};
use dnsttl_telemetry::{EventKind, Telemetry, Value};
use dnsttl_wire::{Name, RecordType, Ttl};

struct Options {
    world: String,
    qname: Option<Name>,
    qtype: RecordType,
    policy: ResolverPolicy,
    at: u64,
    repeat: u32,
    every: u64,
    trace: bool,
    trace_json: bool,
    explain: bool,
    cache_dump: bool,
    cache_dump_json: Option<String>,
    fault_plan: Option<FaultPlan>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sdig [--world uy|uy-after|google-co|cachetest|cachetest-out|nl]\n\
         \x20           [--parent-centric|--google|--opendns|--validating|--serve-stale]\n\
         \x20           [--at SECONDS] [--repeat N] [--every SECONDS] [--trace] [--trace-json]\n\
         \x20           [--explain]\n\
         \x20           [--cache-dump] [--cache-dump-json FILE] [--fault-plan FILE] <name> [type]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        world: "uy".into(),
        qname: None,
        qtype: RecordType::A,
        policy: ResolverPolicy::default(),
        at: 0,
        repeat: 1,
        every: 600,
        trace: false,
        trace_json: false,
        explain: false,
        cache_dump: false,
        cache_dump_json: None,
        fault_plan: None,
    };
    let mut args = std::env::args().skip(1);
    let mut saw_type = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--world" => opts.world = args.next().unwrap_or_else(|| usage()),
            "--parent-centric" => opts.policy = ResolverPolicy::parent_centric(),
            "--google" => opts.policy = ResolverPolicy::google_like(),
            "--opendns" => opts.policy = ResolverPolicy::opendns_like(),
            "--validating" => opts.policy = ResolverPolicy::validating(),
            "--serve-stale" => opts.policy = ResolverPolicy::serve_stale_like(),
            "--at" => {
                opts.at = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--repeat" => {
                opts.repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--every" => {
                opts.every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trace" => opts.trace = true,
            "--trace-json" => opts.trace_json = true,
            "--explain" => opts.explain = true,
            "--cache-dump" => opts.cache_dump = true,
            "--cache-dump-json" => {
                opts.cache_dump_json = Some(args.next().unwrap_or_else(|| usage()))
            }
            "--fault-plan" => {
                let path = args.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read fault plan {path}: {e}");
                    std::process::exit(2);
                });
                match FaultPlan::parse(&text) {
                    Ok(plan) => opts.fault_plan = Some(plan),
                    Err(e) => {
                        eprintln!("bad fault plan {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if opts.qname.is_none() {
                    match Name::parse(other) {
                        Ok(name) => opts.qname = Some(name),
                        Err(e) => {
                            eprintln!("bad name {other:?}: {e}");
                            std::process::exit(2);
                        }
                    }
                } else if !saw_type {
                    saw_type = true;
                    opts.qtype = match other.to_ascii_uppercase().as_str() {
                        "A" => RecordType::A,
                        "AAAA" => RecordType::AAAA,
                        "NS" => RecordType::NS,
                        "MX" => RecordType::MX,
                        "CNAME" => RecordType::CNAME,
                        "SOA" => RecordType::SOA,
                        "TXT" => RecordType::TXT,
                        "DNSKEY" => RecordType::DNSKEY,
                        t => {
                            eprintln!("unsupported query type {t:?}");
                            std::process::exit(2);
                        }
                    };
                } else {
                    usage();
                }
            }
        }
    }
    if opts.qname.is_none() {
        usage();
    }
    opts
}

fn build_world(name: &str) -> (Network, Vec<RootHint>) {
    match name {
        "uy" => worlds::uy_world(Ttl::from_secs(300), Ttl::from_secs(120)),
        "uy-after" => worlds::uy_world(Ttl::DAY, Ttl::DAY),
        "google-co" => worlds::google_co_world(),
        "cachetest" => {
            let w = worlds::cachetest_world(false);
            (w.net, w.roots)
        }
        "cachetest-out" => {
            let w = worlds::cachetest_world(true);
            (w.net, w.roots)
        }
        "nl" => {
            let w = worlds::nl_world();
            (w.net, w.roots)
        }
        other => {
            eprintln!("unknown world {other:?}");
            std::process::exit(2);
        }
    }
}

/// Prints the trace events recorded since `from_seq` — as an indented
/// walkthrough, or one JSON object per line with `json` — and returns
/// the next unseen sequence number.
fn print_walkthrough(telemetry: &Telemetry, from_seq: u64, json: bool) -> u64 {
    telemetry.with_tracer(|tracer| {
        let mut next = from_seq;
        for e in tracer.events().filter(|e| e.seq >= from_seq) {
            next = e.seq + 1;
            if json {
                println!("{}", tracer.event_json(e));
                continue;
            }
            let indent = match e.kind {
                EventKind::SpanStart | EventKind::SpanEnd => "",
                _ => "  ",
            };
            let fields: Vec<String> = tracer
                .fields_of(e)
                .map(|(k, v): &(&'static str, Value)| format!("{k}={v}"))
                .collect();
            println!(
                ";; [{:>9}ms] {}{:<12} {}",
                e.t_ms,
                indent,
                e.kind.as_str(),
                fields.join(" ")
            );
        }
        next
    })
}

fn main() {
    let opts = parse_args();
    let (mut net, roots) = build_world(&opts.world);
    let qname = opts.qname.expect("validated above");

    let mut resolver = RecursiveResolver::new(
        "sdig",
        opts.policy,
        Region::Eu,
        4_242,
        roots,
        SimRng::seed_from(1),
    );
    let telemetry = if opts.trace || opts.trace_json || opts.explain {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    resolver.set_telemetry(telemetry.clone());
    net.set_telemetry(telemetry.clone());
    if let Some(plan) = &opts.fault_plan {
        println!(";; fault plan: {}", plan.summary());
        net.set_faults(plan.clone());
    }
    let mut seen_seq = 0u64;
    let mut flushed_upto = SimTime::ZERO;

    for i in 0..opts.repeat {
        let at = SimTime::from_secs(opts.at + i as u64 * opts.every);
        // Scheduled cache flushes land on the resolver, not the fabric:
        // apply any that fired since the previous repeat.
        let flushes = net.fault_plan().flushes_between(flushed_upto, at);
        if flushes > 0 {
            println!(";; fault plan: cache flush applied before t={at}");
            resolver.apply_flush(at);
        }
        flushed_upto = at;
        let out = resolver.resolve(&qname, opts.qtype, at, &mut net);
        if opts.trace || opts.trace_json {
            seen_seq = print_walkthrough(&telemetry, seen_seq, opts.trace_json);
        }
        println!(
            ";; world={} t={} policy answered in {} ({} upstream quer{}, {})",
            opts.world,
            at,
            out.elapsed,
            out.upstream_queries,
            if out.upstream_queries == 1 {
                "y"
            } else {
                "ies"
            },
            if out.cache_hit {
                "cache hit"
            } else if out.served_stale {
                "served stale"
            } else {
                "cache miss"
            },
        );
        print!("{}", out.answer);
        println!();
    }
    if opts.explain {
        // Same path the doctor uses on trace files: render the trace
        // to JSONL, parse it back, link spans into causal trees.
        let lines = flightdeck::parse_trace_jsonl(&telemetry.trace_jsonl())
            .expect("tracer emits parseable JSONL");
        let forest = flightdeck::build_span_forest(&lines);
        println!(
            ";; causal span tree ({} spans, {} roots):",
            forest.nodes.len(),
            forest.roots.len()
        );
        print!("{}", flightdeck::render_tree(&forest));
        println!();
    }
    let end = SimTime::from_secs(opts.at + opts.repeat.saturating_sub(1) as u64 * opts.every);
    if opts.cache_dump {
        print!("{}", resolver.cache().snapshot(end).render());
    }
    if let Some(path) = &opts.cache_dump_json {
        let snapshot = resolver.cache().snapshot(end);
        if let Err(e) = std::fs::write(path, snapshot.to_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(";; cache snapshot written to {path}");
    }
    let s = resolver.stats();
    println!(
        ";; session: {} queries, {} hits, {} upstream, {} timeouts, {} servfails",
        s.client_queries, s.cache_hits, s.upstream_queries, s.timeouts, s.servfails
    );
}
