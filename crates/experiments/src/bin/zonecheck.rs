//! `zonecheck` — lint a zone file against the paper's recommendations.
//!
//! ```text
//! zonecheck --origin example.org zone.db
//! zonecheck --origin uy --parent-ns-ttl 172800 uy.db
//! zonecheck --origin cdn.example --agility zone.db   # LB/DDoS zones
//! echo '@ 300 IN NS ns1.example.' | zonecheck --origin example -
//! ```
//!
//! Exit status: 0 clean, 1 warnings only, 2 errors.

use dnsttl_auth::parse_records;
use dnsttl_core::{lint_zone, LintContext, ParentInfo, Severity};
use dnsttl_wire::{Name, Ttl};
use std::io::Read;

fn usage() -> ! {
    eprintln!(
        "usage: zonecheck --origin <name> [--parent-ns-ttl SECS] [--parent-glue-ttl SECS]\n\
         \x20               [--agility] <zonefile | ->"
    );
    std::process::exit(2);
}

fn main() {
    let mut origin: Option<Name> = None;
    let mut parent = ParentInfo::default();
    let mut ctx = LintContext::default();
    let mut path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--origin" => {
                let v = args.next().unwrap_or_else(|| usage());
                origin = Some(Name::parse(&v).unwrap_or_else(|e| {
                    eprintln!("bad origin {v:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--parent-ns-ttl" => {
                let v: i64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                parent.ns_ttl = Some(Ttl::try_from_secs(v).unwrap_or_else(|e| {
                    eprintln!("bad parent NS TTL: {e}");
                    std::process::exit(2);
                }));
            }
            "--parent-glue-ttl" => {
                let v: i64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                parent.glue_ttl = Some(Ttl::try_from_secs(v).unwrap_or_else(|e| {
                    eprintln!("bad parent glue TTL: {e}");
                    std::process::exit(2);
                }));
            }
            "--agility" => ctx.agility_required = true,
            "-h" | "--help" => usage(),
            other if other.starts_with("--") => usage(),
            other => path = Some(other.to_owned()),
        }
    }
    let Some(origin) = origin else { usage() };
    let Some(path) = path else { usage() };

    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("stdin is readable");
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };

    let records = match parse_records(&text, Some(&origin)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: parse error: {e}");
            std::process::exit(2);
        }
    };

    let findings = lint_zone(&origin, &records, &parent, ctx);
    if findings.is_empty() {
        println!(
            "{path}: clean — {} records follow the paper's TTL guidance",
            records.len()
        );
        return;
    }
    let mut worst = Severity::Info;
    for f in &findings {
        println!("{f}");
        worst = worst.max(f.severity);
    }
    println!(
        "{} finding(s); see 'Cache Me If You Can' (IMC 2019) §3–§6 for the reasoning",
        findings.len()
    );
    std::process::exit(match worst {
        Severity::Error => 2,
        Severity::Warning => 1,
        Severity::Info => 0,
    });
}
