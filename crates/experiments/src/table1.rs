//! Table 1: `a.nic.cl` TTLs in parent and child.
//!
//! The paper opens §3 by `dig`-ing the `.cl` NS chain by hand: the root
//! serves the delegation (and glue) with 172 800 s, while `.cl`'s own
//! server answers with 3 600 s for the NS RRset and 43 200 s for its
//! address. This module rebuilds those servers and performs the same
//! three queries, printing each record with its section and TTL.

use crate::config::ExpConfig;
use crate::report::Report;
use dnsttl_analysis::Table;
use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_netsim::{ClientId, DnsService, Region, SimTime};
use dnsttl_wire::{Message, Name, RecordType, Section, Ttl};

/// Runs the Table 1 reproduction.
pub fn run(_cfg: &ExpConfig) -> Report {
    let mut report = Report::new("table1", "a.nic.cl TTL values in parent and child");

    let mut root = AuthoritativeServer::new("k.root-servers.net").with_zone(
        ZoneBuilder::new(".")
            .ns("cl", "a.nic.cl", Ttl::TWO_DAYS)
            .a("a.nic.cl", "190.124.27.10", Ttl::TWO_DAYS)
            .aaaa("a.nic.cl", "2001:1398:1::300", Ttl::TWO_DAYS)
            .build(),
    );
    let mut child = AuthoritativeServer::new("a.nic.cl").with_zone(
        ZoneBuilder::new("cl")
            .ns("cl", "a.nic.cl", Ttl::HOUR)
            .a("a.nic.cl", "190.124.27.10", Ttl::from_secs(43_200))
            .aaaa("a.nic.cl", "2001:1398:1::300", Ttl::from_secs(43_200))
            .build(),
    );

    let client = ClientId {
        region: Region::Eu,
        tag: 0,
    };
    let mut table = Table::new(vec!["Q / Type", "Server", "Response", "TTL", "Sec."]);
    let mut row = |q: &str, server: &str, response: &Message| {
        for (section, r) in response.sectioned_records() {
            let sec = match section {
                Section::Answer if response.header.authoritative => "Ans.★",
                Section::Answer => "Ans.",
                Section::Authority => "Auth.",
                Section::Additional => "Add.",
            };
            table.row(vec![
                q.to_owned(),
                server.to_owned(),
                format!("{}/{}", r.name, r.record_type()),
                r.ttl.as_secs().to_string(),
                sec.to_owned(),
            ]);
        }
    };

    // Query 1: .cl NS at the root → referral with glue, 2-day TTLs.
    let q1 = Message::iterative_query(1, Name::parse("cl").unwrap(), RecordType::NS);
    let r1 = root.handle_query(&q1, client, SimTime::ZERO);
    row(".cl / NS", "k.root-servers.net", &r1);

    // Query 2: .cl NS at the child → authoritative, 1-hour NS.
    let r2 = child.handle_query(&q1, client, SimTime::ZERO);
    row(".cl / NS", "a.nic.cl", &r2);

    // Query 3: a.nic.cl A at the child → authoritative, 12-hour A.
    let q3 = Message::iterative_query(2, Name::parse("a.nic.cl").unwrap(), RecordType::A);
    let r3 = child.handle_query(&q3, client, SimTime::ZERO);
    row("a.nic.cl/A", "a.nic.cl", &r3);

    report.push(table.render());
    report.push("★ = authoritative answer (AA flag set), as in the paper's Table 1.");

    // Metrics: the three distinct TTLs that coexist for one record.
    let parent_ttl = r1
        .authorities
        .first()
        .map(|r| r.ttl.as_secs() as f64)
        .unwrap_or(0.0);
    let child_ns_ttl = r2
        .answers
        .first()
        .map(|r| r.ttl.as_secs() as f64)
        .unwrap_or(0.0);
    let child_a_ttl = r3
        .answers
        .first()
        .map(|r| r.ttl.as_secs() as f64)
        .unwrap_or(0.0);
    report.metric("parent_ns_ttl", parent_ttl);
    report.metric("child_ns_ttl", child_ns_ttl);
    report.metric("child_a_ttl", child_a_ttl);
    report.metric("aa_on_child_answer", r2.header.authoritative as u8 as f64);
    report.metric(
        "aa_on_parent_referral",
        r1.header.authoritative as u8 as f64,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_three_ttls() {
        let report = run(&ExpConfig::quick());
        assert_eq!(report.get("parent_ns_ttl"), 172_800.0);
        assert_eq!(report.get("child_ns_ttl"), 3_600.0);
        assert_eq!(report.get("child_a_ttl"), 43_200.0);
        assert_eq!(report.get("aa_on_child_answer"), 1.0);
        assert_eq!(report.get("aa_on_parent_referral"), 0.0);
        assert!(report.text.contains("a.nic.cl"));
    }
}
