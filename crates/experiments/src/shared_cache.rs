//! `shared-cache` — hit rate and latency vs TTL when many clients
//! share one concurrent cache instead of partitioned per-group caches.
//!
//! The paper's §5.3/§6.2 latency results all flow through one
//! mechanism: a cached answer is free, a miss pays upstream RTTs. How
//! often a query hits depends not only on the TTL but on *how many
//! clients fill the same cache* — a large shared resolver population
//! amortises one miss across everyone (the paper's "resolver
//! centricity" observation from the other side of the cache). This
//! experiment measures that directly:
//!
//! * **partitioned** — clients are split into [`GROUPS`] groups, each
//!   with its own sequential resolver ([`CacheBackendChoice::Sequential`]).
//!   Every group pays its own cold misses.
//! * **shared** — the same clients, same per-client query streams, one
//!   resolver whose policy selects the concurrent backend
//!   ([`CacheBackendChoice::Shared`], the sharded-lock
//!   [`SharedCache`](dnsttl_resolver::SharedCache)). One miss fills the
//!   cache for the whole population.
//!
//! Client query streams are forked per client *index*, so the two
//! topologies replay byte-identical workloads; only cache sharing
//! differs. Both axes sweep TTL ∈ {60 s, 1 h, 1 day}.
//!
//! A second arm pins the concurrency contract the differential suite
//! (`concurrent_equivalence.rs`) proves: replaying the same seeded
//! per-segment workload on the shared backend with 1, 2, and 8 threads
//! yields identical merged [`CacheStats`] — scheduling is invisible to
//! the accounting, so the artifact is reproducible byte-for-byte no
//! matter how the host machine interleaves threads.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::worlds;
use dnsttl_analysis::{CsvWriter, Table};
use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_core::{CacheBackendChoice, ResolverPolicy};
use dnsttl_netsim::{EventQueue, LatencyModel, Network, Region, SimDuration, SimRng, SimTime};
use dnsttl_resolver::{Credibility, RecursiveResolver, SharedCache};
use dnsttl_wire::{Name, RData, RRset, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::rc::Rc;

fn n(s: &str) -> Name {
    Name::parse(s).expect("static experiment name")
}

/// Names published under `pool.example`, queried with a harmonic
/// (Zipf-like) popularity profile.
const POOL: usize = 24;
/// Resolver groups in the partitioned topology.
const GROUPS: usize = 8;
/// Lock segments for the shared backend (and the contention arm).
const SEGMENTS: usize = 8;
/// How often each client re-resolves a pool name.
const QUERY_GAP_S: u64 = 120;
/// Simulated horizon per cell.
const HORIZON_S: u64 = 4_800;

/// One (TTL, topology) cell's accounting.
#[derive(Debug, Clone, Copy, Default)]
struct CellResult {
    queries: u64,
    hits: u64,
    upstream: u64,
    elapsed_ms: u64,
    conserved: bool,
}

impl CellResult {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.queries.max(1) as f64
    }

    fn mean_latency_ms(&self) -> f64 {
        self.elapsed_ms as f64 / self.queries.max(1) as f64
    }
}

fn pool_world(ttl: Ttl) -> (Network, Vec<dnsttl_resolver::RootHint>) {
    let mut net = Network::new(LatencyModel::constant(5.0));
    let root = AuthoritativeServer::new("root").with_zone(
        ZoneBuilder::new(".")
            .ns("example", "ns.example", Ttl::TWO_DAYS)
            .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
            .build(),
    );
    let mut zone = ZoneBuilder::new("example")
        .ns("example", "ns.example", ttl)
        .a("ns.example", "192.0.2.53", ttl);
    for i in 0..POOL {
        zone = zone.a(
            &format!("p{i:02}.pool.example"),
            &format!("203.0.113.{}", i + 1),
            ttl,
        );
    }
    let child = AuthoritativeServer::new("ns.example").with_zone(zone.build());
    let child_addr: std::net::IpAddr = "192.0.2.53".parse().expect("static addr");
    net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
    net.register(child_addr, Region::Eu, Rc::new(RefCell::new(child)));
    (net, worlds::root_hints())
}

fn policy_for(shared: bool) -> ResolverPolicy {
    if shared {
        ResolverPolicy {
            cache_backend: CacheBackendChoice::Shared,
            cache_segments: SEGMENTS,
            ..ResolverPolicy::default()
        }
    } else {
        ResolverPolicy::default()
    }
}

/// Replays one cell: `clients` clients querying harmonic-popularity
/// pool names for [`HORIZON_S`], through either one shared-backend
/// resolver or [`GROUPS`] partitioned sequential resolvers. The
/// per-client RNG streams depend only on the client index, so both
/// topologies see identical workloads.
fn simulate_topology(
    telemetry: &dnsttl_telemetry::Telemetry,
    seed: u64,
    clients: usize,
    ttl: Ttl,
    shared: bool,
) -> CellResult {
    let (mut net, roots) = pool_world(ttl);
    net.set_telemetry(telemetry.clone());
    let policy = policy_for(shared);
    let resolver_count = if shared { 1 } else { GROUPS };
    // Resolver and client streams are separate: forking advances the
    // parent, and the two topologies create different resolver counts,
    // so sharing one parent would desynchronise the client workloads.
    let mut resolver_rng = SimRng::seed_from(seed ^ 0x5EED_0001);
    let mut client_rng = SimRng::seed_from(seed ^ 0x5EED_0002);
    let mut resolvers: Vec<RecursiveResolver> = (0..resolver_count)
        .map(|g| {
            RecursiveResolver::new(
                format!("{}{g}", if shared { "shared" } else { "part" }),
                policy.clone(),
                Region::Eu,
                g as u64,
                roots.clone(),
                resolver_rng.fork(g as u64),
            )
        })
        .collect();

    // Harmonic popularity: name j drawn with weight 1/(j+1).
    let weights: Vec<f64> = (0..POOL).map(|j| 1.0 / (j + 1) as f64).collect();
    let mut client_rngs: Vec<SimRng> = (0..clients).map(|i| client_rng.fork(i as u64)).collect();

    struct Tick {
        client: usize,
    }
    let gap = SimDuration::from_secs(QUERY_GAP_S);
    let end = SimTime::from_secs(HORIZON_S);
    let mut queue = EventQueue::new();
    for (i, rng) in client_rngs.iter_mut().enumerate() {
        // Phase offsets also come from the *client* stream so both
        // topologies schedule identical query instants.
        queue.schedule(
            SimTime::from_millis(rng.below(gap.as_millis())),
            Tick { client: i },
        );
    }

    let mut cell = CellResult::default();
    while let Some((now, tick)) = queue.pop() {
        if now >= end {
            continue;
        }
        let name_idx = client_rngs[tick.client].weighted_index(&weights);
        let qname = n(&format!("p{name_idx:02}.pool.example"));
        let resolver = if shared { 0 } else { tick.client % GROUPS };
        let out = resolvers[resolver].resolve(&qname, RecordType::A, now, &mut net);
        debug_assert_eq!(out.answer.header.rcode, Rcode::NoError);
        cell.queries += 1;
        cell.hits += out.cache_hit as u64;
        cell.upstream += out.upstream_queries as u64;
        cell.elapsed_ms += out.elapsed.as_millis();
        queue.schedule(now + gap, tick);
    }

    // §8 conservation over every cache the topology used — on the
    // shared backend this sums per-segment stats.
    cell.conserved = resolvers.iter().all(|r| {
        let stats = r.cache().stats();
        stats.inserts == stats.removals() + r.cache().len() as u64
    });
    cell
}

/// The contention-determinism arm: the same seeded per-segment
/// workload replayed on 1, 2, and 8 threads (thread `t` owns segments
/// `s % threads == t`) must merge to identical [`CacheStats`].
/// Returns `(invariant_held, ops_replayed)`.
fn contention_invariance(seed: u64, steps_per_segment: usize) -> (bool, u64) {
    // Bucket candidate names by the segment the shared hash routes
    // them to, so each thread's stream stays on its own locks.
    let probe = SharedCache::new(SEGMENTS);
    let mut names_by_segment: Vec<Vec<Name>> = vec![Vec::new(); SEGMENTS];
    let mut i = 0usize;
    while names_by_segment.iter().any(|v| v.len() < 4) {
        let name = n(&format!("c{i}.shared.example"));
        names_by_segment[probe.segment_of(&name)].push(name);
        i += 1;
    }

    let run = |threads: usize| -> dnsttl_resolver::CacheStats {
        let cache = SharedCache::with_capacity(SEGMENTS, 64);
        let policy = ResolverPolicy::default();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let names = &names_by_segment;
                let policy = &policy;
                scope.spawn(move || {
                    for s in (0..SEGMENTS).filter(|s| s % threads == t) {
                        let mut rng = SimRng::seed_from(seed ^ ((s as u64) << 8));
                        let mut now = SimTime::ZERO;
                        for _ in 0..steps_per_segment {
                            now += SimDuration::from_secs(rng.below(40));
                            let name = &names[s][rng.below(names[s].len() as u64) as usize];
                            match rng.below(10) {
                                0..=4 => {
                                    let rr = RRset {
                                        name: name.clone(),
                                        rtype: RecordType::A,
                                        ttl: Ttl::from_secs(30 + rng.below(90) as u32),
                                        rdatas: vec![RData::A(std::net::Ipv4Addr::new(
                                            198,
                                            51,
                                            100,
                                            rng.below(250) as u8,
                                        ))],
                                    };
                                    cache.store(rr, Credibility::AuthAnswer, now, policy, false);
                                }
                                5..=7 => {
                                    let _ = cache.get(name, RecordType::A, now);
                                }
                                8 => {
                                    let _ = cache.get_stale(
                                        name,
                                        RecordType::A,
                                        now,
                                        Ttl::from_secs(600),
                                    );
                                }
                                _ => {
                                    // Per-name invalidation stays on this
                                    // thread's own segment (a global
                                    // purge_expired would sweep segments
                                    // other threads own and reintroduce
                                    // scheduling into the counts).
                                    cache.invalidate(name, RecordType::A, now);
                                }
                            }
                        }
                    }
                });
            }
        });
        cache.stats()
    };

    let baseline = run(1);
    let invariant = [2usize, 8].iter().all(|&t| run(t) == baseline);
    (invariant, baseline.hits + baseline.inserts)
}

/// Runs the shared-vs-partitioned matrix plus the contention arm and
/// renders the report.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let ttls = [60u32, 3_600, 86_400];
    let clients = (cfg.probes / 20).max(2 * GROUPS);

    let mut report = Report::new(
        "shared-cache",
        "hit rate and latency vs TTL: one shared concurrent cache vs partitioned caches",
    );
    report.push(format!(
        "{clients} clients, {POOL} pool names (harmonic popularity), \
         {GROUPS} partitions vs 1 shared resolver ({SEGMENTS} lock segments), \
         horizon {HORIZON_S}s, query gap {QUERY_GAP_S}s"
    ));

    // The 3×2 matrix: independent deterministic cells, so the sharded
    // engine just spreads cells over workers — byte-identical output
    // for every worker count (and for the sequential path).
    let matrix: Vec<(u32, bool)> = ttls
        .iter()
        .flat_map(|&ttl| [(ttl, false), (ttl, true)])
        .collect();
    let results: Vec<CellResult> = if let Some(workers) = cfg.shards {
        let enabled = cfg.telemetry.is_enabled();
        let (ts_bucket_ms, ts_span_cap) = (cfg.ts_bucket_ms, cfg.ts_span_cap);
        let seed = cfg.seed_for("shared-cache");
        let cells = dnsttl_atlas::run_cells(workers, matrix.len(), |cell| {
            let telemetry = if enabled {
                dnsttl_telemetry::Telemetry::new()
            } else {
                dnsttl_telemetry::Telemetry::disabled()
            };
            telemetry.configure_timeseries(ts_bucket_ms, ts_span_cap);
            let (ttl, shared) = matrix[cell];
            let result = simulate_topology(
                &telemetry,
                seed ^ ttl as u64,
                clients,
                Ttl::from_secs(ttl),
                shared,
            );
            (result, telemetry.take_parts())
        });
        let mut results = Vec::with_capacity(cells.len());
        let mut parts = Vec::with_capacity(cells.len());
        for (result, part) in cells {
            results.push(result);
            parts.push(part);
        }
        if enabled {
            cfg.telemetry.absorb_shards(parts);
        }
        results
    } else {
        // The seed deliberately ignores the topology: both cells of a
        // TTL row replay the same client streams.
        let seed = cfg.seed_for("shared-cache");
        matrix
            .iter()
            .map(|&(ttl, shared)| {
                simulate_topology(
                    &cfg.telemetry,
                    seed ^ ttl as u64,
                    clients,
                    Ttl::from_secs(ttl),
                    shared,
                )
            })
            .collect()
    };

    let mut table = Table::new(vec![
        "TTL",
        "backend",
        "queries",
        "hit rate",
        "mean latency",
        "upstream",
    ]);
    let mut conserved_everywhere = true;
    for (&(ttl, shared), cell) in matrix.iter().zip(&results) {
        let backend = if shared { "shared" } else { "partitioned" };
        table.row(vec![
            format!("{ttl}s"),
            backend.into(),
            cell.queries.to_string(),
            format!("{:.3}", cell.hit_rate()),
            format!("{:.2}ms", cell.mean_latency_ms()),
            cell.upstream.to_string(),
        ]);
        report.metric(&format!("hit_rate_ttl_{ttl}_{backend}"), cell.hit_rate());
        report.metric(
            &format!("mean_latency_ms_ttl_{ttl}_{backend}"),
            cell.mean_latency_ms(),
        );
        conserved_everywhere &= cell.conserved;
    }
    report.push(table.render());
    report.metric(
        "ledger_conserved",
        if conserved_everywhere { 1.0 } else { 0.0 },
    );

    let (invariant, contention_ops) =
        contention_invariance(cfg.seed_for("shared-cache-contention"), 400);
    report.metric(
        "contention_stats_invariant",
        if invariant { 1.0 } else { 0.0 },
    );
    report.metric("contention_ops", contention_ops as f64);
    report.push(format!(
        "contention arm: seeded per-segment workload on 1/2/8 threads merged to \
         {} stats ({} hits+inserts at 1 thread)",
        if invariant { "identical" } else { "DIVERGENT" },
        contention_ops,
    ));
    report.push(
        "one shared cache amortises each miss across the whole client population:\n\
         the shared backend's hit rate dominates the partitioned one at every TTL,\n\
         and the gap is the same mechanism behind the paper's §5.3 latency win.",
    );

    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("shared_cache_hit_rate.csv"),
            &[
                "ttl_s",
                "backend",
                "clients",
                "queries",
                "hits",
                "hit_rate",
                "mean_latency_ms",
                "upstream_queries",
            ],
        );
        for (&(ttl, shared), cell) in matrix.iter().zip(&results) {
            w.row(&[
                ttl.to_string(),
                if shared { "shared" } else { "partitioned" }.into(),
                clients.to_string(),
                cell.queries.to_string(),
                cell.hits.to_string(),
                format!("{:.6}", cell.hit_rate()),
                format!("{:.6}", cell.mean_latency_ms()),
                cell.upstream.to_string(),
            ]);
        }
        let _ = w.finish();
        report.artifact("shared_cache_hit_rate.csv");
    }

    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_backend_dominates_partitioned_hit_rate() {
        let cfg = ExpConfig::quick();
        let reports = run(&cfg);
        let r = &reports[0];
        for ttl in [60u32, 3_600, 86_400] {
            let shared = r.get(&format!("hit_rate_ttl_{ttl}_shared"));
            let part = r.get(&format!("hit_rate_ttl_{ttl}_partitioned"));
            assert!(
                shared > part,
                "ttl={ttl}: shared {shared:.3} should beat partitioned {part:.3}"
            );
            let lat_shared = r.get(&format!("mean_latency_ms_ttl_{ttl}_shared"));
            let lat_part = r.get(&format!("mean_latency_ms_ttl_{ttl}_partitioned"));
            assert!(
                lat_shared < lat_part,
                "ttl={ttl}: shared latency {lat_shared:.2} should undercut {lat_part:.2}"
            );
        }
        assert_eq!(r.get("ledger_conserved"), 1.0);
        assert_eq!(r.get("contention_stats_invariant"), 1.0);
    }

    #[test]
    fn sharded_engine_matches_sequential_cells() {
        let base = ExpConfig::quick();
        let sharded = ExpConfig {
            shards: Some(3),
            ..ExpConfig::quick()
        };
        let a = run(&base);
        let b = run(&sharded);
        for ttl in [60u32, 3_600, 86_400] {
            for backend in ["shared", "partitioned"] {
                let key = format!("hit_rate_ttl_{ttl}_{backend}");
                assert_eq!(a[0].get(&key), b[0].get(&key), "{key}");
            }
        }
    }
}
