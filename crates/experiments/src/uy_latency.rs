//! §5.3 / Figure 10: the `.uy` natural experiment.
//!
//! Uruguay's ccTLD raised its child NS TTL from 300 s to 86 400 s on
//! 2019-03-04 after the authors shared early results. The same Atlas
//! measurement (NS `.uy` every 600 s for two hours) run before and
//! after shows the cache doing its job: with the short TTL most VP
//! queries miss and pay a trip to the authoritatives; with the long
//! TTL the recursive answers directly.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::sharded::{self, WorldSpec};
use dnsttl_analysis::{ascii_cdf_multi, CsvWriter, Ecdf, Table};
use dnsttl_atlas::{
    run_measurement, Dataset, MeasurementSpec, Population, PopulationConfig, QueryName,
};
use dnsttl_netsim::{Region, SimRng};
use dnsttl_wire::{Name, RecordType, Ttl};

fn measure(cfg: &ExpConfig, tag: &str, child_ns: Ttl, child_a: Ttl) -> Dataset {
    let spec = MeasurementSpec::every_600s(
        QueryName::Fixed(Name::parse("uy").expect("static")),
        RecordType::NS,
        2,
    );
    let world = WorldSpec::Uy {
        ns_ttl: child_ns,
        a_ttl: child_a,
    };
    if let Some(workers) = cfg.shards {
        return sharded::measurement_campaign(cfg, tag, world, &spec, workers).dataset;
    }
    let (mut net, roots, _) = world.build();
    net.set_telemetry(cfg.telemetry.clone());
    let mut rng = SimRng::seed_from(cfg.seed_for(tag));
    let mut pop = Population::build(&PopulationConfig::small(cfg.probes), &roots, &mut rng);
    pop.set_telemetry(&cfg.telemetry);
    let dataset = run_measurement(&spec, &mut pop, &mut net, &mut rng);
    crate::flightdeck::record_latency_quantiles(&cfg.telemetry, tag, &dataset);
    dataset
}

/// Runs the before/after comparison; returns fig10a and fig10b.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    // Before: NS 300 s / A 120 s. After: both one day (§5.3).
    let before = measure(
        cfg,
        "fig10-before",
        Ttl::from_secs(300),
        Ttl::from_secs(120),
    );
    let after = measure(cfg, "fig10-after", Ttl::DAY, Ttl::DAY);

    let before_ecdf = Ecdf::from_u64(before.rtts_ms());
    let after_ecdf = Ecdf::from_u64(after.rtts_ms());

    let mut fig10a = Report::new(
        "fig10a",
        "RTT of NS .uy queries before (TTL 300 s) and after (TTL 86400 s)",
    );
    fig10a.push(ascii_cdf_multi(
        &[
            ("TTL 300s (before)", &before_ecdf),
            ("TTL 86400s (after)", &after_ecdf),
        ],
        64,
        14,
    ));
    let mut t = Table::new(vec![
        "quantile",
        "before (ms)",
        "after (ms)",
        "paper before",
        "paper after",
    ]);
    for (q, pb, pa) in [
        (0.50, "28.7", "8"),
        (0.75, "183", "21"),
        (0.95, "450", "200"),
        (0.99, "1375", "678"),
    ] {
        t.row(vec![
            format!("p{:.0}", q * 100.0),
            format!("{:.1}", before_ecdf.quantile(q)),
            format!("{:.1}", after_ecdf.quantile(q)),
            pb.into(),
            pa.into(),
        ]);
    }
    fig10a.push(t.render());
    fig10a.push(
        "shape check: the long-TTL curve must sit left of (below) the short-TTL curve\n\
         at every quantile, with the biggest relative gain at the median.",
    );
    fig10a.metric("median_before_ms", before_ecdf.median());
    fig10a.metric("median_after_ms", after_ecdf.median());
    fig10a.metric("p75_before_ms", before_ecdf.quantile(0.75));
    fig10a.metric("p75_after_ms", after_ecdf.quantile(0.75));
    fig10a.metric(
        "cache_hit_rate_before",
        before.valid().filter(|r| r.cache_hit).count() as f64 / before.valid_count().max(1) as f64,
    );
    fig10a.metric(
        "cache_hit_rate_after",
        after.valid().filter(|r| r.cache_hit).count() as f64 / after.valid_count().max(1) as f64,
    );
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("fig10a_uy_rtt_cdf.csv"),
            &["phase", "rtt_ms", "cdf"],
        );
        for (phase, e) in [("before", &before_ecdf), ("after", &after_ecdf)] {
            for (x, y) in e.points() {
                w.row(&[phase.into(), format!("{x}"), format!("{y}")]);
            }
        }
        let _ = w.finish();
    }

    // ----- Figure 10b: per-region quantiles -----
    let mut fig10b = Report::new("fig10b", "RTT quantiles per region, before vs after");
    let mut t = Table::new(vec![
        "region",
        "p25 before",
        "p50 before",
        "p75 before",
        "p25 after",
        "p50 after",
        "p75 after",
    ]);
    let mut all_regions_improved = true;
    for region in Region::ALL {
        let b = Ecdf::from_u64(before.rtts_ms_in(region));
        let a = Ecdf::from_u64(after.rtts_ms_in(region));
        if b.is_empty() || a.is_empty() {
            continue;
        }
        all_regions_improved &= a.median() <= b.median();
        t.row(vec![
            region.to_string(),
            format!("{:.0}", b.quantile(0.25)),
            format!("{:.0}", b.median()),
            format!("{:.0}", b.quantile(0.75)),
            format!("{:.0}", a.quantile(0.25)),
            format!("{:.0}", a.median()),
            format!("{:.0}", a.quantile(0.75)),
        ]);
        fig10b.metric(&format!("median_before_{region}"), b.median());
        fig10b.metric(&format!("median_after_{region}"), a.median());
    }
    fig10b.push(t.render());
    fig10b.push("paper: all regions observe latency reduction after the TTL change.");
    fig10b.metric("all_regions_improved", all_regions_improved as u8 as f64);
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("fig10b_uy_rtt_by_region.csv"),
            &["region", "phase", "p25", "p50", "p75"],
        );
        for region in Region::ALL {
            for (phase, ds) in [("before", &before), ("after", &after)] {
                let e = Ecdf::from_u64(ds.rtts_ms_in(region));
                if e.is_empty() {
                    continue;
                }
                w.row(&[
                    region.to_string(),
                    phase.into(),
                    format!("{:.1}", e.quantile(0.25)),
                    format!("{:.1}", e.median()),
                    format!("{:.1}", e.quantile(0.75)),
                ]);
            }
        }
        let _ = w.finish();
    }

    vec![fig10a, fig10b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_ttl_cuts_latency_everywhere() {
        let reports = run(&ExpConfig::quick());
        let fig10a = &reports[0];
        // The headline: long TTLs slash the median.
        assert!(
            fig10a.get("median_after_ms") < fig10a.get("median_before_ms") / 2.0,
            "before {} after {}",
            fig10a.get("median_before_ms"),
            fig10a.get("median_after_ms")
        );
        assert!(fig10a.get("p75_after_ms") < fig10a.get("p75_before_ms"));
        // Mechanism: the cache-hit rate explains it.
        assert!(fig10a.get("cache_hit_rate_after") > fig10a.get("cache_hit_rate_before") + 0.3);

        let fig10b = &reports[1];
        assert_eq!(fig10b.get("all_regions_improved"), 1.0);
    }

    #[test]
    fn latency_gain_survives_sharding() {
        let cfg = ExpConfig {
            shards: Some(2),
            ..ExpConfig::quick()
        };
        let reports = run(&cfg);
        let fig10a = &reports[0];
        assert!(
            fig10a.get("median_after_ms") < fig10a.get("median_before_ms") / 2.0,
            "before {} after {}",
            fig10a.get("median_before_ms"),
            fig10a.get("median_after_ms")
        );
    }
}
