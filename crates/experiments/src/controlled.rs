//! §6.2: the controlled TTL experiments — Table 10 and Figure 11.
//!
//! Five campaigns against a test zone (`mapache-de-madrid.co`):
//!
//! * unique per-probe names × TTL {60 s, 86 400 s} — every VP fills its
//!   own cache entry;
//! * one shared name × TTL {60 s, 86 400 s} — VPs warm each other's
//!   shared caches;
//! * one shared name × TTL 60 s served via a global **anycast** set —
//!   the Route53 comparison.
//!
//! The paper's findings to reproduce: long TTLs cut authoritative
//! query volume by roughly three quarters; long TTLs beat short TTLs
//! on median latency by ~5×; and caching beats anycast at the median
//! while anycast only compresses the tail.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::sharded::{self, WorldSpec};
use dnsttl_analysis::{ascii_cdf_multi, CsvWriter, Ecdf, Table};
use dnsttl_atlas::{
    run_measurement, Dataset, MeasurementSpec, Population, PopulationConfig, QueryName,
};
use dnsttl_netsim::{SimDuration, SimRng, SimTime};
use dnsttl_wire::{Name, RecordType, Ttl};

struct Campaign {
    label: &'static str,
    dataset: Dataset,
    auth_queries: u64,
    auth_sources: usize,
    vps: usize,
}

fn campaign(
    cfg: &ExpConfig,
    tag: &str,
    label: &'static str,
    ttl: Ttl,
    anycast: bool,
    unique_names: bool,
) -> Campaign {
    let query = if unique_names {
        QueryName::PerProbe {
            suffix: Name::parse("mapache-de-madrid.co").expect("static"),
        }
    } else {
        QueryName::Fixed(Name::parse("1.mapache-de-madrid.co").expect("static"))
    };
    let spec = MeasurementSpec {
        query,
        qtype: RecordType::AAAA,
        frequency: SimDuration::from_secs(600),
        duration: SimDuration::from_mins(65),
        start: SimTime::ZERO,
    };
    let world = WorldSpec::Controlled {
        aaaa_ttl: ttl,
        anycast,
    };
    if let Some(workers) = cfg.shards {
        let out = sharded::measurement_campaign(cfg, tag, world, &spec, workers);
        return Campaign {
            label,
            dataset: out.dataset,
            auth_queries: out.auth_queries,
            auth_sources: out.auth_sources,
            vps: out.vps,
        };
    }
    let (mut net, roots, test_addr) = world.build();
    let test_addr = test_addr.expect("controlled world exposes its test address");
    net.set_telemetry(cfg.telemetry.clone());
    let mut rng = SimRng::seed_from(cfg.seed_for(tag));
    let mut pop = Population::build(&PopulationConfig::small(cfg.probes), &roots, &mut rng);
    pop.set_telemetry(&cfg.telemetry);
    let dataset = run_measurement(&spec, &mut pop, &mut net, &mut rng);
    crate::flightdeck::record_latency_quantiles(&cfg.telemetry, tag, &dataset);
    Campaign {
        label,
        dataset,
        auth_queries: net.queries_received(test_addr),
        auth_sources: net.distinct_sources(test_addr),
        vps: pop.vp_count(),
    }
}

/// Runs the five campaigns; returns table10, fig11a, fig11b.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let ttl60_u = campaign(cfg, "ttl60-u", "TTL60-u", Ttl::MINUTE, false, true);
    let ttl86400_u = campaign(cfg, "ttl86400-u", "TTL86400-u", Ttl::DAY, false, true);
    let ttl60_s = campaign(cfg, "ttl60-s", "TTL60-s", Ttl::MINUTE, false, false);
    let ttl86400_s = campaign(cfg, "ttl86400-s", "TTL86400-s", Ttl::DAY, false, false);
    let anycast = campaign(
        cfg,
        "ttl60-anycast",
        "TTL60-s-anycast",
        Ttl::MINUTE,
        true,
        false,
    );

    let campaigns = [&ttl60_u, &ttl86400_u, &ttl60_s, &ttl86400_s, &anycast];

    // ----- Table 10 -----
    let mut table10 = Report::new(
        "table10",
        "Controlled TTL experiments: client and authoritative view",
    );
    let mut t = Table::new(vec![
        "",
        "TTL60-u",
        "TTL86400-u",
        "TTL60-s",
        "TTL86400-s",
        "TTL60-anycast",
    ]);
    type Cell = Box<dyn Fn(&Campaign) -> String>;
    let rows: [(&str, Cell); 7] = [
        ("Frequency", Box::new(|_| "600s".into())),
        ("Duration", Box::new(|_| "65min".into())),
        ("VPs", Box::new(|c| c.vps.to_string())),
        (
            "Queries (client)",
            Box::new(|c| c.dataset.len().to_string()),
        ),
        (
            "Responses (val.)",
            Box::new(|c| c.dataset.valid_count().to_string()),
        ),
        (
            "Querying IPs (auth)",
            Box::new(|c| c.auth_sources.to_string()),
        ),
        ("Queries (auth)", Box::new(|c| c.auth_queries.to_string())),
    ];
    for (label, f) in &rows {
        t.row(
            std::iter::once(label.to_string())
                .chain(campaigns.iter().map(|c| f(c)))
                .collect(),
        );
    }
    table10.push(t.render());
    let reduction_u = 1.0 - ttl86400_u.auth_queries as f64 / ttl60_u.auth_queries.max(1) as f64;
    let reduction_s = 1.0 - ttl86400_s.auth_queries as f64 / ttl60_s.auth_queries.max(1) as f64;
    table10.push(format!(
        "authoritative query reduction from TTL 60 → 86400: unique {:.1}%  shared {:.1}%  (paper ≈77%)",
        reduction_u * 100.0,
        reduction_s * 100.0
    ));
    table10.metric("auth_queries_ttl60_u", ttl60_u.auth_queries as f64);
    table10.metric("auth_queries_ttl86400_u", ttl86400_u.auth_queries as f64);
    table10.metric("reduction_unique", reduction_u);
    table10.metric("reduction_shared", reduction_s);

    // ----- Figure 11a: unique names -----
    let e60u = Ecdf::from_u64(ttl60_u.dataset.rtts_ms());
    let e86u = Ecdf::from_u64(ttl86400_u.dataset.rtts_ms());
    let mut fig11a = Report::new("fig11a", "Client latency, unique query names");
    fig11a.push(ascii_cdf_multi(
        &[("TTL 60s", &e60u), ("TTL 86400s", &e86u)],
        64,
        14,
    ));
    fig11a.push(format!(
        "median: TTL60 {:.1} ms vs TTL86400 {:.1} ms  (paper: 49.28 vs 9.68 ms)",
        e60u.median(),
        e86u.median()
    ));
    fig11a.metric("median_ttl60_u", e60u.median());
    fig11a.metric("median_ttl86400_u", e86u.median());

    // ----- Figure 11b: shared name + anycast -----
    let e60s = Ecdf::from_u64(ttl60_s.dataset.rtts_ms());
    let e86s = Ecdf::from_u64(ttl86400_s.dataset.rtts_ms());
    let eany = Ecdf::from_u64(anycast.dataset.rtts_ms());
    let mut fig11b = Report::new("fig11b", "Client latency, shared query name, with anycast");
    fig11b.push(ascii_cdf_multi(
        &[
            ("TTL 60s unicast", &e60s),
            ("TTL 86400s unicast", &e86s),
            ("TTL 60s anycast", &eany),
        ],
        64,
        14,
    ));
    let mut t = Table::new(vec![
        "series",
        "p50 (ms)",
        "p75 (ms)",
        "p95 (ms)",
        "paper p50",
    ]);
    for (label, e, paper) in [
        ("TTL60-s", &e60s, "35.59"),
        ("TTL86400-s", &e86s, "7.38"),
        ("TTL60-anycast", &eany, "29.95"),
    ] {
        t.row(vec![
            label.into(),
            format!("{:.1}", e.median()),
            format!("{:.1}", e.quantile(0.75)),
            format!("{:.1}", e.quantile(0.95)),
            paper.into(),
        ]);
    }
    fig11b.push(t.render());
    fig11b.push(
        "shape checks — caching beats anycast at the median; anycast beats short-TTL\n\
         unicast in the tail (paper §6.2: \"caching is far better than anycast at\n\
         reducing latency\" at the median, anycast \"helps a great deal in the tail\").",
    );
    fig11b.metric("median_ttl60_s", e60s.median());
    fig11b.metric("median_ttl86400_s", e86s.median());
    fig11b.metric("median_anycast", eany.median());
    fig11b.metric("p95_ttl60_s", e60s.quantile(0.95));
    fig11b.metric("p95_anycast", eany.quantile(0.95));

    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("fig11_latency_cdfs.csv"),
            &["series", "rtt_ms", "cdf"],
        );
        for (series, e) in [
            ("ttl60-u", &e60u),
            ("ttl86400-u", &e86u),
            ("ttl60-s", &e60s),
            ("ttl86400-s", &e86s),
            ("ttl60-anycast", &eany),
        ] {
            for (x, y) in e.points() {
                w.row(&[series.into(), format!("{x}"), format!("{y}")]);
            }
        }
        let _ = w.finish();
        let mut w = CsvWriter::new(
            dir.join("table10_auth_counts.csv"),
            &["campaign", "client_queries", "auth_queries", "auth_sources"],
        );
        for c in campaigns {
            w.row(&[
                c.label.into(),
                c.dataset.len().to_string(),
                c.auth_queries.to_string(),
                c.auth_sources.to_string(),
            ]);
        }
        let _ = w.finish();
    }

    vec![table10, fig11a, fig11b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlled_experiments_reproduce_table10_and_fig11() {
        let reports = run(&ExpConfig::quick());
        let by_id = |id: &str| reports.iter().find(|r| r.id == id).unwrap();

        let table10 = by_id("table10");
        // Paper: ~77% authoritative traffic reduction. Accept the band.
        assert!(
            table10.get("reduction_unique") > 0.55,
            "unique reduction {}",
            table10.get("reduction_unique")
        );
        assert!(
            table10.get("reduction_shared") > 0.55,
            "shared reduction {}",
            table10.get("reduction_shared")
        );

        let fig11a = by_id("fig11a");
        // Long TTLs beat short TTLs by a wide margin at the median.
        assert!(
            fig11a.get("median_ttl86400_u") * 2.0 < fig11a.get("median_ttl60_u"),
            "60s {} vs 86400s {}",
            fig11a.get("median_ttl60_u"),
            fig11a.get("median_ttl86400_u")
        );

        let fig11b = by_id("fig11b");
        // Caching beats anycast at the median…
        assert!(fig11b.get("median_ttl86400_s") < fig11b.get("median_anycast"));
        // …anycast beats short-TTL unicast at the median and in the tail.
        assert!(fig11b.get("median_anycast") <= fig11b.get("median_ttl60_s"));
        assert!(fig11b.get("p95_anycast") < fig11b.get("p95_ttl60_s"));
    }

    #[test]
    fn table10_reduction_survives_sharding() {
        let cfg = ExpConfig {
            shards: Some(2),
            ..ExpConfig::quick()
        };
        let reports = run(&cfg);
        let table10 = reports.iter().find(|r| r.id == "table10").unwrap();
        assert!(
            table10.get("reduction_unique") > 0.55,
            "unique reduction {}",
            table10.get("reduction_unique")
        );
        let fig11a = reports.iter().find(|r| r.id == "fig11a").unwrap();
        assert!(fig11a.get("median_ttl86400_u") * 2.0 < fig11a.get("median_ttl60_u"));
    }
}
