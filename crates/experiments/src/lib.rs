//! # dnsttl-experiments — the paper's evaluation, regenerated
//!
//! One module per artifact of *Cache Me If You Can* (IMC 2019):
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`table1`] | Table 1 — `a.nic.cl` TTLs at parent and child |
//! | [`centricity`] | Figures 1–2 and Table 2 — resolver centricity from Atlas VPs |
//! | [`passive_nl`] | Figures 3–4 — passive `.nl` resolver classification |
//! | [`bailiwick_exp`] | Figure 5–8, Tables 3–4 — in/out-of-bailiwick renumbering |
//! | [`crawl_exp`] | Table 5, Figure 9, Tables 6–9 — TTLs in the wild |
//! | [`uy_latency`] | Figure 10 — `.uy` before/after the TTL change |
//! | [`controlled`] | Table 10, Figure 11 — controlled TTL & anycast latency |
//! | [`extensions`] | beyond the figures: §4.4 offline-child, §2 DNSSEC centricity, §6.1 DDoS survival, analytic-model validation |
//! | [`insight`] | cache forensics: Tables 3–4's effective lifetimes re-derived from the provenance ledger (`repro cache-report`) |
//! | [`shared_cache`] | hit rate and latency vs TTL for one shared concurrent cache vs partitioned caches (`repro shared-cache`) |
//!
//! Each `run(&ExpConfig)` returns a [`Report`]: printable text (tables
//! and ASCII CDFs), a machine-readable metric map used by the test
//! suite to assert the paper's qualitative findings, and optional CSV
//! dumps under `target/experiments/`.
//!
//! The `repro` binary runs any subset: `repro fig1 table10`, or
//! `repro all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bailiwick_exp;
pub mod centricity;
pub mod config;
pub mod controlled;
pub mod crawl_exp;
pub mod extensions;
pub mod flightdeck;
pub mod insight;
pub mod passive_nl;
pub mod report;
pub mod resilience;
pub mod rundiff;
pub mod sharded;
pub mod shared_cache;
pub mod table1;
pub mod timeline;
pub mod uy_latency;
pub mod worlds;
pub mod zipf;

pub use config::ExpConfig;
pub use report::Report;

/// Runs every experiment, in paper order.
pub fn run_all(cfg: &ExpConfig) -> Vec<Report> {
    let mut reports = vec![table1::run(cfg)];
    reports.extend(centricity::run(cfg));
    reports.extend(passive_nl::run(cfg));
    reports.extend(bailiwick_exp::run(cfg));
    reports.extend(crawl_exp::run(cfg));
    reports.extend(uy_latency::run(cfg));
    reports.extend(controlled::run(cfg));
    reports.extend(extensions::run(cfg));
    reports
}
