//! The sharded measurement engine.
//!
//! The legacy engine builds one global population and drives one event
//! queue — simple, but single-threaded. This module partitions a
//! campaign into `cfg.cells` logical cells (default: the classic 16,
//! tunable as a power of two via `--cells`), runs each cell
//! as a self-contained simulation (its own world, population, resolver
//! caches, and RNG stream derived via [`shard_seed`]), and merges the
//! per-cell datasets and telemetry back together in fixed cell order.
//!
//! The determinism contract (DESIGN.md §10): the cell partition and all
//! per-cell seeds depend only on the run seed and the cell id, never on
//! the worker count or thread scheduling. `--shards 1` runs the cells
//! inline on the calling thread and is the reference oracle;
//! `tests/shard_equivalence.rs` asserts that every worker count
//! reproduces its output byte for byte.
//!
//! Sharding changes the experiment relative to the legacy engine in one
//! deliberate way: resolver caches are shared within a cell, not across
//! the whole population, so shared-cache effects (Figures 1–2 bands,
//! cache-hit rates) are computed per cell and merged. Cells are large
//! enough that the paper's qualitative findings survive — the
//! experiment tests assert the same bands for both engines.

use crate::config::ExpConfig;
use crate::worlds;
use dnsttl_atlas::{
    partition, partition_bases, run_cells, run_measurement, Dataset, MeasurementSpec, Population,
    PopulationConfig, ProgressSink,
};
use dnsttl_netsim::{shard_seed, Network, SimRng};
use dnsttl_resolver::RootHint;
use dnsttl_telemetry::{Telemetry, TelemetryParts};
use dnsttl_wire::Ttl;
use std::net::IpAddr;
use std::sync::Arc;

/// A recipe for building one experiment world.
///
/// Cells construct their own `Network` inside their worker thread (the
/// simulator's service handles are deliberately not `Send`), so the
/// sharded engine passes this plain-data description instead of a
/// built world.
#[derive(Debug, Clone, Copy)]
pub enum WorldSpec {
    /// `.uy` with the given child NS / child A TTLs ([`worlds::uy_world`]).
    Uy {
        /// Child-side `.uy` NS TTL.
        ns_ttl: Ttl,
        /// Child-side `a.nic.uy` A TTL.
        a_ttl: Ttl,
    },
    /// `google.co` ([`worlds::google_co_world`]).
    GoogleCo,
    /// The §6.2 controlled test zone ([`worlds::controlled_world`]);
    /// exposes the test server's address for authoritative-side counts.
    Controlled {
        /// TTL of the test AAAA record.
        aaaa_ttl: Ttl,
        /// Serve the zone from an anycast set instead of one unicast site.
        anycast: bool,
    },
}

impl WorldSpec {
    /// Builds the world; the third element is the authoritative test
    /// address to count queries against, when the experiment has one.
    pub fn build(self) -> (Network, Vec<RootHint>, Option<IpAddr>) {
        match self {
            WorldSpec::Uy { ns_ttl, a_ttl } => {
                let (net, roots) = worlds::uy_world(ns_ttl, a_ttl);
                (net, roots, None)
            }
            WorldSpec::GoogleCo => {
                let (net, roots) = worlds::google_co_world();
                (net, roots, None)
            }
            WorldSpec::Controlled { aaaa_ttl, anycast } => {
                let (net, roots, addr) = worlds::controlled_world(aaaa_ttl, anycast);
                (net, roots, Some(addr))
            }
        }
    }
}

/// The merged result of a sharded measurement campaign.
pub struct ShardedOutcome {
    /// All cells' results, rebased and re-ordered by simulation time.
    pub dataset: Dataset,
    /// Total probes across cells.
    pub probes: usize,
    /// Total vantage points across cells.
    pub vps: usize,
    /// Queries the authoritative test address received, summed over
    /// cells (cells own disjoint resolvers, so the sum is exact).
    pub auth_queries: u64,
    /// Distinct resolver sources at the test address, summed over cells.
    pub auth_sources: usize,
}

/// What a cell sends back to the coordinator: plain data only.
struct CellOut {
    dataset: Dataset,
    probes: usize,
    resolvers: usize,
    vps: usize,
    auth_queries: u64,
    auth_sources: usize,
    parts: TelemetryParts,
}

/// Runs one measurement campaign sharded over `cfg.cells` logical
/// cells on `workers` threads and merges the results.
///
/// The campaign seed is `cfg.seed_for(tag)`, exactly as in the legacy
/// engine; each cell then derives its own stream with [`shard_seed`].
/// Per-cell telemetry is drained with [`Telemetry::take_parts`] and
/// folded into `cfg.telemetry` in cell order, so metrics, traces, and
/// manifests are worker-count-invariant too. The cell count defaults
/// to the classic 16 and, unlike the worker count, is part of the
/// experiment's identity (different partitions, different per-cell
/// seeds).
pub fn measurement_campaign(
    cfg: &ExpConfig,
    tag: &str,
    world: WorldSpec,
    spec: &MeasurementSpec,
    workers: usize,
) -> ShardedOutcome {
    let cell_count = cfg.cells.unwrap_or(dnsttl_atlas::LOGICAL_SHARDS).max(1);
    let sizes = partition(cfg.probes, cell_count);
    let bases = partition_bases(&sizes);
    let run_seed = cfg.seed_for(tag);
    let enabled = cfg.telemetry.is_enabled();
    let (ts_bucket_ms, ts_span_cap) = (cfg.ts_bucket_ms, cfg.ts_span_cap);
    // Live progress (off by default): heartbeats go to stderr only, so
    // the deterministic artifacts never see the wall clock behind them.
    let progress = cfg
        .progress_ms
        .map(|ms| Arc::new(ProgressSink::new(tag, workers.max(1), cell_count, ms)));

    let cells = run_cells(workers, cell_count, |cell| {
        let telemetry = if enabled {
            Telemetry::new()
        } else {
            Telemetry::disabled()
        };
        telemetry.configure_timeseries(ts_bucket_ms, ts_span_cap);
        let (mut net, roots, test_addr) = world.build();
        net.set_telemetry(telemetry.clone());
        let mut rng = SimRng::seed_from(shard_seed(run_seed, cell as u64));
        let mut pop_cfg = PopulationConfig::small(sizes[cell]);
        pop_cfg.probe_id_base = bases[cell] as u32;
        let mut pop = Population::build(&pop_cfg, &roots, &mut rng);
        pop.set_telemetry(&telemetry);
        let dataset = run_measurement(spec, &mut pop, &mut net, &mut rng);
        if let Some(sink) = &progress {
            let frontier = dataset.results().iter().map(|r| r.at.as_millis()).max();
            sink.cell_finished(frontier.unwrap_or(0), dataset.results().len() as u64);
        }
        CellOut {
            dataset,
            probes: pop.probe_count(),
            resolvers: pop.resolvers.len(),
            vps: pop.vp_count(),
            auth_queries: test_addr.map_or(0, |a| net.queries_received(a)),
            auth_sources: test_addr.map_or(0, |a| net.distinct_sources(a)),
            parts: telemetry.take_parts(),
        }
    });

    let mut dataset_parts = Vec::with_capacity(cells.len());
    let mut telemetry_parts = Vec::with_capacity(cells.len());
    let mut outcome = ShardedOutcome {
        dataset: Dataset::new(),
        probes: 0,
        vps: 0,
        auth_queries: 0,
        auth_sources: 0,
    };
    let mut resolver_base = 0;
    for (cell, out) in cells.into_iter().enumerate() {
        dataset_parts.push((out.dataset, bases[cell], resolver_base));
        resolver_base += out.resolvers;
        outcome.probes += out.probes;
        outcome.vps += out.vps;
        outcome.auth_queries += out.auth_queries;
        outcome.auth_sources += out.auth_sources;
        telemetry_parts.push(out.parts);
    }
    if enabled {
        cfg.telemetry.absorb_shards(telemetry_parts);
    }
    outcome.dataset = Dataset::merge_shards(dataset_parts);
    // Record latency quantiles over the *merged* dataset, never per
    // cell: the sketches then depend only on the dataset rows and stay
    // byte-identical across worker counts.
    crate::flightdeck::record_latency_quantiles(&cfg.telemetry, tag, &outcome.dataset);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_atlas::QueryName;
    use dnsttl_wire::{Name, RecordType};

    fn uy_spec() -> MeasurementSpec {
        MeasurementSpec::every_600s(
            QueryName::Fixed(Name::parse("uy").expect("static")),
            RecordType::NS,
            1,
        )
    }

    fn run_with(workers: usize, seed: u64) -> ShardedOutcome {
        run_with_cells(workers, seed, None)
    }

    fn run_with_cells(workers: usize, seed: u64, cells: Option<usize>) -> ShardedOutcome {
        let cfg = ExpConfig {
            seed,
            probes: 160,
            shards: Some(workers),
            cells,
            ..ExpConfig::quick()
        };
        let world = WorldSpec::Uy {
            ns_ttl: Ttl::from_secs(300),
            a_ttl: Ttl::from_secs(120),
        };
        measurement_campaign(&cfg, "sharded-test", world, &uy_spec(), workers)
    }

    type Row = (u64, u32, usize, usize, Option<u64>, u64, bool);

    fn fingerprint(o: &ShardedOutcome) -> Vec<Row> {
        o.dataset
            .results()
            .iter()
            .map(|r| {
                (
                    r.at.as_millis(),
                    r.probe_id,
                    r.probe_idx,
                    r.resolver_idx,
                    r.ttl,
                    r.rtt_ms,
                    r.valid,
                )
            })
            .collect()
    }

    #[test]
    fn outcome_is_worker_count_invariant() {
        let one = run_with(1, 42);
        for workers in [2, 5, 8] {
            let many = run_with(workers, 42);
            assert_eq!(fingerprint(&one), fingerprint(&many), "workers={workers}");
            assert_eq!(one.probes, many.probes);
            assert_eq!(one.vps, many.vps);
        }
    }

    #[test]
    fn outcome_is_worker_count_invariant_at_a_nondefault_cell_count() {
        // Satellite regression for the merge/absorb audit: nothing in
        // `Dataset::merge_shards` or `Telemetry::absorb_shards` may
        // assume the classic 16-cell layout. 64 cells over 160 probes
        // also exercises the uneven-partition path (cells of 3 and 2).
        let one = run_with_cells(1, 42, Some(64));
        for workers in [4, 8] {
            let many = run_with_cells(workers, 42, Some(64));
            assert_eq!(fingerprint(&one), fingerprint(&many), "workers={workers}");
            assert_eq!(one.probes, many.probes);
        }
        // And the cell count itself is identity-changing.
        let classic = run_with(1, 42);
        assert_ne!(fingerprint(&one), fingerprint(&classic));
    }

    #[test]
    fn different_seeds_give_different_outcomes() {
        let a = run_with(4, 1);
        let b = run_with(4, 2);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn probe_ids_are_globally_unique_across_cells() {
        let o = run_with(4, 42);
        assert_eq!(o.probes, 160);
        let mut ids: Vec<u32> = o.dataset.results().iter().map(|r| r.probe_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), o.probes, "every probe reported, ids distinct");
    }
}
