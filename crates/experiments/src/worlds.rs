//! World builders: the DNS hierarchies each experiment runs against.
//!
//! Every world reconstructs, inside the simulator, the zone
//! configuration the paper measured on the live Internet — same names,
//! same TTLs, same parent/child disagreements, same bailiwick layouts.

use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_netsim::{ClientId, DnsService, LatencyModel, Network, Region, SimTime};
use dnsttl_resolver::RootHint;
use dnsttl_wire::{Message, Name, RData, Rcode, Record, RecordType, SoaData, Ttl};
use std::cell::RefCell;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::rc::Rc;

/// Address book for the simulated infrastructure.
pub mod addrs {
    use super::*;
    /// The root server.
    pub const ROOT: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 41, 0, 4));
    /// `a.nic.uy` (Montevideo).
    pub const UY_A: IpAddr = IpAddr::V4(Ipv4Addr::new(200, 40, 241, 1));
    /// `b.nic.uy` (Montevideo).
    pub const UY_B: IpAddr = IpAddr::V4(Ipv4Addr::new(200, 40, 241, 2));
    /// `c.nic.uy` — the anycast member of the `.uy` NS set.
    pub const UY_C: IpAddr = IpAddr::V4(Ipv4Addr::new(204, 61, 216, 40));
    /// `.co` registry server.
    pub const CO: IpAddr = IpAddr::V4(Ipv4Addr::new(156, 154, 100, 1));
    /// `.com` gTLD server.
    pub const COM: IpAddr = IpAddr::V4(Ipv4Addr::new(192, 5, 6, 30));
    /// Google authoritative (anycast).
    pub const GOOGLE: IpAddr = IpAddr::V4(Ipv4Addr::new(216, 239, 32, 10));
    /// `.org` server.
    pub const ORG: IpAddr = IpAddr::V4(Ipv4Addr::new(199, 19, 56, 1));
    /// ISC's server for `isc.org`.
    pub const ISC: IpAddr = IpAddr::V4(Ipv4Addr::new(149, 20, 64, 3));
    /// `.nl` servers ns1..ns3.dns.nl plus sns-pb.isc.org.
    pub const NL: [IpAddr; 4] = [
        IpAddr::V4(Ipv4Addr::new(194, 0, 28, 53)),
        IpAddr::V4(Ipv4Addr::new(194, 146, 106, 42)),
        IpAddr::V4(Ipv4Addr::new(194, 0, 25, 24)),
        IpAddr::V4(Ipv4Addr::new(192, 5, 4, 1)),
    ];
    /// `.net` gTLD server.
    pub const NET: IpAddr = IpAddr::V4(Ipv4Addr::new(192, 55, 83, 30));
    /// `ns1.cachetest.net`.
    pub const CACHETEST: IpAddr = IpAddr::V4(Ipv4Addr::new(18, 184, 0, 10));
    /// The original `sub.cachetest.net` server.
    pub const SUB_OLD: IpAddr = IpAddr::V4(Ipv4Addr::new(18, 184, 0, 20));
    /// The renumbered `sub.cachetest.net` server.
    pub const SUB_NEW: IpAddr = IpAddr::V4(Ipv4Addr::new(18, 184, 0, 21));
    /// The controlled-experiment test server (`mapache-de-madrid.co`).
    pub const MAPACHE: IpAddr = IpAddr::V4(Ipv4Addr::new(18, 184, 0, 40));
}

fn rc(server: AuthoritativeServer) -> Rc<RefCell<AuthoritativeServer>> {
    Rc::new(RefCell::new(server))
}

fn name(s: &str) -> Name {
    Name::parse(s).expect("static experiment name")
}

fn v4(addr: IpAddr) -> Ipv4Addr {
    match addr {
        IpAddr::V4(a) => a,
        IpAddr::V6(_) => unreachable!("experiment servers are IPv4"),
    }
}

/// Root hints shared by every world.
pub fn root_hints() -> Vec<RootHint> {
    vec![RootHint {
        ns_name: name("k.root-servers.net"),
        addr: addrs::ROOT,
    }]
}

// ---------------------------------------------------------------------
// §3.2 / §5.3: the .uy world
// ---------------------------------------------------------------------

/// Builds the `.uy` hierarchy with configurable child TTLs.
///
/// Before the paper's intervention: `child_ns_ttl` = 300 s and
/// `child_a_ttl` = 120 s against the root's 172 800 s glue; after,
/// both are 86 400 s (§5.3). The NS set has two unicast servers in
/// South America and one anycast member, like the real `.uy`'s mix of
/// in-bailiwick and globally hosted servers.
pub fn uy_world(child_ns_ttl: Ttl, child_a_ttl: Ttl) -> (Network, Vec<RootHint>) {
    let mut net = Network::new(LatencyModel::internet());

    let root_zone = ZoneBuilder::new(".")
        .ns("uy", "a.nic.uy", Ttl::TWO_DAYS)
        .ns("uy", "b.nic.uy", Ttl::TWO_DAYS)
        .ns("uy", "c.nic.uy", Ttl::TWO_DAYS)
        .a("a.nic.uy", "200.40.241.1", Ttl::TWO_DAYS)
        .a("b.nic.uy", "200.40.241.2", Ttl::TWO_DAYS)
        .a("c.nic.uy", "204.61.216.40", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::ROOT,
        Region::Eu,
        rc(AuthoritativeServer::new("k.root-servers.net").with_zone(root_zone)),
    );

    let uy_zone = || {
        ZoneBuilder::new("uy")
            .ns("uy", "a.nic.uy", child_ns_ttl)
            .ns("uy", "b.nic.uy", child_ns_ttl)
            .ns("uy", "c.nic.uy", child_ns_ttl)
            .a("a.nic.uy", "200.40.241.1", child_a_ttl)
            .a("b.nic.uy", "200.40.241.2", child_a_ttl)
            .a("c.nic.uy", "204.61.216.40", child_a_ttl)
            .a("www.gub.uy", "200.40.30.1", Ttl::HOUR)
            .build()
    };
    net.register(
        addrs::UY_A,
        Region::Sa,
        rc(AuthoritativeServer::new("a.nic.uy").with_zone(uy_zone())),
    );
    net.register(
        addrs::UY_B,
        Region::Sa,
        rc(AuthoritativeServer::new("b.nic.uy").with_zone(uy_zone())),
    );
    net.register_anycast(
        addrs::UY_C,
        &[Region::Eu, Region::Na, Region::As, Region::Sa],
        rc(AuthoritativeServer::new("c.nic.uy").with_zone(uy_zone())),
    );

    (net, root_hints())
}

// ---------------------------------------------------------------------
// §3.3: the google.co world
// ---------------------------------------------------------------------

/// Builds the `google.co` hierarchy (§3.3): the `.co` parent publishes
/// the delegation with a 900 s TTL and *no glue* (the servers are
/// `ns[1-4].google.com`, out of bailiwick), while Google's own servers
/// answer with 345 600 s.
pub fn google_co_world() -> (Network, Vec<RootHint>) {
    let mut net = Network::new(LatencyModel::internet());

    let root_zone = ZoneBuilder::new(".")
        .ns("co", "ns.cctld.co", Ttl::TWO_DAYS)
        .a("ns.cctld.co", "156.154.100.1", Ttl::TWO_DAYS)
        .ns("com", "a.gtld-servers.net", Ttl::TWO_DAYS)
        .a("a.gtld-servers.net", "192.5.6.30", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::ROOT,
        Region::Eu,
        rc(AuthoritativeServer::new("k.root-servers.net").with_zone(root_zone)),
    );

    let co_zone = ZoneBuilder::new("co")
        .ns("co", "ns.cctld.co", Ttl::DAY)
        .a("ns.cctld.co", "156.154.100.1", Ttl::DAY)
        .ns("google.co", "ns1.google.com", Ttl::from_secs(900))
        .ns("google.co", "ns2.google.com", Ttl::from_secs(900))
        .ns("google.co", "ns3.google.com", Ttl::from_secs(900))
        .ns("google.co", "ns4.google.com", Ttl::from_secs(900))
        .build();
    net.register(
        addrs::CO,
        Region::Na,
        rc(AuthoritativeServer::new("ns.cctld.co").with_zone(co_zone)),
    );

    let com_zone = ZoneBuilder::new("com")
        .ns("com", "a.gtld-servers.net", Ttl::TWO_DAYS)
        .ns("google.com", "ns1.google.com", Ttl::TWO_DAYS)
        .a("ns1.google.com", "216.239.32.10", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::COM,
        Region::Na,
        rc(AuthoritativeServer::new("a.gtld-servers.net").with_zone(com_zone)),
    );

    let google_ttl = Ttl::from_secs(345_600);
    let google = AuthoritativeServer::new("ns1.google.com")
        .with_zone(
            ZoneBuilder::new("google.com")
                .ns("google.com", "ns1.google.com", google_ttl)
                .a("ns1.google.com", "216.239.32.10", google_ttl)
                .a("ns2.google.com", "216.239.32.10", google_ttl)
                .a("ns3.google.com", "216.239.32.10", google_ttl)
                .a("ns4.google.com", "216.239.32.10", google_ttl)
                .build(),
        )
        .with_zone(
            ZoneBuilder::new("google.co")
                .ns("google.co", "ns1.google.com", google_ttl)
                .ns("google.co", "ns2.google.com", google_ttl)
                .ns("google.co", "ns3.google.com", google_ttl)
                .ns("google.co", "ns4.google.com", google_ttl)
                .a("www.google.co", "172.217.28.99", Ttl::from_secs(300))
                .build(),
        );
    net.register_anycast(
        addrs::GOOGLE,
        &[Region::Eu, Region::Na, Region::As, Region::Sa, Region::Oc],
        rc(google),
    );

    (net, root_hints())
}

// ---------------------------------------------------------------------
// §3.4: the .nl world
// ---------------------------------------------------------------------

/// Handles to the logged `.nl` servers.
pub struct NlWorld {
    /// The network with the whole hierarchy attached.
    pub net: Network,
    /// Root hints.
    pub roots: Vec<RootHint>,
    /// The two logged authoritative servers (ns1 and ns3.dns.nl), as
    /// in the paper's ENTRADA capture.
    pub logged: [Rc<RefCell<AuthoritativeServer>>; 2],
    /// The NS-host A-record names clients resolve.
    pub ns_host_names: Vec<Name>,
}

/// Builds the `.nl` world: four authoritative servers (three
/// `dns.nl` hosts with 172 800 s root glue vs 3 600 s child TTL, plus
/// the out-of-bailiwick `sns-pb.isc.org`), with passive query logging
/// enabled at ns1 and ns3.
pub fn nl_world() -> NlWorld {
    let mut net = Network::new(LatencyModel::internet());

    let root_zone = ZoneBuilder::new(".")
        .ns("nl", "ns1.dns.nl", Ttl::TWO_DAYS)
        .ns("nl", "ns2.dns.nl", Ttl::TWO_DAYS)
        .ns("nl", "ns3.dns.nl", Ttl::TWO_DAYS)
        .ns("nl", "sns-pb.isc.org", Ttl::TWO_DAYS)
        .a("ns1.dns.nl", "194.0.28.53", Ttl::TWO_DAYS)
        .a("ns2.dns.nl", "194.146.106.42", Ttl::TWO_DAYS)
        .a("ns3.dns.nl", "194.0.25.24", Ttl::TWO_DAYS)
        .ns("org", "ns.org", Ttl::TWO_DAYS)
        .a("ns.org", "199.19.56.1", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::ROOT,
        Region::Eu,
        rc(AuthoritativeServer::new("k.root-servers.net").with_zone(root_zone)),
    );

    let org_zone = ZoneBuilder::new("org")
        .ns("org", "ns.org", Ttl::DAY)
        .ns("isc.org", "ns1.isc.org", Ttl::DAY)
        .a("ns1.isc.org", "149.20.64.3", Ttl::DAY)
        .build();
    net.register(
        addrs::ORG,
        Region::Na,
        rc(AuthoritativeServer::new("ns.org").with_zone(org_zone)),
    );
    let isc_zone = ZoneBuilder::new("isc.org")
        .ns("isc.org", "ns1.isc.org", Ttl::HOUR)
        .a("ns1.isc.org", "149.20.64.3", Ttl::HOUR)
        .a("sns-pb.isc.org", "192.5.4.1", Ttl::HOUR)
        .build();
    net.register(
        addrs::ISC,
        Region::Na,
        rc(AuthoritativeServer::new("ns1.isc.org").with_zone(isc_zone)),
    );

    // The child zone: 3600 s for everything, against 2-day glue.
    let nl_zone = || {
        ZoneBuilder::new("nl")
            .ns("nl", "ns1.dns.nl", Ttl::HOUR)
            .ns("nl", "ns2.dns.nl", Ttl::HOUR)
            .ns("nl", "ns3.dns.nl", Ttl::HOUR)
            .ns("nl", "sns-pb.isc.org", Ttl::HOUR)
            .a("ns1.dns.nl", "194.0.28.53", Ttl::HOUR)
            .a("ns2.dns.nl", "194.146.106.42", Ttl::HOUR)
            .a("ns3.dns.nl", "194.0.25.24", Ttl::HOUR)
            .build()
    };
    let names = ["ns1.dns.nl", "ns2.dns.nl", "ns3.dns.nl", "sns-pb.isc.org"];
    let mut logged = Vec::new();
    for (i, addr) in addrs::NL.iter().enumerate() {
        let mut server = AuthoritativeServer::new(names[i]).with_zone(nl_zone());
        if i == 0 || i == 2 {
            server.enable_logging();
        }
        let handle = rc(server);
        if i == 0 || i == 2 {
            logged.push(handle.clone());
        }
        let region = if i == 3 { Region::Na } else { Region::Eu };
        net.register(*addr, region, handle);
    }

    NlWorld {
        net,
        roots: root_hints(),
        logged: [logged[0].clone(), logged[1].clone()],
        ns_host_names: vec![name("ns1.dns.nl"), name("ns2.dns.nl"), name("ns3.dns.nl")],
    }
}

// ---------------------------------------------------------------------
// §4: the cachetest.net renumbering worlds
// ---------------------------------------------------------------------

/// A synthetic authoritative server used where the paper ran custom
/// zones on EC2 VMs: it answers AAAA queries for *any* name under its
/// apex with a marker address (the paper's per-probe
/// `PROBEID.sub.cachetest.net` names), serves its apex NS set, and —
/// when it hosts its own name server record — the server's A record.
///
/// The old and new VMs of §4's renumbering experiments are two
/// instances with different markers and addresses.
pub struct SyntheticZoneService {
    /// Apexes this server is authoritative for (wildcard AAAA under
    /// each).
    pub apexes: Vec<Name>,
    /// The NS host name advertised for every apex.
    pub ns_name: Name,
    /// NS record TTL.
    pub ns_ttl: Ttl,
    /// TTL of the NS host's A record.
    pub a_ttl: Ttl,
    /// The NS host's address as this server believes it (old VMs keep
    /// answering with the old address after a renumber).
    pub ns_addr: Ipv4Addr,
    /// TTL of wildcard AAAA answers (60 s in §4: "one tenth our probe
    /// interval").
    pub aaaa_ttl: Ttl,
    /// The marker address distinguishing this VM in responses.
    pub marker: Ipv6Addr,
    /// Whether this server serves the `ns_name` A record at all (false
    /// when the NS host's zone lives elsewhere).
    pub serves_ns_a: bool,
    /// Queries answered (authoritative-side accounting, Table 3).
    pub queries: u64,
}

impl SyntheticZoneService {
    fn soa(&self, apex: &Name) -> Record {
        Record::new(
            apex.clone(),
            Ttl::MINUTE,
            RData::Soa(SoaData {
                mname: self.ns_name.clone(),
                rname: name("hostmaster.invalid"),
                serial: 1,
                refresh: 7_200,
                retry: 3_600,
                expire: 1_209_600,
                minimum: 60,
            }),
        )
    }
}

impl DnsService for SyntheticZoneService {
    fn handle_query(&mut self, query: &Message, _client: ClientId, _now: SimTime) -> Message {
        self.queries += 1;
        let mut response = Message::response_to(query);
        let Some(q) = query.question() else {
            response.header.rcode = Rcode::FormErr;
            return response;
        };
        let Some(apex) = self.apexes.iter().find(|a| q.qname.is_subdomain_of(a)) else {
            response.header.rcode = Rcode::Refused;
            return response;
        };
        response.header.authoritative = true;
        match q.qtype {
            RecordType::NS if q.qname == *apex => {
                response.answers.push(Record::new(
                    apex.clone(),
                    self.ns_ttl,
                    RData::Ns(self.ns_name.clone()),
                ));
                if self.serves_ns_a {
                    response.additionals.push(Record::new(
                        self.ns_name.clone(),
                        self.a_ttl,
                        RData::A(self.ns_addr),
                    ));
                }
            }
            RecordType::A if self.serves_ns_a && q.qname == self.ns_name => {
                response.answers.push(Record::new(
                    q.qname.clone(),
                    self.a_ttl,
                    RData::A(self.ns_addr),
                ));
            }
            RecordType::AAAA => {
                response.answers.push(Record::new(
                    q.qname.clone(),
                    self.aaaa_ttl,
                    RData::Aaaa(self.marker),
                ));
            }
            _ => {
                let soa = self.soa(apex);
                response.authorities.push(soa);
            }
        }
        response
    }
}

/// The §4 experiment world, in either bailiwick configuration.
pub struct CachetestWorld {
    /// The network.
    pub net: Network,
    /// Root hints.
    pub roots: Vec<RootHint>,
    /// `ns1.cachetest.net` — the parent of the sub zone; renumbering
    /// rewrites its glue.
    pub parent: Rc<RefCell<AuthoritativeServer>>,
    /// The `.com` registry server (glue for the out-of-bailiwick NS
    /// host; `None` in the in-bailiwick configuration).
    pub com: Option<Rc<RefCell<AuthoritativeServer>>>,
    /// Marker returned by the original VM.
    pub old_marker: Ipv6Addr,
    /// Marker returned by the renumbered VM.
    pub new_marker: Ipv6Addr,
    /// True for the out-of-bailiwick configuration.
    pub out_of_bailiwick: bool,
}

/// The marker AAAA of the original server.
pub const OLD_MARKER: Ipv6Addr = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x0001);
/// The marker AAAA of the renumbered server.
pub const NEW_MARKER: Ipv6Addr = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x0002);

/// Builds the §4 world. With `out_of_bailiwick = false` the sub zone's
/// server is `ns1.sub.cachetest.net` (glue in the parent, NS 3600 s /
/// A 7200 s); with `true` it is `ns1.zurrundedu.com` (no glue in
/// cachetest.net; the address comes from `.com` / the host's own
/// zone, same TTLs). Call [`CachetestWorld::renumber`] at t = 9 min.
pub fn cachetest_world(out_of_bailiwick: bool) -> CachetestWorld {
    let mut net = Network::new(LatencyModel::internet());

    let root_zone = ZoneBuilder::new(".")
        .ns("net", "a.gtld-servers.net", Ttl::TWO_DAYS)
        .a("a.gtld-servers.net", "192.55.83.30", Ttl::TWO_DAYS)
        .ns("com", "a.gtld-servers.net", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::ROOT,
        Region::Eu,
        rc(AuthoritativeServer::new("k.root-servers.net").with_zone(root_zone)),
    );

    // .net delegates cachetest.net with the registry's default 2-day
    // TTLs (Figure 5).
    let net_zone = ZoneBuilder::new("net")
        .ns("net", "a.gtld-servers.net", Ttl::TWO_DAYS)
        .ns("cachetest.net", "ns1.cachetest.net", Ttl::TWO_DAYS)
        .a("ns1.cachetest.net", "18.184.0.10", Ttl::TWO_DAYS)
        .build();

    let ns_host = if out_of_bailiwick {
        "ns1.zurrundedu.com"
    } else {
        "ns1.sub.cachetest.net"
    };

    // cachetest.net: our zone, TTL 3600 s; it delegates
    // sub.cachetest.net to the experiment server. In bailiwick the
    // delegation carries glue (NS 3600 s, A 7200 s).
    let mut cachetest_builder = ZoneBuilder::new("cachetest.net")
        .ns("cachetest.net", "ns1.cachetest.net", Ttl::HOUR)
        .a("ns1.cachetest.net", "18.184.0.10", Ttl::HOUR)
        .ns("sub.cachetest.net", ns_host, Ttl::HOUR);
    if !out_of_bailiwick {
        cachetest_builder = cachetest_builder.a(ns_host, "18.184.0.20", Ttl::from_secs(7_200));
    }
    let parent =
        rc(AuthoritativeServer::new("ns1.cachetest.net").with_zone(cachetest_builder.build()));

    let com = if out_of_bailiwick {
        // .com delegates zurrundedu.com. The registry pins its own
        // 2-day TTLs on delegation data — which is why §4.4 finds
        // OpenDNS (parent-centric) serving the old address long after
        // the child's 7200 s A record rolled over. Renumbering still
        // propagates into this glue within seconds (.com dynamic
        // updates), but parent-centric caches hold the *old* copy for
        // up to two days.
        let com_zone = ZoneBuilder::new("com")
            .ns("com", "a.gtld-servers.net", Ttl::TWO_DAYS)
            .ns("zurrundedu.com", "ns1.zurrundedu.com", Ttl::TWO_DAYS)
            .a("ns1.zurrundedu.com", "18.184.0.20", Ttl::TWO_DAYS)
            .build();
        Some(rc(
            AuthoritativeServer::new("a.gtld-servers.net").with_zone(com_zone)
        ))
    } else {
        None
    };

    // The same gTLD infrastructure serves .net (and .com when needed).
    let mut gtld = AuthoritativeServer::new("a.gtld-servers.net").with_zone(net_zone);
    if let Some(com) = &com {
        // Serve .com from the same address; merge by registering the
        // zone into the same server instance instead.
        let com_zone = com.borrow().zone(&name("com")).cloned().expect("com zone");
        gtld.add_zone(com_zone);
    }
    let gtld = rc(gtld);
    net.register(addrs::NET, Region::Na, gtld.clone());
    net.register(addrs::CACHETEST, Region::Eu, parent.clone());

    // The experiment VMs. Both serve sub.cachetest.net (and, out of
    // bailiwick, the NS host's own zone zurrundedu.com).
    let mut apexes = vec![name("sub.cachetest.net")];
    if out_of_bailiwick {
        apexes.push(name("zurrundedu.com"));
    }
    let old = SyntheticZoneService {
        apexes: apexes.clone(),
        ns_name: name(ns_host),
        ns_ttl: Ttl::HOUR,
        a_ttl: Ttl::from_secs(7_200),
        ns_addr: v4(addrs::SUB_OLD),
        aaaa_ttl: Ttl::MINUTE,
        marker: OLD_MARKER,
        serves_ns_a: true,
        queries: 0,
    };
    let new = SyntheticZoneService {
        apexes,
        ns_name: name(ns_host),
        ns_ttl: Ttl::HOUR,
        a_ttl: Ttl::from_secs(7_200),
        ns_addr: v4(addrs::SUB_NEW),
        aaaa_ttl: Ttl::MINUTE,
        marker: NEW_MARKER,
        serves_ns_a: true,
        queries: 0,
    };
    net.register(addrs::SUB_OLD, Region::Eu, Rc::new(RefCell::new(old)));
    net.register(addrs::SUB_NEW, Region::Eu, Rc::new(RefCell::new(new)));

    CachetestWorld {
        net,
        roots: root_hints(),
        parent,
        com: com.map(|_| gtld),
        old_marker: OLD_MARKER,
        new_marker: NEW_MARKER,
        out_of_bailiwick,
    }
}

impl CachetestWorld {
    /// Renumbers the sub-zone's name server to the new VM: rewrites the
    /// glue in the parent zone (cachetest.net, or `.com` for the
    /// out-of-bailiwick host), exactly as §4 does nine minutes in.
    pub fn renumber(&mut self) {
        let new_addr = v4(addrs::SUB_NEW);
        if self.out_of_bailiwick {
            let gtld = self.com.as_ref().expect("out-of-bailiwick has .com");
            let mut gtld = gtld.borrow_mut();
            let zone = gtld.zone_mut(&name("com")).expect("com zone");
            zone.replace_address(&name("ns1.zurrundedu.com"), new_addr, Ttl::from_secs(7_200));
        } else {
            let mut parent = self.parent.borrow_mut();
            let zone = parent
                .zone_mut(&name("cachetest.net"))
                .expect("cachetest zone");
            zone.replace_address(
                &name("ns1.sub.cachetest.net"),
                new_addr,
                Ttl::from_secs(7_200),
            );
        }
    }
}

// ---------------------------------------------------------------------
// §6.2: the controlled-TTL world (Table 10 / Figure 11)
// ---------------------------------------------------------------------

/// Builds the controlled-experiment world: `mapache-de-madrid.co`
/// served from Frankfurt (EU) — or from a 6-region anycast set — with
/// a configurable AAAA TTL.
///
/// Returns the network, hints, and the test server's address (for
/// Table 10's authoritative-side counters).
pub fn controlled_world(aaaa_ttl: Ttl, anycast: bool) -> (Network, Vec<RootHint>, IpAddr) {
    let mut net = Network::new(LatencyModel::internet());

    let root_zone = ZoneBuilder::new(".")
        .ns("co", "ns.cctld.co", Ttl::TWO_DAYS)
        .a("ns.cctld.co", "156.154.100.1", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::ROOT,
        Region::Eu,
        rc(AuthoritativeServer::new("k.root-servers.net").with_zone(root_zone)),
    );

    let co_zone = ZoneBuilder::new("co")
        .ns("co", "ns.cctld.co", Ttl::DAY)
        .a("ns.cctld.co", "156.154.100.1", Ttl::DAY)
        .ns(
            "mapache-de-madrid.co",
            "ns1.mapache-de-madrid.co",
            Ttl::TWO_DAYS,
        )
        .a("ns1.mapache-de-madrid.co", "18.184.0.40", Ttl::TWO_DAYS)
        .build();
    net.register(
        addrs::CO,
        Region::Na,
        rc(AuthoritativeServer::new("ns.cctld.co").with_zone(co_zone)),
    );

    let service = SyntheticZoneService {
        apexes: vec![name("mapache-de-madrid.co")],
        ns_name: name("ns1.mapache-de-madrid.co"),
        ns_ttl: Ttl::TWO_DAYS,
        a_ttl: Ttl::TWO_DAYS,
        ns_addr: v4(addrs::MAPACHE),
        aaaa_ttl,
        marker: Ipv6Addr::new(0x2001, 0xdb8, 0xaa, 0, 0, 0, 0, 1),
        serves_ns_a: true,
        queries: 0,
    };
    let handle = Rc::new(RefCell::new(service));
    if anycast {
        // Route53-like: sites on every continent.
        net.register_anycast(addrs::MAPACHE, &Region::ALL, handle);
    } else {
        // A single EC2 Frankfurt origin.
        net.register(addrs::MAPACHE, Region::Eu, handle);
    }

    (net, root_hints(), addrs::MAPACHE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_core::ResolverPolicy;
    use dnsttl_netsim::SimRng;
    use dnsttl_resolver::RecursiveResolver;

    fn resolver(roots: Vec<RootHint>) -> RecursiveResolver {
        RecursiveResolver::new(
            "t",
            ResolverPolicy::default(),
            Region::Eu,
            1,
            roots,
            SimRng::seed_from(5),
        )
    }

    #[test]
    fn uy_world_resolves_with_child_ttls() {
        let (mut net, roots) = uy_world(Ttl::from_secs(300), Ttl::from_secs(120));
        let mut r = resolver(roots);
        let out = r.resolve(&name("uy"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 300);
        let out = r.resolve(&name("a.nic.uy"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 120);
    }

    #[test]
    fn google_co_world_returns_long_child_ns_ttl() {
        let (mut net, roots) = google_co_world();
        let mut r = resolver(roots);
        let out = r.resolve(&name("google.co"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 345_600);
    }

    #[test]
    fn nl_world_logs_at_two_servers_only() {
        let NlWorld {
            mut net,
            roots,
            logged,
            ..
        } = nl_world();
        let mut r = resolver(roots);
        for _ in 0..8 {
            // Repeated cold-ish resolutions rotate across the four NS.
            let out = r.resolve(&name("ns1.dns.nl"), RecordType::A, SimTime::ZERO, &mut net);
            assert_eq!(out.answer.header.rcode, Rcode::NoError);
            r.clear_cache();
        }
        let logged: usize = logged.iter().map(|s| s.borrow().log().len()).sum();
        assert!(logged > 0, "some queries must land at logged servers");
    }

    #[test]
    fn cachetest_in_bailiwick_switches_after_renumber() {
        let mut world = cachetest_world(false);
        let mut r = resolver(world.roots.clone());
        let q = name("p1.sub.cachetest.net");
        let out = r.resolve(&q, RecordType::AAAA, SimTime::ZERO, &mut world.net);
        assert_eq!(
            out.answer.answers[0].rdata,
            RData::Aaaa(OLD_MARKER),
            "before renumber: old VM answers"
        );
        world.renumber();
        // Within NS lifetime: cached glue still points at the old VM.
        let out = r.resolve(
            &q,
            RecordType::AAAA,
            SimTime::from_secs(1_200),
            &mut world.net,
        );
        assert_eq!(out.answer.answers[0].rdata, RData::Aaaa(OLD_MARKER));
        // After the NS TTL (3600 s): the re-fetched referral glue
        // carries the new address (§4.2's coupled lifetimes).
        let out = r.resolve(
            &q,
            RecordType::AAAA,
            SimTime::from_secs(3_700),
            &mut world.net,
        );
        assert_eq!(out.answer.answers[0].rdata, RData::Aaaa(NEW_MARKER));
    }

    #[test]
    fn cachetest_out_of_bailiwick_keeps_address_past_ns_expiry() {
        let mut world = cachetest_world(true);
        let mut r = resolver(world.roots.clone());
        let q = name("p1.sub.cachetest.net");
        let out = r.resolve(&q, RecordType::AAAA, SimTime::ZERO, &mut world.net);
        assert_eq!(out.answer.answers[0].rdata, RData::Aaaa(OLD_MARKER));
        world.renumber();
        // Past the NS TTL but inside the address's 7200 s: still old
        // (§4.3: out-of-bailiwick addresses live their full TTL).
        let out = r.resolve(
            &q,
            RecordType::AAAA,
            SimTime::from_secs(3_700),
            &mut world.net,
        );
        assert_eq!(out.answer.answers[0].rdata, RData::Aaaa(OLD_MARKER));
        // Past the address TTL: new server.
        let out = r.resolve(
            &q,
            RecordType::AAAA,
            SimTime::from_secs(7_300),
            &mut world.net,
        );
        assert_eq!(out.answer.answers[0].rdata, RData::Aaaa(NEW_MARKER));
    }

    #[test]
    fn controlled_world_counts_authoritative_queries() {
        let (mut net, roots, test_addr) = controlled_world(Ttl::MINUTE, false);
        let mut r = resolver(roots);
        let q = name("1.mapache-de-madrid.co");
        r.resolve(&q, RecordType::AAAA, SimTime::ZERO, &mut net);
        // TTL 60: a repeat at 120 s must miss and re-query.
        r.resolve(&q, RecordType::AAAA, SimTime::from_secs(120), &mut net);
        assert!(net.queries_received(test_addr) >= 2);
    }
}
