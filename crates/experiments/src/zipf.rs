//! The `zipf-population` scale campaign.
//!
//! The paper's §5–6 conclusions are claims about *aggregate cache
//! behaviour under realistic query populations*; *Modeling and
//! Predicting DNS Server Load* gives the calibration target — Zipf
//! name popularity with diurnal load curves. This module drives the
//! struct-of-arrays scale engine (`dnsttl_atlas::scale`) over that
//! workload: every probe binds to a cell-local resolver and a Zipf
//! rank at build, then fires on a diurnally-warped schedule for a full
//! simulated day.
//!
//! Outputs: rank-popularity and hourly load-curve CSVs, a metrics map
//! (hit rate, head concentration, peak/trough ratio, latency
//! quantiles), and the campaign's sim-time query/hit series absorbed
//! into the module telemetry — all byte-identical for every worker
//! count, which `tests/shard_equivalence.rs` pins across cell counts
//! {16, 64, 256}.

use crate::config::ExpConfig;
use crate::report::Report;
use dnsttl_analysis::CsvWriter;
use dnsttl_atlas::{
    run_zipf_campaign, ProgressSink, ZipfCampaignConfig, ZipfEngine, ZipfOutcome, ZipfRunOpts,
};
use dnsttl_netsim::SimDuration;
use std::sync::Arc;

/// Default cell count for the scale campaign: wide enough to keep an
/// 8-worker fan-out saturated with cells to steal (64 cells / 8
/// workers = 8 cells per worker of dynamic slack).
pub const DEFAULT_CELLS: usize = 64;

/// The campaign this module runs for a given config: `cfg.probes`
/// probes over one simulated day, so the diurnal curve completes a
/// full cycle.
pub fn campaign_for(cfg: &ExpConfig) -> ZipfCampaignConfig {
    let mut campaign = ZipfCampaignConfig::small(cfg.probes.max(1));
    campaign.cells = cfg.cells.unwrap_or(DEFAULT_CELLS);
    campaign.duration = SimDuration::from_hours(24);
    campaign
}

/// Runs the campaign and renders the report.
///
/// # Panics
/// Panics when the configured cell count is not a power of two — the
/// `repro` CLI validates `--cells` before calling in.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let campaign = campaign_for(cfg);
    let workers = cfg.shards.unwrap_or(1);
    let opts = ZipfRunOpts {
        workers,
        engine: ZipfEngine::Soa,
        telemetry: cfg.telemetry.is_enabled(),
        ts_bucket_ms: cfg.ts_bucket_ms,
        ts_span_cap: cfg.ts_span_cap,
        progress: cfg.progress_ms.map(|ms| {
            Arc::new(ProgressSink::new(
                "zipf-population",
                workers.max(1),
                campaign.cells,
                ms,
            ))
        }),
    };
    let mut outcome = run_zipf_campaign(&campaign, cfg.seed_for("zipf-population"), &opts);
    if cfg.telemetry.is_enabled() {
        cfg.telemetry
            .absorb_shards(std::mem::take(&mut outcome.parts));
    }
    vec![render(cfg, &campaign, &outcome)]
}

fn render(cfg: &ExpConfig, campaign: &ZipfCampaignConfig, outcome: &ZipfOutcome) -> Report {
    let mut report = Report::new(
        "zipf-population",
        "Zipf/diurnal population campaign at scale (§5–6 calibration)",
    );
    let rows = outcome.dataset.rows();
    let queries = rows.len() as u64;

    // Rank-popularity histogram: queries and hits per rank.
    let mut per_rank = vec![(0u64, 0u64); campaign.names];
    // Hourly load curve over the simulated day.
    let mut per_hour = vec![(0u64, 0u64); 24];
    let mut ok = 0u64;
    let mut rtts: Vec<u32> = Vec::with_capacity(rows.len());
    for r in rows {
        let cell = &mut per_rank[r.rank as usize];
        cell.0 += 1;
        cell.1 += u64::from(r.cache_hit);
        let hour = ((r.at_ms / 3_600_000) % 24) as usize;
        per_hour[hour].0 += 1;
        per_hour[hour].1 += u64::from(r.cache_hit);
        ok += u64::from(r.ok);
        rtts.push(r.rtt_ms);
    }
    rtts.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if rtts.is_empty() {
            return 0.0;
        }
        let idx = ((rtts.len() - 1) as f64 * q).round() as usize;
        rtts[idx] as f64
    };

    // Head concentration: share of traffic on the most popular 1% of
    // names (at least one name) — the signature of Zipf skew.
    let head = (campaign.names / 100).max(1);
    let head_queries: u64 = per_rank.iter().take(head).map(|(q, _)| q).sum();
    // Diurnal signature: busiest over quietest hour.
    let peak = per_hour.iter().map(|(q, _)| *q).max().unwrap_or(0);
    let trough = per_hour.iter().map(|(q, _)| *q).min().unwrap_or(0);

    report.push(format!(
        "{} probes over {} cells fired {} queries at {} names (Zipf s={:.2})",
        campaign.probes, campaign.cells, queries, campaign.names, campaign.exponent,
    ));
    report.push(format!(
        "cache hit rate {:.3}; top-{} names carry {:.1}% of queries; peak/trough load {:.2}x",
        outcome.dataset.hit_rate(),
        head,
        head_queries as f64 / queries.max(1) as f64 * 100.0,
        peak as f64 / trough.max(1) as f64,
    ));
    report.metric("probes", campaign.probes as f64);
    report.metric("cells", campaign.cells as f64);
    report.metric("names", campaign.names as f64);
    report.metric("queries", queries as f64);
    report.metric("ok_fraction", ok as f64 / queries.max(1) as f64);
    report.metric("hit_rate", outcome.dataset.hit_rate());
    report.metric(
        "head_share_top1pct",
        head_queries as f64 / queries.max(1) as f64,
    );
    report.metric("peak_trough_ratio", peak as f64 / trough.max(1) as f64);
    report.metric("latency_p50_ms", quantile(0.5));
    report.metric("latency_p99_ms", quantile(0.99));
    report.metric("resolvers", outcome.resolvers as f64);
    report.metric("cache_inserts", outcome.cache.inserts as f64);
    // The ledger conservation law, summed across every cell's caches.
    report.metric(
        "cache_live_entries",
        (outcome.cache.inserts - outcome.cache.removals()) as f64,
    );

    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("zipf_rank_popularity.csv"),
            &["rank", "queries", "cache_hits"],
        );
        for (rank, (q, h)) in per_rank.iter().enumerate() {
            if *q > 0 {
                w.row(&[format!("{rank}"), format!("{q}"), format!("{h}")]);
            }
        }
        let _ = w.finish();
        report.artifact("zipf_rank_popularity.csv");

        let mut w = CsvWriter::new(
            dir.join("zipf_load_curve.csv"),
            &["hour", "queries", "cache_hits"],
        );
        for (hour, (q, h)) in per_hour.iter().enumerate() {
            w.row(&[format!("{hour}"), format!("{q}"), format!("{h}")]);
        }
        let _ = w.finish();
        report.artifact("zipf_load_curve.csv");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> ExpConfig {
        ExpConfig {
            seed,
            probes: 320,
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn campaign_shows_zipf_head_and_diurnal_swing() {
        let reports = run(&quick_cfg(42));
        let r = &reports[0];
        // Skewed popularity: the top 1% of names carry far more than
        // 1% of the traffic.
        assert!(r.get("head_share_top1pct") > 0.05, "{}", r.render());
        // A 0.6-amplitude sinusoid must leave a visible peak/trough.
        assert!(r.get("peak_trough_ratio") > 1.5, "{}", r.render());
        // Shared caches at Zipf skew: hits dominate.
        assert!(r.get("hit_rate") > 0.5, "{}", r.render());
        assert_eq!(r.get("ok_fraction"), 1.0, "{}", r.render());
    }

    #[test]
    fn defaults_use_the_wide_cell_layout() {
        assert_eq!(campaign_for(&quick_cfg(1)).cells, DEFAULT_CELLS);
        let pinned = ExpConfig {
            cells: Some(16),
            ..quick_cfg(1)
        };
        assert_eq!(campaign_for(&pinned).cells, 16);
    }

    #[test]
    fn conservation_holds_across_cells() {
        let reports = run(&quick_cfg(7));
        let r = &reports[0];
        // inserts − removals == live entries ≥ 0 per cell, so the
        // summed accounting must stay non-negative and bounded by
        // inserts.
        let live = r.get("cache_live_entries");
        assert!(
            live >= 0.0 && live <= r.get("cache_inserts"),
            "{}",
            r.render()
        );
    }
}
