//! Experiment reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The output of one experiment run: printable text plus the named
/// quantities the test suite asserts on.
#[derive(Debug, Clone)]
pub struct Report {
    /// Artifact id, e.g. `"fig6"` or `"table10"`.
    pub id: String,
    /// Human title, e.g. `"Figure 6: in-bailiwick renumbering"`.
    pub title: String,
    /// Rendered tables / ASCII charts / commentary.
    pub text: String,
    /// Named scalar results (fractions, medians, counts).
    pub metrics: BTreeMap<String, f64>,
    /// File names (relative to the experiment out-dir) this run wrote
    /// beyond the standard CSV series — journalled into the run
    /// manifest so provenance covers them (e.g. a fault-plan script).
    pub artifacts: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            text: String::new(),
            metrics: BTreeMap::new(),
            artifacts: Vec::new(),
        }
    }

    /// Records a written artifact file (relative to the out-dir).
    pub fn artifact(&mut self, name: &str) -> &mut Report {
        self.artifacts.push(name.to_owned());
        self
    }

    /// Appends a line (or block) of text.
    pub fn push(&mut self, text: impl AsRef<str>) -> &mut Report {
        self.text.push_str(text.as_ref());
        if !text.as_ref().ends_with('\n') {
            self.text.push('\n');
        }
        self
    }

    /// Records a named metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Report {
        self.metrics.insert(key.to_owned(), value);
        self
    }

    /// A metric by name.
    ///
    /// # Panics
    /// Panics when absent — tests want loud failures.
    pub fn get(&self, key: &str) -> f64 {
        *self
            .metrics
            .get(key)
            .unwrap_or_else(|| panic!("metric {key:?} missing from {}", self.id))
    }

    /// Renders the full report, metrics included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bar = "=".repeat(72);
        let _ = writeln!(out, "{bar}\n{} — {}\n{bar}", self.id, self.title);
        out.push_str(&self.text);
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "--- metrics ---");
            for (k, v) in &self.metrics {
                let _ = writeln!(out, "{k} = {v:.4}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_adds_newlines_once() {
        let mut r = Report::new("x", "t");
        r.push("a").push("b\n");
        assert_eq!(r.text, "a\nb\n");
    }

    #[test]
    fn metrics_round_trip() {
        let mut r = Report::new("x", "t");
        r.metric("frac", 0.9);
        assert_eq!(r.get("frac"), 0.9);
        assert!(r.render().contains("frac = 0.9000"));
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_metric_panics() {
        Report::new("x", "t").get("nope");
    }
}
