//! `repro diff` — structured comparison of two run directories.
//!
//! The standing regression tool for determinism-sensitive changes:
//! given two `repro` run directories, compare their manifests (module
//! set, artifact lists, seeds), every Prometheus sample (counters,
//! gauges, histogram buckets, and sketch quantiles all surface there),
//! and every sim-time series bucket — with per-metric relative
//! tolerances — and produce a machine-readable JSON verdict
//! (`dnsttl-diff/1`). Zero drift exits 0; any drift exits nonzero and
//! names the drifted metrics.
//!
//! Two same-seed runs of any module must diff clean at the default
//! zero tolerance: every compared artifact is deterministic by
//! construction (DESIGN.md §10). Tolerances exist for *intentional*
//! changes — e.g. comparing across a cache-policy PR where counters
//! are expected to move a little.

use crate::flightdeck::{scan_str_array, scan_u64_field};
use crate::timeline::{parse_timeseries_jsonl, TsLine};
use dnsttl_telemetry::{ObjectWriter, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Tolerances for numeric comparisons: a relative default plus
/// per-metric overrides (`metric=pct` pairs, most specific wins by
/// exact series name).
#[derive(Debug, Clone, Default)]
pub struct DiffConfig {
    /// Relative tolerance applied to every numeric comparison without
    /// a per-metric override: `|a-b| / max(|a|,|b|)` must not exceed
    /// it. Zero (the default) means exact.
    pub default_tolerance: f64,
    /// Per-metric overrides, by exact series/sample name.
    pub per_metric: Vec<(String, f64)>,
}

impl DiffConfig {
    fn tolerance_for(&self, metric: &str) -> f64 {
        self.per_metric
            .iter()
            .find(|(name, _)| name == metric)
            .map(|(_, t)| *t)
            .unwrap_or(self.default_tolerance)
    }
}

/// One drifted comparison.
#[derive(Debug, Clone)]
pub struct Drift {
    /// What layer drifted: `module`, `artifact`, `metric`,
    /// `timeseries`.
    pub layer: &'static str,
    /// The drifted key (module, artifact path, sample name, or
    /// `module/series@t_ms field`).
    pub key: String,
    /// Value in run A (`None` = absent).
    pub a: Option<f64>,
    /// Value in run B (`None` = absent).
    pub b: Option<f64>,
    /// Relative delta that tripped, where applicable.
    pub delta: f64,
    /// The tolerance that was exceeded.
    pub tolerance: f64,
}

impl Drift {
    fn render(&self) -> String {
        match (self.a, self.b) {
            (Some(a), Some(b)) => format!(
                "{} {}: {} vs {} ({:+.2}% > {:.2}% tolerance)",
                self.layer,
                self.key,
                trim_num(a),
                trim_num(b),
                self.delta * 100.0 * if b >= a { 1.0 } else { -1.0 },
                self.tolerance * 100.0,
            ),
            (Some(_), None) => format!("{} {}: present only in run A", self.layer, self.key),
            (None, Some(_)) => format!("{} {}: present only in run B", self.layer, self.key),
            (None, None) => format!("{} {}: differs", self.layer, self.key),
        }
    }
}

/// The comparison outcome: drift list plus context notes.
#[derive(Debug, Default)]
pub struct DiffVerdict {
    /// Everything that exceeded its tolerance, in comparison order.
    pub drift: Vec<Drift>,
    /// Non-failing observations (seed mismatches, skipped files).
    pub notes: Vec<String>,
    /// How many individual comparisons ran.
    pub compared: usize,
}

impl DiffVerdict {
    /// Whether the two runs agree within tolerances.
    pub fn clean(&self) -> bool {
        self.drift.is_empty()
    }

    /// The machine-readable verdict: one `dnsttl-diff/1` JSON object.
    pub fn to_json(&self, run_a: &str, run_b: &str) -> String {
        let mut w = ObjectWriter::new();
        w.field("schema", &Value::Static("dnsttl-diff/1"));
        w.field("run_a", &Value::Str(run_a.to_string()));
        w.field("run_b", &Value::Str(run_b.to_string()));
        w.field("compared", &Value::U64(self.compared as u64));
        w.field("drift_count", &Value::U64(self.drift.len() as u64));
        w.field("clean", &Value::Bool(self.clean()));
        let mut drift_json = String::from("[");
        for (i, d) in self.drift.iter().enumerate() {
            if i > 0 {
                drift_json.push(',');
            }
            let mut dw = ObjectWriter::new();
            dw.field("layer", &Value::Static(d.layer));
            dw.field("key", &Value::Str(d.key.clone()));
            match d.a {
                Some(a) => dw.field("a", &Value::F64(a)),
                None => dw.field_raw("a", "null"),
            };
            match d.b {
                Some(b) => dw.field("b", &Value::F64(b)),
                None => dw.field_raw("b", "null"),
            };
            dw.field("delta", &Value::F64(d.delta));
            dw.field("tolerance", &Value::F64(d.tolerance));
            drift_json.push_str(&dw.finish());
        }
        drift_json.push(']');
        w.field_raw("drift", &drift_json);
        w.field_str_array("notes", &self.notes);
        w.finish()
    }

    /// Human-readable summary for stderr.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        if self.clean() {
            let _ = writeln!(out, "runs agree: {} comparisons, zero drift", self.compared);
        } else {
            let _ = writeln!(
                out,
                "{} of {} comparisons drifted:",
                self.drift.len(),
                self.compared
            );
            for d in &self.drift {
                let _ = writeln!(out, "  {}", d.render());
            }
        }
        out
    }
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn read_dir_files(dir: &Path, suffix: &str) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(stem) = name.strip_suffix(suffix) {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.insert(stem.to_string(), text);
        }
    }
    Ok(out)
}

/// Parses the sample lines of a Prometheus text exposition:
/// `name{labels} value` → `(full sample key, value)`. Comment and
/// blank lines are skipped.
fn prom_samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (key, value) = l.rsplit_once(' ')?;
            Some((key.to_string(), value.parse::<f64>().ok()?))
        })
        .collect()
}

/// The bare metric family of a prom sample key (`name{labels}` →
/// `name`), used for per-metric tolerance lookup.
fn family(sample_key: &str) -> &str {
    sample_key.split('{').next().unwrap_or(sample_key)
}

/// Compares two maps of numeric values, pushing drift per key.
fn compare_numeric(
    verdict: &mut DiffVerdict,
    cfg: &DiffConfig,
    layer: &'static str,
    scope: &str,
    a: &[(String, f64)],
    b: &[(String, f64)],
    tolerance_name: impl Fn(&str) -> String,
) {
    let bm: BTreeMap<&str, f64> = b.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let am: BTreeMap<&str, f64> = a.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (key, &va) in &am {
        verdict.compared += 1;
        let scoped = if scope.is_empty() {
            key.to_string()
        } else {
            format!("{scope}/{key}")
        };
        match bm.get(key) {
            None => verdict.drift.push(Drift {
                layer,
                key: scoped,
                a: Some(va),
                b: None,
                delta: f64::INFINITY,
                tolerance: 0.0,
            }),
            Some(&vb) => {
                let tol = cfg.tolerance_for(&tolerance_name(key));
                let delta = rel_delta(va, vb);
                if delta > tol {
                    verdict.drift.push(Drift {
                        layer,
                        key: scoped,
                        a: Some(va),
                        b: Some(vb),
                        delta,
                        tolerance: tol,
                    });
                }
            }
        }
    }
    for (key, &vb) in &bm {
        if !am.contains_key(key) {
            verdict.compared += 1;
            let scoped = if scope.is_empty() {
                key.to_string()
            } else {
                format!("{scope}/{key}")
            };
            verdict.drift.push(Drift {
                layer,
                key: scoped,
                a: None,
                b: Some(vb),
                delta: f64::INFINITY,
                tolerance: 0.0,
            });
        }
    }
}

fn rel_delta(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Flattens time-series lines to `(series@t_ms field, value)` samples.
fn ts_samples(lines: &[TsLine]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in lines {
        for (field, value) in &line.values {
            out.push((format!("{}@{} {field}", line.series, line.t_ms), *value));
        }
        out.push((
            format!("{}@{} width_ms", line.series, line.t_ms),
            line.width_ms as f64,
        ));
    }
    out
}

/// Compares run directories `a` and `b`. Errors only on unreadable
/// inputs — comparison mismatches land in the verdict, not in `Err`.
pub fn diff_dirs(a: &Path, b: &Path, cfg: &DiffConfig) -> Result<DiffVerdict, String> {
    let mut verdict = DiffVerdict::default();

    // 1. Module sets and manifests.
    let man_a = read_dir_files(a, "_manifest.json")?;
    let man_b = read_dir_files(b, "_manifest.json")?;
    if man_a.is_empty() && man_b.is_empty() {
        return Err(format!(
            "neither {} nor {} contains *_manifest.json — are these repro run dirs?",
            a.display(),
            b.display()
        ));
    }
    for module in man_a.keys().chain(man_b.keys()) {
        let (in_a, in_b) = (man_a.contains_key(module), man_b.contains_key(module));
        if in_a && in_b {
            continue;
        }
        verdict.compared += 1;
        verdict.drift.push(Drift {
            layer: "module",
            key: module.clone(),
            a: in_a.then_some(1.0),
            b: in_b.then_some(1.0),
            delta: f64::INFINITY,
            tolerance: 0.0,
        });
    }
    for (module, text_a) in &man_a {
        let Some(text_b) = man_b.get(module) else {
            continue;
        };
        verdict.compared += 1;
        let (seed_a, seed_b) = (
            scan_u64_field(text_a, "seed"),
            scan_u64_field(text_b, "seed"),
        );
        if seed_a != seed_b {
            // Different seeds are a legitimate comparison (that is how
            // you ask "what changed?"), so a mismatch is a note — the
            // per-metric drift below names what actually moved.
            verdict.notes.push(format!(
                "{module}: seeds differ (A {:?} vs B {:?})",
                seed_a, seed_b
            ));
        }
        let arts_a = scan_str_array(text_a, "artifacts");
        let arts_b = scan_str_array(text_b, "artifacts");
        for artifact in arts_a.iter().filter(|x| !arts_b.contains(x)) {
            verdict.compared += 1;
            verdict.drift.push(Drift {
                layer: "artifact",
                key: format!("{module}/{artifact}"),
                a: Some(1.0),
                b: None,
                delta: f64::INFINITY,
                tolerance: 0.0,
            });
        }
        for artifact in arts_b.iter().filter(|x| !arts_a.contains(x)) {
            verdict.compared += 1;
            verdict.drift.push(Drift {
                layer: "artifact",
                key: format!("{module}/{artifact}"),
                a: None,
                b: Some(1.0),
                delta: f64::INFINITY,
                tolerance: 0.0,
            });
        }
    }

    // 2. Every Prometheus sample: counters, gauges, histogram buckets,
    // and sketch quantiles all live here.
    let prom_a = read_dir_files(a, "_metrics.prom")?;
    let prom_b = read_dir_files(b, "_metrics.prom")?;
    for (module, text_a) in &prom_a {
        let Some(text_b) = prom_b.get(module) else {
            verdict.notes.push(format!("{module}: no metrics in run B"));
            continue;
        };
        compare_numeric(
            &mut verdict,
            cfg,
            "metric",
            module,
            &prom_samples(text_a),
            &prom_samples(text_b),
            |key| family(key).to_string(),
        );
    }

    // 3. Every time-series bucket.
    let ts_a = read_dir_files(a, "_timeseries.jsonl")?;
    let ts_b = read_dir_files(b, "_timeseries.jsonl")?;
    for (module, text_a) in &ts_a {
        let Some(text_b) = ts_b.get(module) else {
            verdict
                .notes
                .push(format!("{module}: no timeseries in run B"));
            continue;
        };
        let lines_a = parse_timeseries_jsonl(text_a).map_err(|e| format!("{module} (A): {e}"))?;
        let lines_b = parse_timeseries_jsonl(text_b).map_err(|e| format!("{module} (B): {e}"))?;
        compare_numeric(
            &mut verdict,
            cfg,
            "timeseries",
            module,
            &ts_samples(&lines_a),
            &ts_samples(&lines_b),
            |key| key.split('@').next().unwrap_or(key).to_string(),
        );
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_run(dir: &Path, seed: u64, hits: u64) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(
            dir.join("mod_manifest.json"),
            format!(
                "{{\"schema\":\"x\",\"module\":\"mod\",\"seed\":{seed},\"artifacts\":[\"mod_trace.jsonl\"]}}"
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("mod_metrics.prom"),
            format!("# TYPE resolver_cache_hits counter\nresolver_cache_hits {hits}\n"),
        )
        .unwrap();
        std::fs::write(
            dir.join("mod_timeseries.jsonl"),
            format!(
                "{{\"series\":\"resolver_cache_hits\",\"kind\":\"counter\",\"t_ms\":0,\"width_ms\":60000,\"value\":{hits}}}\n"
            ),
        )
        .unwrap();
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ttl-diff-{tag}-{}", std::process::id()))
    }

    #[test]
    fn identical_runs_diff_clean() {
        let (a, b) = (tmp("ca"), tmp("cb"));
        write_run(&a, 42, 10);
        write_run(&b, 42, 10);
        let v = diff_dirs(&a, &b, &DiffConfig::default()).unwrap();
        assert!(v.clean(), "{:?}", v.drift);
        assert!(v.compared >= 3);
        let json = v.to_json("a", "b");
        assert!(json.contains("\"schema\":\"dnsttl-diff/1\""));
        assert!(json.contains("\"clean\":true"));
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn drifted_counter_is_named_and_tolerances_apply() {
        let (a, b) = (tmp("da"), tmp("db"));
        write_run(&a, 42, 100);
        write_run(&b, 43, 110);
        let v = diff_dirs(&a, &b, &DiffConfig::default()).unwrap();
        assert!(!v.clean());
        assert!(v
            .drift
            .iter()
            .any(|d| d.layer == "metric" && d.key.contains("resolver_cache_hits")));
        assert!(v
            .drift
            .iter()
            .any(|d| d.layer == "timeseries" && d.key.contains("resolver_cache_hits@0")));
        assert!(v.notes.iter().any(|n| n.contains("seeds differ")));
        // A 10% drift passes under a 15% tolerance.
        let lax = DiffConfig {
            default_tolerance: 0.15,
            per_metric: Vec::new(),
        };
        let v = diff_dirs(&a, &b, &lax).unwrap();
        assert!(v.clean(), "{:?}", v.drift);
        // …and under a per-metric override scoped to just this family.
        let scoped = DiffConfig {
            default_tolerance: 0.0,
            per_metric: vec![("resolver_cache_hits".into(), 0.15)],
        };
        let v = diff_dirs(&a, &b, &scoped).unwrap();
        assert!(v.clean(), "{:?}", v.drift);
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn missing_artifact_is_drift() {
        let (a, b) = (tmp("ma"), tmp("mb"));
        write_run(&a, 42, 10);
        write_run(&b, 42, 10);
        std::fs::write(
            b.join("mod_manifest.json"),
            "{\"schema\":\"x\",\"module\":\"mod\",\"seed\":42,\"artifacts\":[]}",
        )
        .unwrap();
        let v = diff_dirs(&a, &b, &DiffConfig::default()).unwrap();
        assert!(v.drift.iter().any(|d| d.layer == "artifact"));
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}
