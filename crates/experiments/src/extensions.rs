//! Extension experiments: claims the paper makes in prose (or leans on
//! from companion work) that the full simulation can test directly.
//!
//! * [`offline_child`] — §4.4's `zurrundedu-offline` measurement: with
//!   the child's authoritative servers dead, parent-centric resolvers
//!   (OpenDNS-style) keep answering from delegation data while
//!   child-centric resolvers SERVFAIL.
//! * [`dnssec_centricity`] — §2's claim that DNSSEC validation forces
//!   child-centric behaviour, plus the flip side: validators turn
//!   cache-poisoning-style tampering into SERVFAIL where plain
//!   resolvers swallow it.
//! * [`ddos_resilience`] — §6.1 "longer caching is more robust to DDoS
//!   attacks on DNS": survival of client queries through an
//!   authoritative outage as a function of TTL, with and without
//!   serve-stale (the paper's \[36\] in miniature).
//! * [`hitrate_validation`] — the Jung-et-al analytic cache model
//!   (`dnsttl_core::hit_rate`) validated against the simulated cache,
//!   including the ~70% hit-rate band Moura et al. 2018 report for
//!   TTLs of 1800–86400 s.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::worlds::{self, CachetestWorld};
use dnsttl_analysis::{ascii_cdf_multi, Ecdf, Table};
use dnsttl_auth::{sign_zone, AuthoritativeServer, ZoneBuilder};
use dnsttl_core::{hit_rate, PolicyMix, ResolverPolicy};
use dnsttl_netsim::{EventQueue, LatencyModel, Network, Region, SimDuration, SimRng, SimTime};
use dnsttl_resolver::{RecursiveResolver, RootHint};
use dnsttl_wire::{Name, RData, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::rc::Rc;

fn n(s: &str) -> Name {
    Name::parse(s).expect("static experiment name")
}

/// Runs all extension experiments.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    vec![
        offline_child(cfg),
        dnssec_centricity(cfg),
        ddos_resilience(cfg),
        hitrate_validation(cfg),
        load_balancing_agility(cfg),
        negative_ttl_load(cfg),
        secondary_propagation(cfg),
    ]
}

// ---------------------------------------------------------------------
// ext-offline: §4.4's zurrundedu-offline
// ---------------------------------------------------------------------

/// Queries `NS zurrundedu.com` from a mixed resolver population while
/// the child's authoritative servers are offline. The paper: "VPs that
/// employ OpenDNS receive a valid answer, while most others either
/// time out or receive SERVFAIL".
pub fn offline_child(cfg: &ExpConfig) -> Report {
    let CachetestWorld { mut net, roots, .. } = worlds::cachetest_world(true);
    // Kill the child's servers; .com (the parent) stays up.
    net.set_online(worlds::addrs::SUB_OLD, false);
    net.set_online(worlds::addrs::SUB_NEW, false);

    let mut rng = SimRng::seed_from(cfg.seed_for("ext-offline"));
    let mix = PolicyMix::paper_population();
    let weights = mix.weights();
    let count = (cfg.probes / 4).max(50);

    let mut answered_parentish = 0usize;
    let mut total_parentish = 0usize;
    let mut answered_childish = 0usize;
    let mut total_childish = 0usize;
    for i in 0..count {
        let policy = mix.policy(rng.weighted_index(&weights)).clone();
        let parentish = policy.centricity == dnsttl_core::Centricity::ParentCentric;
        let mut r = RecursiveResolver::new(
            format!("off-{i}"),
            policy,
            Region::ALL[rng.weighted_index(&Region::atlas_weights())],
            i as u64,
            roots.clone(),
            rng.fork(i as u64),
        );
        let out = r.resolve(
            &n("zurrundedu.com"),
            RecordType::NS,
            SimTime::ZERO,
            &mut net,
        );
        let ok = out.answer.header.rcode == Rcode::NoError;
        if parentish {
            total_parentish += 1;
            answered_parentish += ok as usize;
        } else {
            total_childish += 1;
            answered_childish += ok as usize;
        }
    }

    let mut report = Report::new(
        "ext-offline",
        "Child authoritatives offline (§4.4's zurrundedu-offline)",
    );
    let frac_parent = answered_parentish as f64 / total_parentish.max(1) as f64;
    let frac_child = answered_childish as f64 / total_childish.max(1) as f64;
    let mut t = Table::new(vec!["resolver kind", "resolvers", "answered", "rate"]);
    t.row(vec![
        "parent-centric (OpenDNS-like)".into(),
        total_parentish.to_string(),
        answered_parentish.to_string(),
        format!("{:.1}%", frac_parent * 100.0),
    ]);
    t.row(vec![
        "child-centric".into(),
        total_childish.to_string(),
        answered_childish.to_string(),
        format!("{:.1}%", frac_child * 100.0),
    ]);
    report.push(t.render());
    report.push(
        "paper §4.4: with the child offline, OpenDNS VPs \"receive a valid answer, while\n\
         most others either time out or receive SERVFAIL\".",
    );
    report.metric("parent_centric_answer_rate", frac_parent);
    report.metric("child_centric_answer_rate", frac_child);
    report
}

// ---------------------------------------------------------------------
// ext-dnssec: validation forces child-centricity, and catches tampering
// ---------------------------------------------------------------------

fn signed_uy_world() -> (Network, Vec<RootHint>, Rc<RefCell<AuthoritativeServer>>) {
    let mut net = Network::new(LatencyModel::internet());
    let root = AuthoritativeServer::new("k.root-servers.net").with_zone(
        ZoneBuilder::new(".")
            .ns("uy", "a.nic.uy", Ttl::TWO_DAYS)
            .a("a.nic.uy", "200.40.241.1", Ttl::TWO_DAYS)
            .build(),
    );
    let mut uy_zone = ZoneBuilder::new("uy")
        .ns("uy", "a.nic.uy", Ttl::from_secs(300))
        .a("a.nic.uy", "200.40.241.1", Ttl::from_secs(120))
        .a("www.gub.uy", "200.40.30.1", Ttl::HOUR)
        .build();
    sign_zone(&mut uy_zone);
    let child = Rc::new(RefCell::new(
        AuthoritativeServer::new("a.nic.uy").with_zone(uy_zone),
    ));
    net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
    net.register(worlds::addrs::UY_A, Region::Sa, child.clone());
    (net, worlds::root_hints(), child)
}

/// Measures observed `NS .uy` TTLs for validating vs parent-centric
/// resolvers over a signed `.uy`, then injects an unsigned record
/// change (tampering) and measures who notices.
pub fn dnssec_centricity(cfg: &ExpConfig) -> Report {
    let (mut net, roots, child) = signed_uy_world();
    let mut rng = SimRng::seed_from(cfg.seed_for("ext-dnssec"));
    let count = (cfg.probes / 8).max(30);

    let run_group = |policy: ResolverPolicy, net: &mut Network, rng: &mut SimRng| -> Vec<u64> {
        (0..count)
            .map(|i| {
                let mut r = RecursiveResolver::new(
                    format!("g-{i}"),
                    policy.clone(),
                    Region::ALL[rng.weighted_index(&Region::atlas_weights())],
                    i as u64,
                    roots.clone(),
                    rng.fork(7_000 + i as u64),
                );
                let out = r.resolve(&n("uy"), RecordType::NS, SimTime::ZERO, net);
                out.answer
                    .answers
                    .iter()
                    .find(|rec| rec.record_type() == RecordType::NS)
                    .map(|rec| rec.ttl.as_secs() as u64)
                    .unwrap_or(0)
            })
            .collect()
    };

    let validating_ttls = run_group(ResolverPolicy::validating(), &mut net, &mut rng);
    let parentish_ttls = run_group(ResolverPolicy::parent_centric(), &mut net, &mut rng);

    let frac_validating_child = validating_ttls.iter().filter(|&&t| t <= 300).count() as f64
        / validating_ttls.len().max(1) as f64;
    let frac_parentish_parent = parentish_ttls.iter().filter(|&&t| t > 86_400).count() as f64
        / parentish_ttls.len().max(1) as f64;

    // Tamper: rewrite www.gub.uy's address without re-signing.
    {
        let mut child = child.borrow_mut();
        let zone = child.zone_mut(&n("uy")).expect("uy zone");
        zone.replace_address(&n("www.gub.uy"), "6.6.6.6".parse().unwrap(), Ttl::HOUR);
    }
    let mut probe = |policy: ResolverPolicy, tag: u64| -> (Rcode, Option<RData>) {
        let mut r = RecursiveResolver::new(
            "tamper-probe",
            policy,
            Region::Eu,
            tag,
            roots.clone(),
            rng.fork(tag),
        );
        let out = r.resolve(&n("www.gub.uy"), RecordType::A, SimTime::ZERO, &mut net);
        (
            out.answer.header.rcode,
            out.answer.answers.first().map(|rec| rec.rdata.clone()),
        )
    };
    let (validator_rcode, _) = probe(ResolverPolicy::validating(), 90_001);
    let (plain_rcode, plain_answer) = probe(ResolverPolicy::default(), 90_002);

    let mut report = Report::new(
        "ext-dnssec",
        "DNSSEC validation forces child-centricity and catches tampering",
    );
    let mut t = Table::new(vec!["resolver", "observed NS .uy TTL", "expected"]);
    t.row(vec![
        "validating".into(),
        format!("≤300 s for {:.0}%", frac_validating_child * 100.0),
        "100% child TTL (§2)".into(),
    ]);
    t.row(vec![
        "parent-centric, no validation".into(),
        format!(">1 day for {:.0}%", frac_parentish_parent * 100.0),
        "parent TTL".into(),
    ]);
    report.push(t.render());
    report.push(format!(
        "after tampering (record changed without re-signing): validator → {validator_rcode}, \
         plain resolver → {plain_rcode} ({})",
        plain_answer
            .map(|a| a.to_string())
            .unwrap_or_else(|| "no answer".into())
    ));
    report.metric("frac_validating_child", frac_validating_child);
    report.metric("frac_parentish_parent", frac_parentish_parent);
    report.metric(
        "validator_rejects_tampering",
        (validator_rcode == Rcode::ServFail) as u8 as f64,
    );
    report.metric(
        "plain_accepts_tampering",
        (plain_rcode == Rcode::NoError) as u8 as f64,
    );
    report
}

// ---------------------------------------------------------------------
// ext-ddos: §6.1 — caching rides out attacks longer than the TTL covers
// ---------------------------------------------------------------------

/// Simulates a one-hour total outage of a zone's authoritative servers
/// and measures the client-query success rate during the attack for
/// several TTLs, plus a serve-stale variant. The paper's \[36\]: "to be
/// most effective, TTLs must be longer than the attack".
pub fn ddos_resilience(cfg: &ExpConfig) -> Report {
    let attack_start = SimTime::from_secs(2_700);
    let attack = SimDuration::from_hours(1);
    let clients = (cfg.probes / 20).max(20);
    let query_gap = SimDuration::from_secs(120);

    let survival = |ttl: Ttl, policy: ResolverPolicy, seed_tag: &str| -> f64 {
        let mut net = Network::new(LatencyModel::internet());
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
                .build(),
        );
        let victim_addr: std::net::IpAddr = "192.0.2.53".parse().unwrap();
        let child = AuthoritativeServer::new("ns.example").with_zone(
            ZoneBuilder::new("example")
                .ns("example", "ns.example", ttl)
                .a("ns.example", "192.0.2.53", ttl)
                .a("www.example", "203.0.113.1", ttl)
                .build(),
        );
        net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
        net.register(victim_addr, Region::Eu, Rc::new(RefCell::new(child)));
        let roots = worlds::root_hints();

        let mut rng = SimRng::seed_from(cfg.seed_for(seed_tag) ^ ttl.as_secs() as u64);
        let mut resolvers: Vec<RecursiveResolver> = (0..clients)
            .map(|i| {
                RecursiveResolver::new(
                    format!("c{i}"),
                    policy.clone(),
                    Region::ALL[rng.weighted_index(&Region::atlas_weights())],
                    i as u64,
                    roots.clone(),
                    rng.fork(i as u64),
                )
            })
            .collect();

        struct Tick {
            client: usize,
        }
        let mut queue = EventQueue::new();
        for i in 0..clients {
            queue.schedule(
                SimTime::from_millis(rng.below(query_gap.as_millis())),
                Tick { client: i },
            );
        }
        let end = attack_start + attack + SimDuration::from_secs(600);
        let mut during_total = 0usize;
        let mut during_ok = 0usize;
        let mut attack_applied = false;
        while let Some((now, tick)) = queue.pop() {
            if now >= end {
                continue;
            }
            if !attack_applied && now >= attack_start {
                net.set_online(victim_addr, false);
                attack_applied = true;
            }
            if attack_applied && now >= attack_start + attack && !net.is_online(victim_addr) {
                net.set_online(victim_addr, true);
            }
            let out =
                resolvers[tick.client].resolve(&n("www.example"), RecordType::A, now, &mut net);
            let in_attack = now >= attack_start && now < attack_start + attack;
            if in_attack {
                during_total += 1;
                during_ok += (out.answer.header.rcode == Rcode::NoError) as usize;
            }
            queue.schedule(now + query_gap, tick);
        }
        during_ok as f64 / during_total.max(1) as f64
    };

    let ttls = [60u32, 600, 1_800, 7_200, 86_400];
    let mut rates = Vec::new();
    for ttl in ttls {
        rates.push(survival(
            Ttl::from_secs(ttl),
            ResolverPolicy::default(),
            "ext-ddos",
        ));
    }
    let stale_rate = survival(
        Ttl::from_secs(60),
        ResolverPolicy::serve_stale_like(),
        "ext-ddos-stale",
    );

    let mut report = Report::new(
        "ext-ddos",
        "Survival of client queries through a 1-hour authoritative outage",
    );
    let mut t = Table::new(vec!["TTL", "answered during attack", "note"]);
    for (ttl, rate) in ttls.iter().zip(&rates) {
        let note = if *ttl as u64 >= attack.as_secs() {
            "TTL ≥ attack: cache carries clients through"
        } else if *ttl as u64 >= attack.as_secs() / 4 {
            "TTL < attack: partial protection, caches drain mid-attack"
        } else {
            "TTL ≪ attack: caches drain almost immediately"
        };
        t.row(vec![
            format!("{ttl}s"),
            format!("{:.1}%", rate * 100.0),
            note.into(),
        ]);
        report.metric(&format!("survival_ttl_{ttl}"), *rate);
    }
    t.row(vec![
        "60s + serve-stale".into(),
        format!("{:.1}%", stale_rate * 100.0),
        "stale answers bridge the outage".into(),
    ]);
    report.push(t.render());
    report.push(
        "paper §6.1 / [36]: caching mutes DDoS when caches outlive the attack; serve-stale\n\
         (draft-ietf-dnsop-serve-stale) extends that protection to short TTLs.",
    );
    report.metric("survival_serve_stale_60", stale_rate);
    report
}

// ---------------------------------------------------------------------
// ext-hitrate: validating the analytic cache model
// ---------------------------------------------------------------------

/// Drives Poisson client arrivals into one resolver cache and compares
/// the measured hit rate with `dnsttl_core::hit_rate`'s prediction.
pub fn hitrate_validation(cfg: &ExpConfig) -> Report {
    let rate_qps = 1.0 / 60.0;
    let horizon = SimDuration::from_hours(24);
    let ttls = [30u32, 60, 300, 1_800, 3_600, 86_400];

    let mut report = Report::new(
        "ext-hitrate",
        "Simulated cache hit rate vs the Jung et al. analytic model",
    );
    let mut t = Table::new(vec!["TTL", "measured", "model λT/(1+λT)", "abs diff"]);
    let mut max_diff: f64 = 0.0;
    let mut measured_series = Vec::new();

    for ttl in ttls {
        let mut net = Network::new(LatencyModel::constant(20.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("ns.example").with_zone(
            ZoneBuilder::new("example")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("www.example", "203.0.113.1", Ttl::from_secs(ttl))
                .build(),
        );
        net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
        net.register(
            "192.0.2.53".parse().unwrap(),
            Region::Eu,
            Rc::new(RefCell::new(child)),
        );

        let mut rng = SimRng::seed_from(cfg.seed_for("ext-hitrate") ^ ttl as u64);
        let mut r = RecursiveResolver::new(
            "hitrate",
            ResolverPolicy::default(),
            Region::Eu,
            1,
            worlds::root_hints(),
            rng.fork(1),
        );
        let mut now = SimTime::ZERO;
        let (mut hits, mut total) = (0u64, 0u64);
        loop {
            // Poisson arrivals: exponential gaps with mean 1/λ.
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            let gap_ms = ((-u.ln()) / rate_qps * 1_000.0) as u64;
            now += SimDuration::from_millis(gap_ms.max(1));
            if now > SimTime::ZERO + horizon {
                break;
            }
            let out = r.resolve(&n("www.example"), RecordType::A, now, &mut net);
            total += 1;
            // Only count the leaf-record hit/miss (infrastructure
            // records have their own, much longer TTLs).
            hits += out.cache_hit as u64;
        }
        let measured = hits as f64 / total.max(1) as f64;
        let model = hit_rate(rate_qps, ttl as f64);
        let diff = (measured - model).abs();
        max_diff = max_diff.max(diff);
        measured_series.push(measured);
        t.row(vec![
            format!("{ttl}s"),
            format!("{measured:.3}"),
            format!("{model:.3}"),
            format!("{diff:.3}"),
        ]);
        report.metric(&format!("measured_ttl_{ttl}"), measured);
        report.metric(&format!("model_ttl_{ttl}"), model);
    }
    report.push(t.render());
    report.push(
        "paper §7 cites ~70% production hit rates for TTLs of 1800–86400 s (Moura et al.\n\
         2018); at one query per minute the model and the simulation both put 1800 s+\n\
         TTLs in or above that band.",
    );
    report.metric("max_abs_diff", max_diff);

    // A quick visual: measured hit rate vs TTL.
    let e = Ecdf::new(measured_series);
    report.push(ascii_cdf_multi(
        &[("measured hit rates (per TTL)", &e)],
        48,
        8,
    ));
    report
}

// ---------------------------------------------------------------------
// ext-loadbalance: §6.1 — short TTLs buy load-balancing agility
// ---------------------------------------------------------------------

/// A round-robin authoritative spreads traffic across backends only as
/// often as caches come back: with a long TTL each resolver freezes on
/// whichever backend it drew first. Measures backend load imbalance
/// (max/min share across 4 backends) as a function of TTL.
pub fn load_balancing_agility(cfg: &ExpConfig) -> Report {
    let clients = (cfg.probes / 20).max(24);
    let horizon = SimDuration::from_hours(2);
    let backends = ["203.0.113.1", "203.0.113.2", "203.0.113.3", "203.0.113.4"];

    let imbalance_for = |ttl: Ttl| -> (f64, Vec<u64>) {
        let mut net = Network::new(LatencyModel::constant(20.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
                .build(),
        );
        let mut zone = ZoneBuilder::new("example").ns("example", "ns.example", Ttl::DAY);
        for b in backends {
            zone = zone.a("www.example", b, ttl);
        }
        let mut lb = AuthoritativeServer::new("ns.example").with_zone(zone.build());
        lb.enable_rotation();
        net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
        net.register(
            "192.0.2.53".parse().unwrap(),
            Region::Eu,
            Rc::new(RefCell::new(lb)),
        );

        let mut rng = SimRng::seed_from(cfg.seed_for("ext-lb") ^ ttl.as_secs() as u64);
        let mut resolvers: Vec<RecursiveResolver> = (0..clients)
            .map(|i| {
                RecursiveResolver::new(
                    format!("lb-{i}"),
                    ResolverPolicy::default(),
                    Region::Eu,
                    i as u64,
                    worlds::root_hints(),
                    rng.fork(i as u64),
                )
            })
            .collect();

        struct Tick {
            client: usize,
        }
        // Heterogeneous demand (the realistic case): a few hot caches
        // carry most of the clients. With a long TTL a hot cache pins
        // *all* of its connections to whichever backend it drew;
        // rotation can only rebalance at refetch time.
        let gaps_ms: Vec<u64> = (0..clients)
            .map(|_| (rng.log_normal(3.6, 1.3) * 1_000.0).clamp(5_000.0, 600_000.0) as u64)
            .collect();
        let mut queue = EventQueue::new();
        for (i, gap) in gaps_ms.iter().enumerate() {
            queue.schedule(
                SimTime::from_millis(rng.below((*gap).max(1))),
                Tick { client: i },
            );
        }
        let mut counts = vec![0u64; backends.len()];
        let end = SimTime::ZERO + horizon;
        while let Some((now, tick)) = queue.pop() {
            if now >= end {
                continue;
            }
            let out =
                resolvers[tick.client].resolve(&n("www.example"), RecordType::A, now, &mut net);
            // The client uses the first answer — that backend gets the
            // connection.
            if let Some(first) = out.answer.answers.first() {
                if let dnsttl_wire::RData::A(a) = &first.rdata {
                    if let Some(idx) = backends.iter().position(|b| *b == a.to_string()) {
                        counts[idx] += 1;
                    }
                }
            }
            queue.schedule(now + SimDuration::from_millis(gaps_ms[tick.client]), tick);
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        (max / min.max(1.0), counts)
    };

    let mut report = Report::new(
        "ext-loadbalance",
        "DNS-based load balancing agility vs TTL (§6.1)",
    );
    let mut t = Table::new(vec!["TTL", "per-backend connections", "max/min imbalance"]);
    for ttl in [30u32, 300, 3_600] {
        let (imbalance, counts) = imbalance_for(Ttl::from_secs(ttl));
        t.row(vec![
            format!("{ttl}s"),
            format!("{counts:?}"),
            format!("{imbalance:.2}x"),
        ]);
        report.metric(&format!("imbalance_ttl_{ttl}"), imbalance);
    }
    report.push(t.render());
    report.push(
        "paper §6.1: \"each arriving DNS request provides an opportunity to adjust load,\n\
         so short TTLs may be desired\" — with long TTLs each cache freezes on one\n\
         backend and the rotation never rebalances.",
    );
    report
}

// ---------------------------------------------------------------------
// ext-negttl: RFC 2308 — the SOA minimum is the TTL of nonexistence
// ---------------------------------------------------------------------

/// Drives repeated queries for nonexistent names and measures
/// authoritative load as a function of the zone's negative-caching TTL
/// (SOA `minimum`) — the same caching arithmetic as positive TTLs, on
/// the NXDOMAIN path the paper's crawler exercises constantly.
pub fn negative_ttl_load(cfg: &ExpConfig) -> Report {
    let clients = (cfg.probes / 40).max(10);
    let horizon = SimDuration::from_hours(1);
    let query_gap = SimDuration::from_secs(30);

    let auth_load = |neg_ttl: Ttl| -> u64 {
        let mut net = Network::new(LatencyModel::constant(20.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
                .build(),
        );
        let mut zone = ZoneBuilder::new("example")
            .ns("example", "ns.example", Ttl::DAY)
            .negative_ttl(neg_ttl)
            .build();
        zone.set_negative_ttl(neg_ttl);
        let child = AuthoritativeServer::new("ns.example").with_zone(zone);
        let child_addr: std::net::IpAddr = "192.0.2.53".parse().unwrap();
        net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
        net.register(child_addr, Region::Eu, Rc::new(RefCell::new(child)));

        let mut rng = SimRng::seed_from(cfg.seed_for("ext-negttl") ^ neg_ttl.as_secs() as u64);
        let mut resolvers: Vec<RecursiveResolver> = (0..clients)
            .map(|i| {
                RecursiveResolver::new(
                    format!("neg-{i}"),
                    ResolverPolicy::default(),
                    Region::Eu,
                    i as u64,
                    worlds::root_hints(),
                    rng.fork(i as u64),
                )
            })
            .collect();
        struct Tick {
            client: usize,
        }
        let mut queue = EventQueue::new();
        for i in 0..clients {
            queue.schedule(
                SimTime::from_millis(rng.below(query_gap.as_millis())),
                Tick { client: i },
            );
        }
        let end = SimTime::ZERO + horizon;
        while let Some((now, tick)) = queue.pop() {
            if now >= end {
                continue;
            }
            // Each client hammers one typo name (think a misconfigured
            // app retrying).
            let qname = n(&format!("typo{}.example", tick.client));
            let out = resolvers[tick.client].resolve(&qname, RecordType::A, now, &mut net);
            debug_assert_eq!(out.answer.header.rcode, Rcode::NxDomain);
            queue.schedule(now + query_gap, tick);
        }
        net.queries_received(child_addr)
    };

    let mut report = Report::new(
        "ext-negttl",
        "Authoritative load from nonexistent names vs negative-caching TTL (RFC 2308)",
    );
    let mut t = Table::new(vec!["SOA minimum", "authoritative queries in 1h"]);
    let mut loads = Vec::new();
    for neg in [5u32, 60, 300, 3_600] {
        let load = auth_load(Ttl::from_secs(neg));
        loads.push(load);
        t.row(vec![format!("{neg}s"), load.to_string()]);
        report.metric(&format!("auth_queries_neg_{neg}"), load as f64);
    }
    report.push(t.render());
    report.push(
        "NXDOMAIN caching follows the same arithmetic as positive TTLs: raising the SOA\n\
         minimum from seconds to an hour collapses typo-traffic load on the authoritative.",
    );
    report.metric(
        "reduction_5s_to_3600s",
        1.0 - *loads.last().unwrap() as f64 / loads[0].max(1) as f64,
    );
    report
}

// ---------------------------------------------------------------------
// ext-secondary: change propagation through secondaries
// ---------------------------------------------------------------------

/// The §4 renumbering experiments changed single VMs instantly; real
/// zones propagate edits to secondaries at the SOA `refresh` cadence.
/// This experiment renumbers a service behind a primary + secondary
/// pair and measures when clients (with a short 60 s record TTL, so
/// caching is not the bottleneck) actually stop seeing the old
/// address, for several refresh intervals.
pub fn secondary_propagation(cfg: &ExpConfig) -> Report {
    use dnsttl_auth::SecondaryServer;

    let mut report = Report::new(
        "ext-secondary",
        "Renumbering propagation through secondary servers (SOA refresh)",
    );
    let mut t = Table::new(vec![
        "SOA refresh",
        "last old-address answer seen at",
        "bound (refresh)",
    ]);
    let clients = (cfg.probes / 60).max(8);

    for refresh_s in [300u64, 900, 3_600] {
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns1.example", Ttl::TWO_DAYS)
                .ns("example", "ns2.example", Ttl::TWO_DAYS)
                .a("ns1.example", "192.0.2.1", Ttl::TWO_DAYS)
                .a("ns2.example", "192.0.2.2", Ttl::TWO_DAYS)
                .build(),
        );
        net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
        let primary = Rc::new(RefCell::new(
            AuthoritativeServer::new("ns1.example").with_zone(
                ZoneBuilder::new("example")
                    .ns("example", "ns1.example", Ttl::MINUTE)
                    .ns("example", "ns2.example", Ttl::MINUTE)
                    .a("www.example", "203.0.113.1", Ttl::MINUTE)
                    .build(),
            ),
        ));
        let secondary = SecondaryServer::new(
            "ns2.example",
            primary.clone(),
            n("example"),
            dnsttl_netsim::SimDuration::from_secs(refresh_s),
        );
        net.register("192.0.2.1".parse().unwrap(), Region::Eu, primary.clone());
        net.register(
            "192.0.2.2".parse().unwrap(),
            Region::Eu,
            Rc::new(RefCell::new(secondary)),
        );

        let mut rng = SimRng::seed_from(cfg.seed_for("ext-secondary") ^ refresh_s);
        let mut resolvers: Vec<RecursiveResolver> = (0..clients)
            .map(|i| {
                RecursiveResolver::new(
                    format!("sp-{i}"),
                    ResolverPolicy::default(),
                    Region::Eu,
                    i as u64,
                    worlds::root_hints(),
                    rng.fork(i as u64),
                )
            })
            .collect();

        // Renumber at t = 120 s on the primary only.
        let renumber_at = 120u64;
        let mut last_old_seen = 0u64;
        for step in 0..((refresh_s + 600) / 30 + 10) {
            let now = SimTime::from_secs(step * 30);
            if now.as_secs() == renumber_at {
                primary
                    .borrow_mut()
                    .zone_mut(&n("example"))
                    .unwrap()
                    .replace_address(
                        &n("www.example"),
                        "198.51.100.9".parse().unwrap(),
                        Ttl::MINUTE,
                    );
            }
            for r in &mut resolvers {
                let out = r.resolve(&n("www.example"), RecordType::A, now, &mut net);
                if out
                    .answer
                    .answers
                    .iter()
                    .any(|rec| rec.rdata == dnsttl_wire::RData::A("203.0.113.1".parse().unwrap()))
                    && now.as_secs() > renumber_at
                {
                    last_old_seen = now.as_secs();
                }
            }
        }
        let bound = renumber_at + refresh_s + 60; // refresh + record TTL
        t.row(vec![
            format!("{refresh_s}s"),
            format!("t={last_old_seen}s"),
            format!("≤ t={bound}s"),
        ]);
        report.metric(
            &format!("last_old_refresh_{refresh_s}"),
            last_old_seen as f64,
        );
        report.metric(&format!("bound_refresh_{refresh_s}"), bound as f64);
    }
    report.push(t.render());
    report.push(
        "operators must budget TTL *plus* secondary refresh when planning a change: the
         old address keeps being served by not-yet-refreshed secondaries (RFC 1034 §4.3.5),
         a window the paper's single-VM renumbering did not exercise.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secondary_refresh_bounds_propagation() {
        let r = secondary_propagation(&ExpConfig::quick());
        for refresh in [300u64, 900, 3_600] {
            let last = r.get(&format!("last_old_refresh_{refresh}"));
            let bound = r.get(&format!("bound_refresh_{refresh}"));
            assert!(last > 0.0, "old address must be visible after the change");
            assert!(last <= bound, "refresh {refresh}: {last} > bound {bound}");
        }
        // Longer refresh ⇒ longer exposure of the old address.
        assert!(
            r.get("last_old_refresh_3600") > r.get("last_old_refresh_300"),
            "propagation grows with refresh"
        );
    }

    #[test]
    fn offline_child_separates_centricities() {
        let r = offline_child(&ExpConfig::quick());
        assert!(r.get("parent_centric_answer_rate") > 0.9);
        assert!(r.get("child_centric_answer_rate") < 0.2);
    }

    #[test]
    fn dnssec_validation_behaviour() {
        let r = dnssec_centricity(&ExpConfig::quick());
        assert_eq!(r.get("frac_validating_child"), 1.0);
        assert!(r.get("frac_parentish_parent") > 0.9);
        assert_eq!(r.get("validator_rejects_tampering"), 1.0);
        assert_eq!(r.get("plain_accepts_tampering"), 1.0);
    }

    #[test]
    fn ddos_survival_grows_with_ttl() {
        let r = ddos_resilience(&ExpConfig::quick());
        let s60 = r.get("survival_ttl_60");
        let s1800 = r.get("survival_ttl_1800");
        let s7200 = r.get("survival_ttl_7200");
        let s86400 = r.get("survival_ttl_86400");
        assert!(s60 < 0.3, "short TTL drains: {s60}");
        assert!(
            s1800 < s7200,
            "partial protection below full: {s1800} vs {s7200}"
        );
        assert!(s7200 > 0.5, "TTL ≥ attack survives: {s7200}");
        assert!(s86400 > 0.5);
        assert!(
            r.get("survival_serve_stale_60") > 0.9,
            "serve-stale bridges the outage: {}",
            r.get("survival_serve_stale_60")
        );
    }

    #[test]
    fn short_ttls_balance_load_better() {
        let r = load_balancing_agility(&ExpConfig::quick());
        let fast = r.get("imbalance_ttl_30");
        let slow = r.get("imbalance_ttl_3600");
        assert!(
            fast < slow,
            "30s imbalance {fast} must beat 3600s imbalance {slow}"
        );
        assert!(fast < 2.0, "short TTLs should spread load well: {fast}");
    }

    #[test]
    fn negative_ttl_cuts_typo_load() {
        let r = negative_ttl_load(&ExpConfig::quick());
        assert!(
            r.get("auth_queries_neg_3600") < r.get("auth_queries_neg_5"),
            "longer negative TTL must cut load"
        );
        assert!(r.get("reduction_5s_to_3600s") > 0.5);
    }

    #[test]
    fn analytic_model_matches_simulation() {
        let r = hitrate_validation(&ExpConfig::quick());
        assert!(
            r.get("max_abs_diff") < 0.06,
            "model deviates: {}",
            r.get("max_abs_diff")
        );
        // The Moura-2018 band: 1800 s at 1 q/min is well above 70%.
        assert!(r.get("measured_ttl_1800") > 0.9);
    }
}
