//! `repro timeline` — render a run directory's sim-time series.
//!
//! Reads every `<module>_timeseries.jsonl` a `repro` run wrote, emits
//! one combined `timeline.csv` (module, series, kind, t_ms, width_ms,
//! value) for external plotting, and prints ASCII sparklines to the
//! terminal — including two derived curves that retell the paper's
//! TTL-vs-load story over time:
//!
//! * **hit_rate** — `resolver_cache_hits / resolver_client_queries`
//!   per bucket (climbs as caches warm, collapses after flush faults);
//! * **upstream_qps** — `resolver_upstream_queries / bucket seconds`
//!   (the load the paper argues longer TTLs suppress).

use dnsttl_analysis::CsvWriter;
use dnsttl_telemetry::{flat_get, parse_flat_object};
use std::collections::BTreeMap;
use std::path::Path;

/// One parsed `*_timeseries.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct TsLine {
    /// Series (metric) name.
    pub series: String,
    /// `counter`, `gauge`, or `sketch`.
    pub kind: String,
    /// Bucket start, sim-time milliseconds.
    pub t_ms: u64,
    /// Bucket width, milliseconds.
    pub width_ms: u64,
    /// Every numeric payload field (`value`, `count`, `mean`, `p99`,
    /// …) in file order.
    pub values: Vec<(String, f64)>,
}

impl TsLine {
    /// The line's headline number: `value` for counters, `mean` for
    /// gauges, `p99` for sketches (falling back to `count`).
    pub fn headline(&self) -> f64 {
        for key in ["value", "mean", "p99", "count"] {
            if let Some((_, v)) = self.values.iter().find(|(k, _)| k == key) {
                return *v;
            }
        }
        0.0
    }

    fn get(&self, key: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Parses a `*_timeseries.jsonl` artifact.
pub fn parse_timeseries_jsonl(text: &str) -> Result<Vec<TsLine>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_object(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let need_str = |key: &str| {
            flat_get(&fields, key)
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| format!("line {}: missing {key}", i + 1))
        };
        let need_u64 = |key: &str| {
            flat_get(&fields, key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("line {}: missing {key}", i + 1))
        };
        let values = fields
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "series" | "kind" | "t_ms" | "width_ms"))
            .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
            .collect();
        out.push(TsLine {
            series: need_str("series")?,
            kind: need_str("kind")?,
            t_ms: need_u64("t_ms")?,
            width_ms: need_u64("width_ms")?,
            values,
        });
    }
    Ok(out)
}

/// Renders `values` as a unicode-block sparkline, scaled to the
/// series' own min..max (a flat series renders as all-low blocks).
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let range = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let step = (((v - min) / range) * 7.0).round() as usize;
            BLOCKS[step.min(7)]
        })
        .collect()
}

/// The derived curves for one module: dense `(t_ms, hit_rate,
/// upstream_qps)` rows wherever the constituent series have buckets.
pub fn derived_curves(lines: &[TsLine]) -> Vec<(u64, f64, f64)> {
    let pick = |name: &str| -> BTreeMap<u64, (u64, f64)> {
        lines
            .iter()
            .filter(|l| l.series == name && l.kind == "counter")
            .map(|l| (l.t_ms, (l.width_ms, l.get("value").unwrap_or(0.0))))
            .collect()
    };
    let queries = pick("resolver_client_queries");
    let hits = pick("resolver_cache_hits");
    let upstream = pick("resolver_upstream_queries");
    let mut t_all: Vec<u64> = queries.keys().chain(upstream.keys()).copied().collect();
    t_all.sort_unstable();
    t_all.dedup();
    t_all
        .into_iter()
        .map(|t| {
            let (qw, q) = queries.get(&t).copied().unwrap_or((0, 0.0));
            let h = hits.get(&t).map(|&(_, v)| v).unwrap_or(0.0);
            let (uw, u) = upstream.get(&t).copied().unwrap_or((qw, 0.0));
            let hit_rate = if q > 0.0 { h / q } else { 0.0 };
            let secs = (uw.max(1) as f64) / 1000.0;
            (t, hit_rate, u / secs)
        })
        .collect()
}

/// All `*_timeseries.jsonl` files under `dir`, as `(module, lines)`
/// in name order.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Vec<TsLine>)>, String> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with("_timeseries.jsonl"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *_timeseries.jsonl in {}", dir.display()));
    }
    let mut out = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let module = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_suffix("_timeseries.jsonl"))
            .unwrap_or("unknown")
            .to_string();
        let lines =
            parse_timeseries_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((module, lines));
    }
    Ok(out)
}

/// Renders the whole run directory: writes `timeline.csv` under `dir`
/// and returns the sparkline text for stdout.
pub fn render_dir(dir: &Path) -> Result<String, String> {
    let modules = load_dir(dir)?;
    let mut csv = CsvWriter::new(
        dir.join("timeline.csv"),
        &["module", "series", "kind", "t_ms", "width_ms", "value"],
    );
    let mut out = String::new();
    use std::fmt::Write as _;
    for (module, lines) in &modules {
        if lines.is_empty() {
            continue;
        }
        let _ = writeln!(out, "== {module} ==");
        // Group into per-series vectors, keeping file (export) order.
        let mut order: Vec<(String, String)> = Vec::new();
        let mut grouped: BTreeMap<(String, String), Vec<&TsLine>> = BTreeMap::new();
        for line in lines {
            let key = (line.series.clone(), line.kind.clone());
            if !grouped.contains_key(&key) {
                order.push(key.clone());
            }
            grouped.entry(key).or_default().push(line);
        }
        for key in &order {
            let series = &grouped[key];
            for line in series {
                csv.row(&[
                    module.clone(),
                    line.series.clone(),
                    line.kind.clone(),
                    line.t_ms.to_string(),
                    line.width_ms.to_string(),
                    format_value(line.headline()),
                ]);
            }
            let values: Vec<f64> = series.iter().map(|l| l.headline()).collect();
            let (lo, hi) = values
                .iter()
                .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            let _ = writeln!(
                out,
                "  {:<34} {} [{} .. {}]",
                format!("{} ({})", key.0, key.1),
                sparkline(&values),
                format_value(lo),
                format_value(hi),
            );
        }
        let curves = derived_curves(lines);
        if !curves.is_empty() {
            let hit: Vec<f64> = curves.iter().map(|&(_, h, _)| h).collect();
            let qps: Vec<f64> = curves.iter().map(|&(_, _, q)| q).collect();
            for (t, h, q) in &curves {
                csv.row(&[
                    module.clone(),
                    "hit_rate".into(),
                    "derived".into(),
                    t.to_string(),
                    String::new(),
                    format_value(*h),
                ]);
                csv.row(&[
                    module.clone(),
                    "upstream_qps".into(),
                    "derived".into(),
                    t.to_string(),
                    String::new(),
                    format_value(*q),
                ]);
            }
            let span = |v: &[f64]| {
                let (lo, hi) = v
                    .iter()
                    .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
                (format_value(lo), format_value(hi))
            };
            let (hlo, hhi) = span(&hit);
            let (qlo, qhi) = span(&qps);
            let _ = writeln!(
                out,
                "  {:<34} {} [{hlo} .. {hhi}]",
                "hit_rate (derived)",
                sparkline(&hit)
            );
            let _ = writeln!(
                out,
                "  {:<34} {} [{qlo} .. {qhi}]",
                "upstream_qps (derived)",
                sparkline(&qps)
            );
        }
    }
    csv.finish()
        .map_err(|e| format!("cannot write timeline.csv: {e}"))?;
    Ok(out)
}

/// Compact numeric formatting for CSV cells and sparkline ranges:
/// integers render bare, fractions keep three decimals.
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"series\":\"resolver_client_queries\",\"kind\":\"counter\",\"t_ms\":0,\"width_ms\":60000,\"value\":10}\n",
        "{\"series\":\"resolver_client_queries\",\"kind\":\"counter\",\"t_ms\":60000,\"width_ms\":60000,\"value\":20}\n",
        "{\"series\":\"resolver_cache_hits\",\"kind\":\"counter\",\"t_ms\":0,\"width_ms\":60000,\"value\":5}\n",
        "{\"series\":\"resolver_cache_hits\",\"kind\":\"counter\",\"t_ms\":60000,\"width_ms\":60000,\"value\":18}\n",
        "{\"series\":\"resolver_upstream_queries\",\"kind\":\"counter\",\"t_ms\":0,\"width_ms\":60000,\"value\":6}\n",
        "{\"series\":\"lat\",\"kind\":\"sketch\",\"t_ms\":0,\"width_ms\":60000,\"count\":3,\"sum\":90,\"p50\":30,\"p90\":40,\"p99\":41,\"p999\":41}\n",
    );

    #[test]
    fn parses_and_derives_curves() {
        let lines = parse_timeseries_jsonl(SAMPLE).unwrap();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0].headline(), 10.0);
        assert_eq!(lines[5].get("p99"), Some(41.0));
        let curves = derived_curves(&lines);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].0, 0);
        assert!((curves[0].1 - 0.5).abs() < 1e-9, "hit rate 5/10");
        assert!((curves[0].2 - 0.1).abs() < 1e-9, "6 upstream / 60 s");
        assert!((curves[1].1 - 0.9).abs() < 1e-9, "hit rate 18/20");
        assert_eq!(curves[1].2, 0.0, "no upstream bucket at 60 s");
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]).chars().count(), 3);
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn render_dir_writes_csv_and_sparklines() {
        let dir = std::env::temp_dir().join(format!("ttl-timeline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("mod_timeseries.jsonl"), SAMPLE).unwrap();
        let out = render_dir(&dir).unwrap();
        assert!(out.contains("== mod =="));
        assert!(out.contains("hit_rate (derived)"));
        let csv = std::fs::read_to_string(dir.join("timeline.csv")).unwrap();
        assert!(csv.starts_with("module,series,kind,t_ms,width_ms,value"));
        assert!(csv.contains("mod,hit_rate,derived,0,,0.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
