//! Experiment configuration.

use dnsttl_telemetry::{Telemetry, DEFAULT_TS_BUCKET_MS, DEFAULT_TS_SPAN_CAP};
use std::path::PathBuf;

/// Shared knobs for all experiments.
///
/// Defaults run every experiment in seconds-to-a-minute each at
/// reduced-but-faithful scale; [`ExpConfig::paper_scale`] matches the
/// paper's populations (minutes per experiment); [`ExpConfig::quick`]
/// is for unit/integration tests.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Master seed; every experiment forks its own stream from it.
    pub seed: u64,
    /// Atlas-style probe population (paper: ~9 000).
    pub probes: usize,
    /// Fraction of the full list sizes used by the §5 crawls.
    pub crawl_scale: f64,
    /// Resolver population for the passive `.nl` study (paper: 205k
    /// resolver IPs).
    pub nl_resolvers: usize,
    /// Observation window for the passive `.nl` study, hours
    /// (paper: 48).
    pub nl_hours: u64,
    /// Where to write CSV series; `None` disables file output.
    pub out_dir: Option<PathBuf>,
    /// Worker threads for the sharded engine. `None` keeps the legacy
    /// single-population engine; `Some(n)` partitions measurement
    /// campaigns into fixed logical shards executed on `n` workers —
    /// output is byte-identical for every `n` (see DESIGN.md §10).
    pub shards: Option<usize>,
    /// Logical cell count for sharded campaigns — a power of two
    /// (`--cells`). Unlike `shards` (a pure throughput knob), the cell
    /// count **is part of the experiment's identity**: it fixes the
    /// probe partition and the per-cell RNG streams, so outputs are
    /// only comparable at a fixed cell count. `None` keeps each
    /// module's default — the classic 16-cell layout for the paper
    /// experiments, 64 for the scale campaigns (enough cells to
    /// saturate an 8-worker fan-out with headroom). Both defaults are
    /// host-independent, so a default run is reproducible anywhere.
    pub cells: Option<usize>,
    /// Observability handle experiments attach to the worlds they
    /// build. Disabled by default; `repro` swaps in an enabled handle
    /// per module to collect metrics, traces, and manifests.
    pub telemetry: Telemetry,
    /// Initial sim-time series bucket width (milliseconds). Every
    /// telemetry handle a run creates — the per-module handle and the
    /// per-cell shard handles — is configured with this width so that
    /// shard merges see nesting bucket boundaries.
    pub ts_bucket_ms: u64,
    /// Span cap for sim-time series: a series coarsens (bucket width
    /// ×2) whenever its dense bucket span would exceed this.
    pub ts_span_cap: usize,
    /// Heartbeat interval for live campaign progress, in wall-clock
    /// milliseconds. `None` (default) is silent; `Some(ms)` prints a
    /// progress line to stderr as sharded campaigns complete cells.
    /// Never enters any artifact, so determinism is untouched.
    pub progress_ms: Option<u64>,
}

impl Default for ExpConfig {
    fn default() -> ExpConfig {
        ExpConfig {
            seed: 42,
            probes: 3_000,
            crawl_scale: 0.02,
            nl_resolvers: 6_000,
            nl_hours: 48,
            out_dir: Some(PathBuf::from("target/experiments")),
            shards: None,
            cells: None,
            telemetry: Telemetry::disabled(),
            ts_bucket_ms: DEFAULT_TS_BUCKET_MS,
            ts_span_cap: DEFAULT_TS_SPAN_CAP,
            progress_ms: None,
        }
    }
}

impl ExpConfig {
    /// Paper-scale populations (slow; use `--release`).
    pub fn paper_scale() -> ExpConfig {
        ExpConfig {
            probes: 9_000,
            crawl_scale: 1.0,
            nl_resolvers: 205_000,
            ..ExpConfig::default()
        }
    }

    /// Tiny populations for tests.
    pub fn quick() -> ExpConfig {
        ExpConfig {
            probes: 400,
            crawl_scale: 0.005,
            nl_resolvers: 800,
            nl_hours: 24,
            out_dir: None,
            ..ExpConfig::default()
        }
    }

    /// The seed for a named sub-experiment, derived deterministically.
    pub fn seed_for(&self, tag: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in tag.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_tag_but_are_stable() {
        let cfg = ExpConfig::default();
        assert_ne!(cfg.seed_for("fig1"), cfg.seed_for("fig2"));
        assert_eq!(cfg.seed_for("fig1"), cfg.seed_for("fig1"));
        let other = ExpConfig {
            seed: 43,
            ..ExpConfig::default()
        };
        assert_ne!(cfg.seed_for("fig1"), other.seed_for("fig1"));
    }

    #[test]
    fn default_cells_defer_to_module_defaults() {
        assert_eq!(ExpConfig::default().cells, None);
        assert_eq!(ExpConfig::quick().cells, None);
    }

    #[test]
    fn quick_is_smaller_than_default() {
        let q = ExpConfig::quick();
        let d = ExpConfig::default();
        assert!(q.probes < d.probes);
        assert!(q.out_dir.is_none());
    }
}
