//! `resilience` — user-visible failure rate vs TTL under scripted
//! faults (paper §6.2, the dnsttl-chaos tentpole).
//!
//! The paper's closing argument is that long TTLs are a resilience
//! mechanism: during the 2016 Dyn DDoS, "users of Twitter could still
//! reach the site if its DNS records were cached". The
//! [`ddos_resilience`](crate::extensions::ddos_resilience) extension
//! approximates that with a manual online/offline toggle; this module
//! reproduces it as a measurable curve on the scripted
//! [`FaultPlan`](dnsttl_netsim::FaultPlan) machinery instead, so the
//! exact outage script is plain data — journalled into the run
//! manifest, replayable byte-for-byte from the same seed, and shared
//! with `sdig --fault-plan`.
//!
//! Design: a population of clients each re-resolves one cached name
//! every two minutes. A one-hour hard outage of the only authoritative
//! server is scripted 45 minutes in. The failure rate (answers with
//! rcode ≠ NoError during the outage) is measured along two axes:
//!
//! * **TTL** — 60 s / 3600 s / 86400 s. A 60 s TTL drains caches almost
//!   immediately, a 1-day TTL carries every client through untouched.
//! * **serve-stale** — off (RFC-faithful expiry) vs on (RFC 8767 with
//!   the hardened-profile failure caching and server backoff). With
//!   stale answers allowed, even a 60 s TTL bridges the outage.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::worlds;
use dnsttl_analysis::{CsvWriter, Table};
use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{
    EventQueue, FaultPlan, LatencyModel, Network, Region, SimDuration, SimRng, SimTime,
};
use dnsttl_resolver::RecursiveResolver;
use dnsttl_wire::{Name, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::rc::Rc;

fn n(s: &str) -> Name {
    Name::parse(s).expect("static experiment name")
}

/// When the scripted outage starts (45 simulated minutes in — long
/// enough for every client to have the name cached).
const OUTAGE_START_S: u64 = 2_700;
/// How long the authoritative server stays dark.
const OUTAGE_SECS: u64 = 3_600;
/// How often each client re-resolves the name.
const QUERY_GAP_S: u64 = 120;

/// The scripted fault plan every cell of the matrix runs under: a hard
/// one-hour outage of the sole authoritative server. Public so tests
/// and `repro` can journal the identical script.
pub fn outage_plan() -> FaultPlan {
    let victim: std::net::IpAddr = "192.0.2.53".parse().expect("static addr");
    FaultPlan::new().outage(
        victim,
        SimTime::from_secs(OUTAGE_START_S),
        SimTime::from_secs(OUTAGE_START_S + OUTAGE_SECS),
    )
}

/// One cell of the matrix: failure rate during the outage for a client
/// population resolving a name published at `ttl`, under `policy`.
struct CellResult {
    queries: u64,
    failures: u64,
}

impl CellResult {
    fn rate(&self) -> f64 {
        self.failures as f64 / self.queries.max(1) as f64
    }
}

fn run_cell(cfg: &ExpConfig, ttl: Ttl, policy: ResolverPolicy, seed_tag: &str) -> CellResult {
    let clients = (cfg.probes / 20).max(20);
    let seed = cfg.seed_for(seed_tag) ^ ttl.as_secs() as u64;
    if let Some(workers) = cfg.shards {
        // Sharded: split the client population into `cfg.cells`
        // logical cells, each with its own network + outage script +
        // RNG stream, and sum the outage accounting. The fault plan is
        // plain data, so every cell evaluates an identical script.
        let cell_count = cfg.cells.unwrap_or(dnsttl_atlas::LOGICAL_SHARDS).max(1);
        let sizes = dnsttl_atlas::partition(clients, cell_count);
        let bases = dnsttl_atlas::partition_bases(&sizes);
        let enabled = cfg.telemetry.is_enabled();
        let (ts_bucket_ms, ts_span_cap) = (cfg.ts_bucket_ms, cfg.ts_span_cap);
        let progress = cfg.progress_ms.map(|ms| {
            std::sync::Arc::new(dnsttl_atlas::ProgressSink::new(
                seed_tag,
                workers.max(1),
                cell_count,
                ms,
            ))
        });
        let cells = dnsttl_atlas::run_cells(workers, cell_count, |cell| {
            let telemetry = if enabled {
                dnsttl_telemetry::Telemetry::new()
            } else {
                dnsttl_telemetry::Telemetry::disabled()
            };
            telemetry.configure_timeseries(ts_bucket_ms, ts_span_cap);
            let result = simulate_clients(
                &telemetry,
                dnsttl_netsim::shard_seed(seed, cell as u64),
                sizes[cell],
                bases[cell],
                ttl,
                &policy,
            );
            if let Some(sink) = &progress {
                // The scripted outage ends the cell's clock; queries
                // are the cell's event count.
                sink.cell_finished(
                    SimTime::from_secs(OUTAGE_START_S + OUTAGE_SECS).as_millis(),
                    result.queries,
                );
            }
            (result, telemetry.take_parts())
        });
        let mut total = CellResult {
            queries: 0,
            failures: 0,
        };
        let mut parts = Vec::with_capacity(cells.len());
        for (cell, part) in cells {
            total.queries += cell.queries;
            total.failures += cell.failures;
            parts.push(part);
        }
        if enabled {
            cfg.telemetry.absorb_shards(parts);
        }
        return total;
    }
    simulate_clients(&cfg.telemetry, seed, clients, 0, ttl, &policy)
}

/// Simulates `clients` clients (globally numbered from `client_base`)
/// re-resolving the test name through the scripted outage. Both the
/// legacy path (`client_base` 0, all clients) and every sharded cell go
/// through this one function, so the two engines share the simulation
/// code verbatim.
fn simulate_clients(
    telemetry: &dnsttl_telemetry::Telemetry,
    seed: u64,
    clients: usize,
    client_base: usize,
    ttl: Ttl,
    policy: &ResolverPolicy,
) -> CellResult {
    // Constant latency, no background loss: the only failure mode is
    // the scripted outage, so the curve isolates the TTL effect.
    let mut net = Network::new(LatencyModel::constant(5.0)).with_faults(outage_plan());
    net.set_telemetry(telemetry.clone());
    let root = AuthoritativeServer::new("root").with_zone(
        ZoneBuilder::new(".")
            .ns("example", "ns.example", Ttl::TWO_DAYS)
            .a("ns.example", "192.0.2.53", Ttl::TWO_DAYS)
            .build(),
    );
    let victim_addr: std::net::IpAddr = "192.0.2.53".parse().expect("static addr");
    let child = AuthoritativeServer::new("ns.example").with_zone(
        ZoneBuilder::new("example")
            .ns("example", "ns.example", ttl)
            .a("ns.example", "192.0.2.53", ttl)
            .a("www.example", "203.0.113.1", ttl)
            .build(),
    );
    net.register(worlds::addrs::ROOT, Region::Eu, Rc::new(RefCell::new(root)));
    net.register(victim_addr, Region::Eu, Rc::new(RefCell::new(child)));
    let roots = worlds::root_hints();

    let mut rng = SimRng::seed_from(seed);
    let mut resolvers: Vec<RecursiveResolver> = (0..clients)
        .map(|i| {
            let global = client_base + i;
            RecursiveResolver::new(
                format!("c{global}"),
                policy.clone(),
                Region::ALL[rng.weighted_index(&Region::atlas_weights())],
                global as u64,
                roots.clone(),
                rng.fork(global as u64),
            )
        })
        .collect();

    struct Tick {
        client: usize,
    }
    let query_gap = SimDuration::from_secs(QUERY_GAP_S);
    let outage_start = SimTime::from_secs(OUTAGE_START_S);
    let outage_end = SimTime::from_secs(OUTAGE_START_S + OUTAGE_SECS);
    let mut queue = EventQueue::new();
    for i in 0..clients {
        queue.schedule(
            SimTime::from_millis(rng.below(query_gap.as_millis())),
            Tick { client: i },
        );
    }
    let end = outage_end + SimDuration::from_secs(600);
    let mut cell = CellResult {
        queries: 0,
        failures: 0,
    };
    // Apply scheduled resolver cache flushes (none in this plan, but
    // the polling contract is the same one chaos tests rely on).
    let mut flushed_upto = SimTime::ZERO;
    while let Some((now, tick)) = queue.pop() {
        if now >= end {
            continue;
        }
        if net.fault_plan().flushes_between(flushed_upto, now) > 0 {
            for r in &mut resolvers {
                r.apply_flush(now);
            }
        }
        flushed_upto = now;
        let out = resolvers[tick.client].resolve(&n("www.example"), RecordType::A, now, &mut net);
        if now >= outage_start && now < outage_end {
            cell.queries += 1;
            cell.failures += (out.answer.header.rcode != Rcode::NoError) as u64;
        }
        queue.schedule(now + query_gap, tick);
    }
    cell
}

/// Runs the failure-rate-vs-TTL matrix and renders the report.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let ttls = [60u32, 3_600, 86_400];
    let plan = outage_plan();

    let mut report = Report::new(
        "resilience",
        "User-visible failure rate vs TTL under a scripted 1 h authoritative outage (§6.2)",
    );
    report.push(format!(
        "fault plan: {} — outage of 192.0.2.53 over [{}s, {}s)",
        plan.summary(),
        OUTAGE_START_S,
        OUTAGE_START_S + OUTAGE_SECS
    ));

    let mut table = Table::new(vec![
        "TTL",
        "serve-stale",
        "queries in outage",
        "failures",
        "failure rate",
    ]);
    let mut rows: Vec<(u32, bool, CellResult)> = Vec::new();
    for ttl in ttls {
        for stale in [false, true] {
            let policy = if stale {
                ResolverPolicy::hardened()
            } else {
                ResolverPolicy::default()
            };
            let tag = if stale {
                "resilience-stale"
            } else {
                "resilience"
            };
            let cell = run_cell(cfg, Ttl::from_secs(ttl), policy, tag);
            let stale_label = if stale { "on" } else { "off" };
            table.row(vec![
                format!("{ttl}s"),
                stale_label.into(),
                cell.queries.to_string(),
                cell.failures.to_string(),
                format!("{:.3}", cell.rate()),
            ]);
            report.metric(
                &format!("failrate_ttl_{ttl}_stale_{stale_label}"),
                cell.rate(),
            );
            rows.push((ttl, stale, cell));
        }
    }
    report.push(table.render());
    report.push(
        "paper §6.2: longer TTLs keep users online through authoritative outages\n\
         (the Dyn-attack argument); RFC 8767 serve-stale extends that protection\n\
         to short TTLs by bridging the outage with stale answers.",
    );

    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("resilience_failure_rate.csv"),
            &[
                "ttl_s",
                "serve_stale",
                "queries",
                "failures",
                "failure_rate",
            ],
        );
        for (ttl, stale, cell) in &rows {
            w.row(&[
                ttl.to_string(),
                if *stale { "on" } else { "off" }.into(),
                cell.queries.to_string(),
                cell.failures.to_string(),
                format!("{:.6}", cell.rate()),
            ]);
        }
        let _ = w.finish();
        // Journal the exact outage script next to the CSVs; the run
        // manifest lists it as an artifact.
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join("resilience_fault_plan.txt"), plan.to_text());
        report.artifact("resilience_failure_rate.csv");
        report.artifact("resilience_fault_plan.txt");
    }

    vec![report]
}
