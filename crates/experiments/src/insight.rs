//! Cache forensics: rebuilding Tables 3–4's effective-lifetime claims
//! from the provenance ledger alone.
//!
//! The §4 renumbering experiments observed, from *outside* the
//! resolver, that an in-bailiwick NS host switches address when the NS
//! record expires (≈3600 s — the address record's lifetime is coupled
//! to the NS TTL) while an out-of-bailiwick host survives for its
//! address record's full TTL (≈7200 s), and a parent-centric resolver
//! holds the registry's 2-day glue copy (§4.4's OpenDNS). This module
//! re-derives all three numbers from *inside* the resolver: the cache's
//! provenance ledger records when each record entered, from which
//! server, at which credibility, and — crucially — how long it resided
//! before being overwritten or expiring. The attribution tables printed
//! here are what `repro cache-report` shows.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::worlds::{self, CachetestWorld, NEW_MARKER};
use dnsttl_analysis::{Ecdf, Table};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{Region, SimRng, SimTime};
use dnsttl_resolver::{CacheSnapshot, RecursiveResolver};
use dnsttl_wire::{Name, RData, RecordType};

/// When the experiment renumbers the sub zone (§4: nine minutes in).
const RENUMBER_AT_S: u64 = 540;
/// Probe cadence (§4: ten minutes).
const PROBE_EVERY_S: u64 = 600;

/// One scenario's outcome.
struct ScenarioRun {
    label: &'static str,
    ns_host: &'static str,
    /// First probe time (s) that returned the renumbered marker.
    switch_s: Option<u64>,
    /// Longest residency (s) of the NS host's A record before a
    /// removal — the record's *effective* lifetime in cache.
    ns_a_residency_s: Option<u64>,
    /// The A record's original (published) TTL as the ledger saw it.
    ns_a_original_ttl_s: Option<u64>,
    /// Cache hit rate over the probe series.
    hit_rate: f64,
    /// Attribution rows: (rtype, origin, bailiwick, inserts, serves,
    /// serves/insert, median residency s).
    cells: Vec<(String, String, String, u64, u64, f64, f64)>,
    /// Snapshot just before the renumber propagated.
    snap_before: CacheSnapshot,
    /// Snapshot after the switch (or at the horizon).
    snap_after: CacheSnapshot,
}

fn run_scenario(
    cfg: &ExpConfig,
    label: &'static str,
    out_of_bailiwick: bool,
    policy: ResolverPolicy,
    horizon_s: u64,
) -> ScenarioRun {
    let mut world: CachetestWorld = worlds::cachetest_world(out_of_bailiwick);

    let mut resolver = RecursiveResolver::new(
        label,
        policy,
        Region::Eu,
        1,
        world.roots.clone(),
        SimRng::seed_from(cfg.seed_for(label)),
    );
    resolver.set_telemetry(cfg.telemetry.clone());
    resolver.enable_cache_ledger();

    let ns_host = if out_of_bailiwick {
        "ns1.zurrundedu.com"
    } else {
        "ns1.sub.cachetest.net"
    };
    let qname = Name::parse("p1.sub.cachetest.net").expect("static");

    let mut switch_s = None;
    let mut renumbered = false;
    let mut snap_before = None;
    let mut t = 0u64;
    while t <= horizon_s {
        if !renumbered && t > RENUMBER_AT_S {
            world.renumber();
            snap_before = Some(resolver.cache().snapshot(SimTime::from_secs(t)));
            renumbered = true;
        }
        let out = resolver.resolve(
            &qname,
            RecordType::AAAA,
            SimTime::from_secs(t),
            &mut world.net,
        );
        let new_vm = out
            .answer
            .answers
            .iter()
            .any(|r| r.rdata == RData::Aaaa(NEW_MARKER));
        if new_vm && switch_s.is_none() {
            switch_s = Some(t);
            break;
        }
        t += PROBE_EVERY_S;
    }
    let end = switch_s.unwrap_or(horizon_s);
    let snap_after = resolver.cache().snapshot(SimTime::from_secs(end));

    let (ns_a_residency_s, ns_a_original_ttl_s, cells) = resolver
        .cache()
        .with_ledger(|ledger| {
            // Journal names are FQDN-rendered (trailing dot).
            let ns_host_fqdn = format!("{ns_host}.");
            let mut residency = None;
            let mut original = None;
            for rec in ledger.journal().records() {
                if rec.rtype == "A" && rec.name.as_ref() == ns_host_fqdn {
                    original = Some(rec.original_ttl as u64);
                    if let Some(res) = rec.residency_ms {
                        let res_s = res / 1_000;
                        if residency.is_none_or(|r| res_s > r) {
                            residency = Some(res_s);
                        }
                    }
                }
            }
            let cells = ledger
                .cells()
                .map(|(k, c)| {
                    let res = Ecdf::from_u64(c.residency_ms.iter().map(|&ms| ms / 1_000));
                    (
                        k.rtype.to_string(),
                        k.origin.as_str().to_string(),
                        k.bailiwick.as_str().to_string(),
                        c.inserts,
                        c.serves,
                        c.serves_per_insert(),
                        if res.is_empty() { 0.0 } else { res.median() },
                    )
                })
                .collect();
            (residency, original, cells)
        })
        .expect("ledger enabled");

    let stats = resolver.stats();
    let hit_rate = if stats.client_queries > 0 {
        stats.cache_hits as f64 / stats.client_queries as f64
    } else {
        0.0
    };

    ScenarioRun {
        label,
        ns_host,
        switch_s,
        ns_a_residency_s,
        ns_a_original_ttl_s,
        hit_rate,
        cells,
        snap_before: snap_before.unwrap_or_else(|| resolver.cache().snapshot(SimTime::ZERO)),
        snap_after,
    }
}

/// Runs the forensics scenarios and renders the attribution report.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let scenarios = [
        (
            "in-bailiwick/child",
            false,
            ResolverPolicy::default(),
            10_800,
        ),
        (
            "out-of-bailiwick/child",
            true,
            ResolverPolicy::default(),
            10_800,
        ),
        (
            "out-of-bailiwick/parent",
            true,
            ResolverPolicy::parent_centric(),
            190_000,
        ),
    ];
    let runs: Vec<ScenarioRun> = scenarios
        .iter()
        .map(|(label, oob, policy, horizon)| {
            run_scenario(cfg, label, *oob, policy.clone(), *horizon)
        })
        .collect();

    let mut report = Report::new(
        "cache-report",
        "Cache forensics — Tables 3–4 effective lifetimes from the provenance ledger",
    );

    // Table A: the switch attribution. The ledger's residency column is
    // the *effective* lifetime; comparing it with the published TTL
    // shows the NS coupling (§4.2) without any external probing.
    let mut switch_table = Table::new(vec![
        "scenario",
        "ns host",
        "switch (s)",
        "A residency (s)",
        "A published TTL (s)",
        "lifetime",
    ]);
    for run in &runs {
        let residency = run.ns_a_residency_s.unwrap_or(0);
        let original = run.ns_a_original_ttl_s.unwrap_or(0);
        let verdict = if residency == 0 {
            "n/a".to_owned()
        } else if residency < original {
            "NS-coupled".to_owned()
        } else {
            "full TTL".to_owned()
        };
        switch_table.row(vec![
            run.label.to_owned(),
            run.ns_host.to_owned(),
            run.switch_s.map_or("none".to_owned(), |s| s.to_string()),
            residency.to_string(),
            original.to_string(),
            verdict,
        ]);
    }
    report.push("switch attribution (renumber at t=540 s, probes every 600 s):");
    report.push(switch_table.render());

    // Table B: full attribution cells for each scenario.
    for run in &runs {
        let mut t = Table::new(vec![
            "type",
            "origin",
            "bailiwick",
            "inserts",
            "serves",
            "serves/insert",
            "median residency (s)",
        ]);
        for (rtype, origin, bw, inserts, serves, spi, med) in &run.cells {
            t.row(vec![
                rtype.clone(),
                origin.clone(),
                bw.clone(),
                inserts.to_string(),
                serves.to_string(),
                format!("{spi:.2}"),
                format!("{med:.0}"),
            ]);
        }
        report.push(format!(
            "cache attribution — {} (hit rate {:.2}):",
            run.label, run.hit_rate
        ));
        report.push(t.render());
    }

    // The snapshot diff around the in-bailiwick switch: the glue A's
    // fingerprint change is the renumber, visible in cache state.
    let in_run = &runs[0];
    let diff = in_run.snap_before.diff(&in_run.snap_after);
    report.push(format!(
        "snapshot diff, {} (t={} s -> t={} s):",
        in_run.label,
        in_run.snap_before.at_ms / 1_000,
        in_run.snap_after.at_ms / 1_000
    ));
    report.push(diff.render());

    for run in &runs {
        let tag = run.label.replace(['/', '-'], "_");
        if let Some(s) = run.switch_s {
            report.metric(&format!("{tag}_switch_s"), s as f64);
        }
        if let Some(r) = run.ns_a_residency_s {
            report.metric(&format!("{tag}_ns_a_residency_s"), r as f64);
        }
        if let Some(o) = run.ns_a_original_ttl_s {
            report.metric(&format!("{tag}_ns_a_ttl_s"), o as f64);
        }
        report.metric(&format!("{tag}_hit_rate"), run.hit_rate);
    }

    // Artifacts: snapshots and the diff, for `repro cache-report --diff`.
    if let Some(dir) = &cfg.out_dir {
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(
                dir.join("insight_snapshot_before.jsonl"),
                in_run.snap_before.to_jsonl(),
            );
            let _ = std::fs::write(
                dir.join("insight_snapshot_after.jsonl"),
                in_run.snap_after.to_jsonl(),
            );
            let _ = std::fs::write(dir.join("insight_diff.txt"), diff.render());
        }
    }

    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_reproduces_tables_3_and_4_lifetimes() {
        let cfg = ExpConfig::quick();
        let reports = run(&cfg);
        let r = &reports[0];

        // In bailiwick: the address switches when the NS record
        // expires (≈3600 s), and the ledger shows the A record's
        // effective lifetime was cut short of its 7200 s TTL.
        let in_switch = r.get("in_bailiwick_child_switch_s");
        assert!(
            (3_600.0..=4_200.0).contains(&in_switch),
            "in-bailiwick switch at NS expiry, got {in_switch}"
        );
        let in_res = r.get("in_bailiwick_child_ns_a_residency_s");
        let in_ttl = r.get("in_bailiwick_child_ns_a_ttl_s");
        assert!(
            in_res < in_ttl,
            "in-bailiwick glue is NS-coupled: residency {in_res} < published {in_ttl}"
        );

        // Out of bailiwick: the address survives its full 7200 s TTL.
        let out_switch = r.get("out_of_bailiwick_child_switch_s");
        assert!(
            (7_200.0..=7_800.0).contains(&out_switch),
            "out-of-bailiwick switch at full A TTL, got {out_switch}"
        );
        let out_res = r.get("out_of_bailiwick_child_ns_a_residency_s");
        let out_ttl = r.get("out_of_bailiwick_child_ns_a_ttl_s");
        assert!(
            out_res + 600.0 >= out_ttl,
            "out-of-bailiwick address lives its full TTL: {out_res} vs {out_ttl}"
        );

        // Parent-centric: the registry's 2-day glue copy (§4.4).
        let parent_switch = r.get("out_of_bailiwick_parent_switch_s");
        assert!(
            parent_switch >= 172_200.0,
            "parent-centric holds the registry glue ~2 days, got {parent_switch}"
        );
    }
}
