//! §5.1: TTLs in the wild — Table 5, Figure 9, Tables 6–9.

use crate::config::ExpConfig;
use crate::report::Report;
use dnsttl_analysis::{ascii_cdf_log, CsvWriter, Table};
use dnsttl_crawl::{
    crawler::{self, CRAWLED_TYPES},
    ContentCategory, CrawledDomain, ListKind, ListSpec,
};
use dnsttl_netsim::SimRng;
use dnsttl_wire::RecordType;

fn generate_all(cfg: &ExpConfig) -> Vec<(ListKind, Vec<CrawledDomain>)> {
    ListKind::ALL
        .iter()
        .map(|&kind| {
            let mut rng = SimRng::seed_from(cfg.seed_for(&format!("crawl-{}", kind.name())));
            let spec = ListSpec::scaled(kind, cfg.crawl_scale);
            (kind, spec.generate(&mut rng))
        })
        .collect()
}

/// Runs the crawl experiments; returns table5, fig9, table6, table7,
/// table8, table9.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let populations = generate_all(cfg);
    let summaries: Vec<_> = populations
        .iter()
        .map(|(kind, domains)| crawler::summarize(*kind, domains))
        .collect();

    let mut reports = Vec::new();
    let headers: Vec<&str> = std::iter::once("")
        .chain(ListKind::ALL.iter().map(|k| k.name()))
        .collect();

    // ----- Table 5 -----
    let mut table5 = Report::new(
        "table5",
        "Datasets and RR counts (child authoritative) — scaled",
    );
    let mut t = Table::new(headers.clone());
    t.row(
        std::iter::once("format".to_owned())
            .chain(ListKind::ALL.iter().map(|k| k.format().to_owned()))
            .collect(),
    );
    t.row(
        std::iter::once("domains".to_owned())
            .chain(summaries.iter().map(|s| s.domains.to_string()))
            .collect(),
    );
    t.row(
        std::iter::once("responsive".to_owned())
            .chain(summaries.iter().map(|s| s.responsive.to_string()))
            .collect(),
    );
    t.row(
        std::iter::once("ratio".to_owned())
            .chain(
                summaries
                    .iter()
                    .map(|s| format!("{:.2}", s.responsive as f64 / s.domains.max(1) as f64)),
            )
            .collect(),
    );
    for rtype in CRAWLED_TYPES {
        t.row(
            std::iter::once(rtype.to_string())
                .chain(summaries.iter().map(|s| {
                    s.per_type
                        .iter()
                        .find(|p| p.rtype == rtype)
                        .map(|p| p.total.to_string())
                        .unwrap_or_default()
                }))
                .collect(),
        );
        t.row(
            std::iter::once("  unique".to_string())
                .chain(summaries.iter().map(|s| {
                    s.per_type
                        .iter()
                        .find(|p| p.rtype == rtype)
                        .map(|p| p.unique.to_string())
                        .unwrap_or_default()
                }))
                .collect(),
        );
        t.row(
            std::iter::once("  ratio".to_string())
                .chain(summaries.iter().map(|s| {
                    s.per_type
                        .iter()
                        .find(|p| p.rtype == rtype)
                        .map(|p| format!("{:.2}", p.ratio()))
                        .unwrap_or_default()
                }))
                .collect(),
        );
    }
    table5.push(t.render());
    let alexa = &summaries[0];
    let nl = &summaries[3];
    let alexa_ns_ratio = alexa
        .per_type
        .iter()
        .find(|p| p.rtype == RecordType::NS)
        .unwrap()
        .ratio();
    let nl_ns_ratio = nl
        .per_type
        .iter()
        .find(|p| p.rtype == RecordType::NS)
        .unwrap()
        .ratio();
    table5.metric(
        "alexa_responsive_ratio",
        alexa.responsive as f64 / alexa.domains as f64,
    );
    table5.metric("alexa_ns_ratio", alexa_ns_ratio);
    table5.metric("nl_ns_ratio", nl_ns_ratio);
    reports.push(table5);

    // ----- Figure 9 -----
    let mut fig9 = Report::new("fig9", "CDF of TTLs per record type, for each list");
    for rtype in [
        RecordType::NS,
        RecordType::A,
        RecordType::AAAA,
        RecordType::MX,
        RecordType::DNSKEY,
    ] {
        let ecdfs: Vec<(ListKind, dnsttl_analysis::Ecdf)> = populations
            .iter()
            .map(|(k, d)| (*k, crawler::ttl_ecdf(d, rtype)))
            .filter(|(_, e)| !e.is_empty())
            .collect();
        let series: Vec<(&str, &dnsttl_analysis::Ecdf)> =
            ecdfs.iter().map(|(k, e)| (k.name(), e)).collect();
        fig9.push(format!("--- {rtype} ---"));
        fig9.push(ascii_cdf_log(&series, 64, 10));
        for (k, e) in &ecdfs {
            fig9.push(format!("  {:<9} {}", k.name(), e.summary()));
        }
        if let Some(dir) = &cfg.out_dir {
            let mut w = CsvWriter::new(
                dir.join(format!(
                    "fig9_{}_ttl_cdf.csv",
                    rtype.to_string().to_lowercase()
                )),
                &["list", "ttl_s", "cdf"],
            );
            for (k, e) in &ecdfs {
                for (x, y) in e.points() {
                    w.row(&[k.name().into(), format!("{x}"), format!("{y}")]);
                }
            }
            let _ = w.finish();
        }
    }
    // Shape metrics.
    let root_ns = crawler::ttl_ecdf(&populations[4].1, RecordType::NS);
    let umb_ns = crawler::ttl_ecdf(&populations[2].1, RecordType::NS);
    let alexa_ns = crawler::ttl_ecdf(&populations[0].1, RecordType::NS);
    let alexa_a = crawler::ttl_ecdf(&populations[0].1, RecordType::A);
    fig9.metric("root_ns_day_or_more", 1.0 - root_ns.fraction_leq(86_399.0));
    fig9.metric("umbrella_ns_under_minute", umb_ns.fraction_leq(60.0));
    fig9.metric("alexa_ns_median", alexa_ns.median());
    fig9.metric("alexa_a_median", alexa_a.median());
    reports.push(fig9);

    // ----- Table 6 -----
    let nl_domains = &populations[3].1;
    let mut table6 = Report::new("table6", ".nl classified domains by DMap category");
    let mut t = Table::new(vec!["Category", "count", "share"]);
    let classified: Vec<&CrawledDomain> =
        nl_domains.iter().filter(|d| d.category.is_some()).collect();
    for cat in ContentCategory::ALL {
        let n = classified
            .iter()
            .filter(|d| d.category == Some(cat))
            .count();
        t.row(vec![
            cat.label().to_owned(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / classified.len().max(1) as f64),
        ]);
        table6.metric(&format!("count_{}", cat.label()), n as f64);
    }
    t.row(vec![
        "Total".into(),
        classified.len().to_string(),
        "100%".into(),
    ]);
    table6.push(t.render());
    reports.push(table6);

    // ----- Table 7 -----
    let mut table7 = Report::new(
        "table7",
        "Median TTL values (hours) for .nl domains by category",
    );
    let mut t = Table::new(vec!["", "Ecommerce", "Parking", "Placeholder"]);
    for rtype in [
        RecordType::NS,
        RecordType::A,
        RecordType::AAAA,
        RecordType::MX,
        RecordType::DNSKEY,
    ] {
        let cell = |cat| {
            crawler::median_ttl_hours(nl_domains, rtype, cat)
                .map(|h| format!("{h:.1}"))
                .unwrap_or_else(|| "–".into())
        };
        t.row(vec![
            rtype.to_string(),
            cell(ContentCategory::Ecommerce),
            cell(ContentCategory::Parking),
            cell(ContentCategory::Placeholder),
        ]);
    }
    table7.push(t.render());
    table7.metric(
        "parking_ns_hours",
        crawler::median_ttl_hours(nl_domains, RecordType::NS, ContentCategory::Parking)
            .unwrap_or(0.0),
    );
    table7.metric(
        "ecommerce_ns_hours",
        crawler::median_ttl_hours(nl_domains, RecordType::NS, ContentCategory::Ecommerce)
            .unwrap_or(0.0),
    );
    reports.push(table7);

    // ----- Table 8 -----
    let mut table8 = Report::new("table8", "Domains with TTL=0 s, per record type");
    let mut t = Table::new(headers.clone());
    for rtype in CRAWLED_TYPES {
        t.row(
            std::iter::once(rtype.to_string())
                .chain(summaries.iter().map(|s| {
                    s.per_type
                        .iter()
                        .find(|p| p.rtype == rtype)
                        .map(|p| p.ttl_zero_domains.to_string())
                        .unwrap_or_default()
                }))
                .collect(),
        );
    }
    table8.push(t.render());
    table8.push("TTL 0 disables caching entirely; the paper recommends against it (§5.1.2).");
    let total_zero: usize = summaries
        .iter()
        .flat_map(|s| s.per_type.iter())
        .map(|p| p.ttl_zero_domains)
        .sum();
    let total_domains: usize = summaries.iter().map(|s| s.domains).sum();
    table8.metric("total_ttl_zero", total_zero as f64);
    table8.metric(
        "ttl_zero_fraction",
        total_zero as f64 / total_domains.max(1) as f64,
    );
    reports.push(table8);

    // ----- Table 9 -----
    let mut table9 = Report::new("table9", "Bailiwick distribution in the wild");
    let mut t = Table::new(headers);
    type Cell = Box<dyn Fn(&dnsttl_crawl::CrawlSummary) -> String>;
    let rows: [(&str, Cell); 7] = [
        ("responsive", Box::new(|s| s.responsive.to_string())),
        ("CNAME", Box::new(|s| s.cname_on_ns.to_string())),
        ("SOA", Box::new(|s| s.soa_on_ns.to_string())),
        ("respond NS", Box::new(|s| s.responds_ns.to_string())),
        ("Out only", Box::new(|s| s.out_only.to_string())),
        (
            "percent out",
            Box::new(|s| {
                format!(
                    "{:.1}",
                    100.0 * s.out_only as f64 / s.responds_ns.max(1) as f64
                )
            }),
        ),
        (
            "In only / Mixed",
            Box::new(|s| format!("{} / {}", s.in_only, s.mixed)),
        ),
    ];
    for (label, f) in &rows {
        t.row(
            std::iter::once(label.to_string())
                .chain(summaries.iter().map(f))
                .collect(),
        );
    }
    table9.push(t.render());
    let alexa_out = summaries[0].out_only as f64 / summaries[0].responds_ns.max(1) as f64;
    let root_out = summaries[4].out_only as f64 / summaries[4].responds_ns.max(1) as f64;
    table9.metric("alexa_percent_out", alexa_out);
    table9.metric("root_percent_out", root_out);
    reports.push(table9);

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_tables_match_paper_shapes() {
        let reports = run(&ExpConfig::quick());
        let by_id = |id: &str| reports.iter().find(|r| r.id == id).unwrap();

        let table5 = by_id("table5");
        assert!(table5.get("alexa_responsive_ratio") > 0.97);
        assert!(table5.get("nl_ns_ratio") > table5.get("alexa_ns_ratio"));

        let fig9 = by_id("fig9");
        assert!(fig9.get("root_ns_day_or_more") > 0.7);
        assert!(fig9.get("umbrella_ns_under_minute") > 0.15);
        assert!(fig9.get("alexa_a_median") <= fig9.get("alexa_ns_median"));

        let table7 = by_id("table7");
        assert!(table7.get("parking_ns_hours") >= 24.0);
        assert!(table7.get("ecommerce_ns_hours") <= 8.0);

        let table8 = by_id("table8");
        assert!(table8.get("total_ttl_zero") > 0.0);
        assert!(table8.get("ttl_zero_fraction") < 0.05);

        let table9 = by_id("table9");
        assert!(table9.get("alexa_percent_out") > 0.9);
        assert!((0.35..0.65).contains(&table9.get("root_percent_out")));
    }
}
