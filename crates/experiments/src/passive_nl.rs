//! Figures 3–4: passive classification of `.nl` resolvers.
//!
//! The paper gathers two days of queries at two of `.nl`'s four
//! authoritative servers and groups them by (resolver, query-name),
//! where the query names are the NS hosts' A records — published with
//! 172 800 s glue at the root but only 3 600 s in the child zone.
//! Child-centric resolvers re-fetch hourly (many queries per group,
//! minimum interarrivals bunched at multiples of 3 600 s); resolvers
//! that honour the glue, rotate to unobserved servers, or simply have
//! no demand show up once.
//!
//! Here a resolver population with heavy-tailed client demand drives
//! the same query stream through the simulated `.nl`, and the same
//! grouping is applied to the logs of the two observed servers.

use crate::config::ExpConfig;
use crate::report::Report;
use crate::worlds;
use dnsttl_analysis::{ascii_cdf_multi, group_by, min_interarrival, CsvWriter, Ecdf};
use dnsttl_core::PolicyMix;
use dnsttl_netsim::{EventQueue, SimDuration, SimRng, SimTime};
use dnsttl_resolver::RecursiveResolver;
use dnsttl_wire::RecordType;

/// Runs the passive `.nl` study; returns fig3 and fig4.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let mut world = worlds::nl_world();
    world.net.set_telemetry(cfg.telemetry.clone());
    let mut rng = SimRng::seed_from(cfg.seed_for("passive-nl"));

    // Build the resolver population with the paper's policy mixture.
    // A slice of "resolvers" are actually farms: several independent
    // caches NATed behind one source address ([48]'s complex recursive
    // infrastructure). Their interleaved caches are what produces the
    // sub-hour minimum interarrivals of Figure 4.
    let mix = PolicyMix::paper_population();
    let weights = mix.weights();
    let mut resolvers: Vec<RecursiveResolver> = Vec::with_capacity(cfg.nl_resolvers);
    let mut source_tag: u64 = 0;
    for i in 0..cfg.nl_resolvers {
        // 12% of caches join the previous source's farm.
        if i == 0 || !rng.chance(0.12) {
            source_tag = i as u64;
        }
        resolvers.push(RecursiveResolver::new(
            format!("nl-res-{i}"),
            mix.policy(rng.weighted_index(&weights)).clone(),
            dnsttl_netsim::Region::ALL[rng.weighted_index(&dnsttl_netsim::Region::atlas_weights())],
            source_tag,
            world.roots.clone(),
            rng.fork(i as u64),
        ));
    }
    for r in &mut resolvers {
        r.set_telemetry(cfg.telemetry.clone());
    }

    // Heavy-tailed demand: most resolvers need `.nl` rarely, some
    // constantly (the paper's 205k resolver IPs range from stub-like
    // forwarders to ISP caches; §3.4 finds ~48% of groups with a
    // single query in two days). Per-resolver mean interarrival is
    // log-normal with a wide sigma: the median resolver shows up a
    // handful of times, the busy head hourly.
    let duration = SimDuration::from_hours(cfg.nl_hours);
    struct Demand {
        resolver: usize,
        qname_idx: usize,
    }
    let mut queue: EventQueue<Demand> = EventQueue::new();
    let mut mean_gap_ms: Vec<u64> = Vec::with_capacity(resolvers.len());
    for i in 0..resolvers.len() {
        let mean = rng.log_normal(10.1, 2.4); // seconds; median ~6.7 h
        let gap = (mean * 1_000.0).clamp(30_000.0, 2.0e8) as u64;
        mean_gap_ms.push(gap);
        let first = rng.below(gap.max(1));
        queue.schedule(
            SimTime::from_millis(first),
            Demand {
                resolver: i,
                qname_idx: rng.below(world.ns_host_names.len() as u64) as usize,
            },
        );
    }

    // Exponential interarrivals around each resolver's mean.
    let exp_gap = |rng: &mut SimRng, mean_ms: u64| -> u64 {
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        ((-u.ln()) * mean_ms as f64).clamp(1_000.0, 4.0e8) as u64
    };

    let end = SimTime::ZERO + duration;
    let mut total_demand = 0u64;
    while let Some((now, d)) = queue.pop() {
        if now >= end {
            continue;
        }
        total_demand += 1;
        let qname = world.ns_host_names[d.qname_idx].clone();
        let r = &mut resolvers[d.resolver];
        let _ = r.resolve(&qname, RecordType::A, now, &mut world.net);
        let gap = exp_gap(&mut rng, mean_gap_ms[d.resolver]);
        queue.schedule(
            now + SimDuration::from_millis(gap),
            Demand {
                resolver: d.resolver,
                qname_idx: rng.below(world.ns_host_names.len() as u64) as usize,
            },
        );
    }

    // Collect the two observed servers' logs and group by
    // (resolver tag, qname) — the paper's 368k groups.
    let mut events: Vec<((u64, String), u64)> = Vec::new();
    for server in &world.logged {
        for entry in server.borrow().log().entries() {
            events.push((
                (entry.client.tag, entry.qname.to_string()),
                entry.at.as_secs(),
            ));
        }
    }
    let groups = group_by(events);

    let counts: Vec<u64> = groups.values().map(|v| v.len() as u64).collect();
    let single = counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len().max(1) as f64;

    // Figure 3: CDF of queries per group, all vs retransmission-filtered
    // (the paper's 2 s filter changes nothing; we include it anyway).
    let filtered_counts: Vec<u64> = groups
        .values()
        .map(|times| {
            let mut kept = 1u64;
            for w in times.windows(2) {
                if w[1] - w[0] >= 2 {
                    kept += 1;
                }
            }
            kept
        })
        .collect();

    let mut fig3 = Report::new(
        "fig3",
        "CDF of A queries per resolver/query-name (.nl, 2 days)",
    );
    let all = Ecdf::from_u64(counts.iter().copied());
    let filt = Ecdf::from_u64(filtered_counts.iter().copied());
    fig3.push(ascii_cdf_multi(
        &[("all", &all), ("filtered >2s", &filt)],
        64,
        12,
    ));
    fig3.push(format!(
        "groups: {}   demand events: {total_demand}",
        groups.len()
    ));
    fig3.push(format!(
        "single-query groups: {:.1}% (paper: ~48%)   multi-query (child-centric evidence): {:.1}%",
        single * 100.0,
        (1.0 - single) * 100.0
    ));
    fig3.metric("groups", groups.len() as f64);
    fig3.metric("frac_single_query", single);
    fig3.metric("median_queries_per_group", all.median());
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("fig3_queries_per_group_cdf.csv"),
            &["queries", "cdf"],
        );
        for (x, y) in all.points() {
            w.row_display(&[x, y]);
        }
        let _ = w.finish();
    }

    // Figure 4: CDF of minimum interarrival per multi-query group;
    // bumps at multiples of the child's 3600 s TTL.
    let mins: Vec<u64> = groups
        .values()
        .filter_map(|times| min_interarrival(times, 2))
        .collect();
    let mut fig4 = Report::new(
        "fig4",
        "CDF of minimum interarrival time of A queries per resolver/query-name",
    );
    let min_ecdf = Ecdf::from_u64(mins.iter().copied());
    if !min_ecdf.is_empty() {
        fig4.push(ascii_cdf_multi(&[("min interarrival", &min_ecdf)], 64, 12));
        fig4.push(format!(
            "min-interarrival summary (s): {}",
            min_ecdf.summary()
        ));
    }
    // The 1-hour bump: mass within ±10% of 3600 s.
    let hour_bump = mins
        .iter()
        .filter(|&&m| (3_240..=3_960).contains(&m))
        .count() as f64
        / mins.len().max(1) as f64;
    let sub_hour = min_ecdf.samples().iter().filter(|&&m| m < 3_240.0).count() as f64
        / mins.len().max(1) as f64;
    fig4.push(format!(
        "mass at ~1h (child TTL): {:.1}%   below 1h: {:.1}%",
        hour_bump * 100.0,
        sub_hour * 100.0
    ));
    fig4.metric("hour_bump_fraction", hour_bump);
    fig4.metric("groups_with_multi", mins.len() as f64);
    if let Some(dir) = &cfg.out_dir {
        let mut w = CsvWriter::new(
            dir.join("fig4_min_interarrival_cdf.csv"),
            &["seconds", "cdf"],
        );
        for (x, y) in min_ecdf.points() {
            w.row_display(&[x, y]);
        }
        let _ = w.finish();
    }

    vec![fig3, fig4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nl_classification_shapes() {
        let cfg = ExpConfig::quick();
        let reports = run(&cfg);
        let fig3 = &reports[0];
        assert!(fig3.get("groups") > 100.0, "groups {}", fig3.get("groups"));
        // A substantial single-query mass AND a substantial multi-query
        // (child-centric) mass, as in the paper's ~48/52 split.
        let single = fig3.get("frac_single_query");
        assert!((0.05..0.90).contains(&single), "single {single}");

        let fig4 = &reports[1];
        // Figure 4's signature: a bump at the child's one-hour TTL.
        assert!(
            fig4.get("hour_bump_fraction") > 0.15,
            "hour bump {}",
            fig4.get("hour_bump_fraction")
        );
    }
}
