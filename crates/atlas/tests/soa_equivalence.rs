//! Differential harness for the two Zipf campaign engines.
//!
//! The struct-of-arrays sweep (`ZipfEngine::Soa`) is the fast path; the
//! pointer-based heap engine (`ZipfEngine::Oracle`) is the retained
//! reference implementation. Both must produce **bit-identical**
//! output — datasets row for row, per-probe counters, merged cache
//! statistics, and the telemetry artifacts (sim-time series and
//! Prometheus text) — for any seed, worker count, and cell count.
//! Shared `ProbeFrame::build` and `fire_one` make that true by
//! construction; this suite is what keeps it true.

use dnsttl_atlas::{ZipfCampaignConfig, ZipfEngine, ZipfOutcome, ZipfRunOpts};
use dnsttl_telemetry::Telemetry;

fn campaign(cells: usize) -> ZipfCampaignConfig {
    let mut cfg = ZipfCampaignConfig::small(240);
    cfg.cells = cells;
    cfg
}

fn run(cfg: &ZipfCampaignConfig, seed: u64, engine: ZipfEngine, workers: usize) -> ZipfOutcome {
    let opts = ZipfRunOpts {
        workers,
        engine,
        telemetry: true,
        ..ZipfRunOpts::default()
    };
    dnsttl_atlas::run_zipf_campaign(cfg, seed, &opts)
}

/// Folds an outcome's drained per-cell telemetry into a fresh handle
/// and renders the two deterministic artifacts.
fn telemetry_artifacts(outcome: ZipfOutcome) -> (String, String) {
    let telemetry = Telemetry::new();
    telemetry.absorb_shards(outcome.parts);
    (telemetry.timeseries_jsonl(), telemetry.prometheus_text())
}

fn assert_bit_identical(cfg: &ZipfCampaignConfig, seed: u64, label: &str) {
    let soa = run(cfg, seed, ZipfEngine::Soa, 1);
    let oracle = run(cfg, seed, ZipfEngine::Oracle, 1);

    // Row-level equality first (the digest alone would hide where a
    // divergence starts); then the digest, which the bench gate uses.
    assert_eq!(
        soa.dataset.rows().len(),
        oracle.dataset.rows().len(),
        "{label}: row counts"
    );
    for (i, (a, b)) in soa
        .dataset
        .rows()
        .iter()
        .zip(oracle.dataset.rows())
        .enumerate()
    {
        assert_eq!(a, b, "{label}: first divergent row at index {i}");
    }
    assert_eq!(soa.dataset.digest(), oracle.dataset.digest(), "{label}");

    // Per-probe accounting and the summed cache ledger.
    assert_eq!(soa.queries_per_probe, oracle.queries_per_probe, "{label}");
    assert_eq!(soa.hits_per_probe, oracle.hits_per_probe, "{label}");
    assert_eq!(soa.cache, oracle.cache, "{label}: cache stats");
    assert_eq!(soa.resolvers, oracle.resolvers, "{label}");

    // Telemetry: both engines must emit the same counters at the same
    // simulated instants, so the rendered artifacts match byte for
    // byte.
    let (soa_ts, soa_prom) = telemetry_artifacts(soa);
    let (oracle_ts, oracle_prom) = telemetry_artifacts(oracle);
    assert_eq!(soa_ts, oracle_ts, "{label}: timeseries bytes");
    assert_eq!(soa_prom, oracle_prom, "{label}: prometheus bytes");
    assert!(
        soa_ts.contains("zipf_queries_total"),
        "{label}: the comparison must not pass on empty telemetry"
    );
}

#[test]
fn engines_agree_bit_for_bit_across_seeds() {
    let cfg = campaign(16);
    for seed in [42, 0xDEAD_BEEF] {
        assert_bit_identical(&cfg, seed, &format!("seed {seed}"));
    }
}

#[test]
fn engines_agree_at_nondefault_cell_counts() {
    for cells in [4, 64] {
        let cfg = campaign(cells);
        assert_bit_identical(&cfg, 7, &format!("cells {cells}"));
    }
}

#[test]
fn engines_agree_with_a_flat_curve_and_heavy_skew() {
    // Degenerate corners: no diurnal warping (window == base interval)
    // and a near-single-name universe (maximum cache sharing).
    let mut cfg = campaign(8);
    cfg.diurnal = dnsttl_atlas::DiurnalCurve::flat();
    cfg.exponent = 2.5;
    assert_bit_identical(&cfg, 99, "flat+skew");
}

#[test]
fn engines_agree_above_the_linear_sweep_cutoff() {
    // Small frames take a linear min-scan; frames past the cutoff run
    // the hierarchical timing wheel. 600 probes over 4 cells puts 150
    // probes in each cell — comfortably past the 128-probe cutoff — so
    // this case pins the wheel path itself against the oracle.
    let mut cfg = ZipfCampaignConfig::small(600);
    cfg.cells = 4;
    assert_bit_identical(&cfg, 23, "wheel-sized cells");
}

#[test]
fn oracle_is_worker_count_invariant_too() {
    // The differential suite leans on the 1-worker oracle; make sure
    // the oracle itself is scheduling-independent before trusting it.
    let cfg = campaign(16);
    let one = run(&cfg, 42, ZipfEngine::Oracle, 1);
    let eight = run(&cfg, 42, ZipfEngine::Oracle, 8);
    assert_eq!(one.dataset.digest(), eight.dataset.digest());
    assert_eq!(one.cache, eight.cache);
}
