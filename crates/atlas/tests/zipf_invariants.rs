//! Property tests for the scale campaign's statistical machinery:
//! the exact Zipf sampler and the diurnal load curve.
//!
//! The claims are analytic, so the tests compare empirical draws
//! against closed-form expectations — rank-frequency slope against the
//! configured exponent, head/tail mass against the CDF, and the
//! curve's clamping and window bounds the SoA sweep depends on.

use dnsttl_atlas::{DiurnalCurve, ZipfSampler};
use dnsttl_netsim::SimRng;

/// Draws `n` samples and returns per-rank counts.
fn histogram(sampler: &ZipfSampler, seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::seed_from(seed);
    let mut counts = vec![0u64; sampler.len()];
    for _ in 0..n {
        counts[sampler.sample(&mut rng)] += 1;
    }
    counts
}

#[test]
fn rank_frequency_slope_matches_the_exponent() {
    // On a log-log plot, Zipf(s) rank frequencies fall on a line of
    // slope −s. Fit the head (well-populated ranks) by least squares
    // and require the recovered exponent within 5% of the configured
    // one, for two different exponents.
    for exponent in [0.8, 1.2] {
        let sampler = ZipfSampler::new(500, exponent);
        let counts = histogram(&sampler, 42, 400_000);
        let pts: Vec<(f64, f64)> = counts
            .iter()
            .enumerate()
            .take(30)
            .map(|(rank, &c)| (((rank + 1) as f64).ln(), (c.max(1) as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (-slope - exponent).abs() < 0.05 * exponent,
            "fitted slope {slope:.3} for exponent {exponent}"
        );
    }
}

#[test]
fn head_and_tail_mass_match_the_analytic_cdf() {
    let sampler = ZipfSampler::new(1_000, 1.0);
    let draws = 500_000usize;
    let counts = histogram(&sampler, 7, draws);
    for k in [1, 10, 100] {
        let empirical = counts.iter().take(k).sum::<u64>() as f64 / draws as f64;
        let analytic = sampler.head_mass(k);
        assert!(
            (empirical - analytic).abs() < 0.01,
            "head({k}): empirical {empirical:.4}, analytic {analytic:.4}"
        );
    }
    // The tail complement follows from the same CDF.
    let tail = counts.iter().skip(100).sum::<u64>() as f64 / draws as f64;
    assert!((tail - (1.0 - sampler.head_mass(100))).abs() < 0.01);
    // Per-rank masses sum to one and decrease monotonically.
    let total: f64 = (0..sampler.len()).map(|r| sampler.mass(r)).sum();
    assert!((total - 1.0).abs() < 1e-9);
    for r in 1..sampler.len() {
        assert!(sampler.mass(r) <= sampler.mass(r - 1) + 1e-12, "rank {r}");
    }
}

#[test]
fn sampling_is_exactly_deterministic() {
    let sampler = ZipfSampler::new(128, 1.1);
    let draw = |seed: u64| -> Vec<usize> {
        let mut rng = SimRng::seed_from(seed);
        (0..2_000).map(|_| sampler.sample(&mut rng)).collect()
    };
    assert_eq!(draw(1234), draw(1234), "same seed, same sequence");
    assert_ne!(draw(1234), draw(1235), "different seed, different draws");
    // A rebuilt sampler is bit-identical: the CDF depends only on
    // (n, exponent), never on iteration order or host state.
    let rebuilt = ZipfSampler::new(128, 1.1);
    let mut a = SimRng::seed_from(9);
    let mut b = SimRng::seed_from(9);
    for _ in 0..2_000 {
        assert_eq!(sampler.sample(&mut a), rebuilt.sample(&mut b));
    }
}

#[test]
fn extreme_exponents_stay_well_formed() {
    // s = 0 is the uniform distribution.
    let uniform = ZipfSampler::new(10, 0.0);
    for r in 0..10 {
        assert!((uniform.mass(r) - 0.1).abs() < 1e-12, "rank {r}");
    }
    // A negative exponent clamps to uniform rather than inverting the
    // popularity order.
    assert_eq!(ZipfSampler::new(10, -3.0).exponent(), 0.0);
    // A strongly skewed universe still covers every rank in the CDF.
    let skewed = ZipfSampler::new(50, 3.0);
    assert!(skewed.head_mass(1) > 0.8);
    assert!((skewed.head_mass(50) - 1.0).abs() < 1e-12);
}

#[test]
fn flat_curve_never_warps_the_interval() {
    let flat = DiurnalCurve::flat();
    for hour in 0..48 {
        let at_ms = hour * 3_600_000;
        assert_eq!(flat.interval_ms(600_000, at_ms), 600_000);
        assert!((flat.rate_at(at_ms) - 1.0).abs() < 1e-12);
    }
    assert_eq!(flat.min_interval_ms(600_000), 600_000);
}

#[test]
fn diurnal_peak_is_faster_than_the_trough() {
    let curve = DiurnalCurve::new(0.6, 14.0);
    let at = |hour: f64| (hour * 3_600_000.0) as u64;
    // Rate peaks at the configured hour and bottoms out 12 h away.
    assert!(curve.rate_at(at(14.0)) > curve.rate_at(at(2.0)));
    assert!((curve.rate_at(at(14.0)) - 1.6).abs() < 1e-9);
    assert!((curve.rate_at(at(2.0)) - 0.4).abs() < 1e-9);
    // Faster rate, shorter interval.
    assert!(curve.interval_ms(600_000, at(14.0)) < curve.interval_ms(600_000, at(2.0)));
    // The curve is 24h-periodic.
    assert_eq!(
        curve.interval_ms(600_000, at(14.0)),
        curve.interval_ms(600_000, at(38.0))
    );
}

#[test]
fn warped_intervals_respect_the_soa_window_bound() {
    // The SoA sweep's correctness hinges on this: every warped interval
    // is at least `min_interval_ms`, so a probe rescheduled inside a
    // window can never land back inside the same window.
    for (amplitude, peak) in [(0.0, 0.0), (0.3, 6.0), (0.95, 23.5), (2.0, -5.0)] {
        let curve = DiurnalCurve::new(amplitude, peak);
        let window = curve.min_interval_ms(600_000);
        assert!(window >= 1);
        for step in 0..24 * 4 {
            let at_ms = step * 900_000; // every 15 simulated minutes
            let interval = curve.interval_ms(600_000, at_ms);
            assert!(
                interval >= window,
                "amplitude {amplitude}, t {at_ms}: interval {interval} < window {window}"
            );
        }
    }
    // Clamps: amplitude never reaches 1.0, peak hour wraps into 0..24.
    let clamped = DiurnalCurve::new(2.0, -5.0);
    assert!(clamped.amplitude <= 0.95);
    assert!((0.0..24.0).contains(&clamped.peak_hour));
}
