//! Probe and resolver populations.
//!
//! §3.2 of the paper describes the measurement substrate: ~10k Atlas
//! probes across 3.3k ASes, about a third hosting multiple vantage
//! points; many probes have several recursive resolvers, some local and
//! some public (OpenDNS and Google appear by name). Public resolvers
//! are *not* single caches: the paper repeatedly leans on prior work
//! ([36, 48]) showing query-level load balancing over fragmented
//! backend caches. The population builder reproduces all of that:
//! local resolvers are dedicated caches; public resolvers are groups of
//! backends and every query lands on a random member.

use dnsttl_core::PolicyMix;
use dnsttl_netsim::{Region, SimRng};
use dnsttl_resolver::{RecursiveResolver, RootHint};

/// An exact seeded Zipf sampler over ranks `0..n`.
///
/// *Modeling and Predicting DNS Server Load* calibrates realistic
/// query populations with Zipf-distributed name popularity; the scale
/// campaigns here draw each probe's target rank from this sampler so
/// hit-rate-vs-TTL curves reflect skewed, cache-sharing traffic rather
/// than uniform-traffic artifacts.
///
/// Unlike [`SimRng::zipf`] (a fast continuous approximation, documented
/// as unfit for exact statistics), this sampler materialises the exact
/// normalised CDF of `P(rank = k) ∝ 1 / (k+1)^s` and inverts it by
/// binary search: the empirical rank-frequency slope converges on the
/// configured exponent, which `tests/zipf_invariants.rs` asserts.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[k]` = P(rank ≤ k); the last entry is exactly 1.0.
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Builds the CDF table for `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics when `n` is zero — an empty popularity universe cannot be
    /// sampled.
    pub fn new(n: usize, exponent: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf universe must be non-empty");
        let exponent = exponent.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf, exponent }
    }

    /// Number of ranks in the universe.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the universe is empty (never — construction forbids
    /// it — but clippy wants `len` paired with `is_empty`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `0..len()`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Exact probability mass of one rank.
    pub fn mass(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Exact probability mass of the `k` most popular ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.cdf[k.min(self.cdf.len()) - 1]
    }
}

/// A diurnal load curve: a clamped sinusoid that scales each probe's
/// query rate over the simulated day, peaking at `peak_hour`.
///
/// `rate_at` returns the instantaneous rate multiplier
/// `1 + amplitude · cos(2π · (hour − peak_hour) / 24)`, so a probe
/// whose base inter-query interval is `base_ms` fires every
/// `base_ms / rate` during the day. The amplitude is clamped below 1.0
/// so the rate never reaches zero, and the warped interval is clamped
/// to [`DiurnalCurve::min_interval_ms`] — the window width the SoA
/// sweep relies on (a rescheduled probe can never re-fire inside the
/// window that scheduled it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Peak-to-mean rate excess in `0.0..=0.95` (0 = flat load).
    pub amplitude: f64,
    /// Hour of the simulated day (0..24) when load peaks.
    pub peak_hour: f64,
}

impl DiurnalCurve {
    /// A flat curve: every interval is exactly the base interval.
    pub fn flat() -> DiurnalCurve {
        DiurnalCurve {
            amplitude: 0.0,
            peak_hour: 0.0,
        }
    }

    /// A curve with the given amplitude (clamped to `0.0..=0.95`) and
    /// peak hour (wrapped into `0..24`).
    pub fn new(amplitude: f64, peak_hour: f64) -> DiurnalCurve {
        DiurnalCurve {
            amplitude: amplitude.clamp(0.0, 0.95),
            peak_hour: peak_hour.rem_euclid(24.0),
        }
    }

    /// Instantaneous rate multiplier at a simulation instant.
    pub fn rate_at(&self, at_ms: u64) -> f64 {
        let hour = (at_ms as f64 / 3_600_000.0) % 24.0;
        let phase = (hour - self.peak_hour) * std::f64::consts::TAU / 24.0;
        1.0 + self.amplitude * phase.cos()
    }

    /// The peak rate multiplier (`1 + amplitude`).
    pub fn max_rate(&self) -> f64 {
        1.0 + self.amplitude
    }

    /// Lower bound on any warped interval: `base_ms / max_rate`,
    /// floored, never below 1 ms. This is the SoA sweep's window width.
    pub fn min_interval_ms(&self, base_ms: u64) -> u64 {
        ((base_ms as f64 / self.max_rate()).floor() as u64).max(1)
    }

    /// The next inter-query interval for a probe firing at `at_ms` with
    /// base interval `base_ms`: the base warped by the instantaneous
    /// rate, clamped to `min_interval_ms`.
    pub fn interval_ms(&self, base_ms: u64, at_ms: u64) -> u64 {
        let warped = (base_ms as f64 / self.rate_at(at_ms)).round() as u64;
        warped.max(self.min_interval_ms(base_ms))
    }
}

/// What a probe's resolver slot points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolverRef {
    /// A dedicated local resolver: one cache, index into
    /// [`Population::resolvers`].
    Local(usize),
    /// A public resolver service: index into
    /// [`Population::public_groups`]; each query hits a random backend.
    Public(usize),
}

/// One Atlas-like probe.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Probe identifier (used in per-probe query names).
    pub id: u32,
    /// Continent the probe sits in.
    pub region: Region,
    /// The probe's resolver slots — each pairing is a vantage point.
    pub resolvers: Vec<ResolverRef>,
    /// Probe→resolver RTT in ms per slot.
    pub link_rtt_ms: Vec<u64>,
    /// True for probes whose DNS path is broken or hijacked; their
    /// responses are discarded in analysis, as the paper discards
    /// probes "with hijacked DNS traffic" (§3.2).
    pub hijacked: bool,
}

/// A vantage point: one (probe, resolver-slot) pairing — the unit the
/// paper draws its CDFs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VantagePoint {
    /// Index into [`Population::probes`].
    pub probe_idx: usize,
    /// Which of the probe's resolver slots.
    pub slot: usize,
    /// Probe→resolver link RTT in ms.
    pub link_rtt_ms: u64,
}

/// Knobs for population construction.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of probes (the paper uses ~9k).
    pub probes: usize,
    /// Weights for a probe having 1, 2, or 3 resolvers. The paper sees
    /// ~15k VPs from ~9k probes, i.e. ≈1.7 resolvers per probe.
    pub resolvers_per_probe: [f64; 3],
    /// Number of public resolver services (Google/OpenDNS/… style).
    pub public_services: usize,
    /// Backend caches per public service (cache fragmentation; queries
    /// balance across them).
    pub backends_per_service: usize,
    /// Probability that a probe's resolver slot points at a public
    /// service rather than a dedicated local resolver.
    pub public_fraction: f64,
    /// Policy mixture for local resolvers (public services draw from
    /// the capping/parent-centric end of the space).
    pub policy_mix: PolicyMix,
    /// Fraction of probes with hijacked/broken DNS (discarded).
    pub hijacked_fraction: f64,
    /// Offset added to probe ids (`id = 10_000 + probe_id_base + pid`).
    /// Sharded runs give each shard a base so per-probe query names stay
    /// globally unique; zero reproduces the unsharded numbering exactly.
    pub probe_id_base: u32,
}

impl Default for PopulationConfig {
    fn default() -> PopulationConfig {
        PopulationConfig {
            probes: 9_000,
            resolvers_per_probe: [0.55, 0.25, 0.20],
            public_services: 12,
            backends_per_service: 4,
            public_fraction: 0.18,
            policy_mix: PolicyMix::paper_population(),
            hijacked_fraction: 0.011,
            probe_id_base: 0,
        }
    }
}

impl PopulationConfig {
    /// A small population for tests and quick runs.
    pub fn small(probes: usize) -> PopulationConfig {
        PopulationConfig {
            probes,
            public_services: (probes / 200).max(2),
            ..PopulationConfig::default()
        }
    }
}

/// The built population: probes plus the resolvers they use.
pub struct Population {
    /// All probes.
    pub probes: Vec<Probe>,
    /// All resolver caches (public backends first, then locals).
    pub resolvers: Vec<RecursiveResolver>,
    /// Public service → indices of its backend caches in `resolvers`.
    pub public_groups: Vec<Vec<usize>>,
}

impl Population {
    /// Builds a population.
    ///
    /// Public services alternate Google-like (TTL-capping) and
    /// OpenDNS-like (parent-centric, root-mirroring) policies, each
    /// with `backends_per_service` independent caches; local resolvers
    /// draw from `policy_mix`. Probe regions follow the Atlas skew
    /// ([`Region::atlas_weights`]).
    pub fn build(config: &PopulationConfig, roots: &[RootHint], rng: &mut SimRng) -> Population {
        let mut resolvers = Vec::new();
        let mut public_groups = Vec::new();
        let region_weights = Region::atlas_weights();

        for s in 0..config.public_services {
            let policy = if s % 2 == 0 {
                dnsttl_core::ResolverPolicy::google_like()
            } else {
                dnsttl_core::ResolverPolicy::opendns_like()
            };
            let mut group = Vec::new();
            for b in 0..config.backends_per_service.max(1) {
                let region = [Region::Eu, Region::Na, Region::As][(s + b) % 3];
                let idx = resolvers.len();
                resolvers.push(RecursiveResolver::new(
                    format!("public-{s}-{b}"),
                    policy.clone(),
                    region,
                    idx as u64,
                    roots.to_vec(),
                    rng.fork(1_000_000 + idx as u64),
                ));
                group.push(idx);
            }
            public_groups.push(group);
        }

        let weights = config.policy_mix.weights();
        let mut probes = Vec::with_capacity(config.probes);
        for pid in 0..config.probes {
            let region = Region::ALL[rng.weighted_index(&region_weights)];
            let n_resolvers = 1 + rng.weighted_index(&config.resolvers_per_probe);
            let mut slots = Vec::with_capacity(n_resolvers);
            let mut link_rtt_ms = Vec::with_capacity(n_resolvers);
            for _ in 0..n_resolvers {
                if rng.chance(config.public_fraction) && !public_groups.is_empty() {
                    let service = rng.below(public_groups.len() as u64) as usize;
                    if !slots.contains(&ResolverRef::Public(service)) {
                        slots.push(ResolverRef::Public(service));
                        // Public resolver: anycast frontend, but still a
                        // WAN hop: 8–60 ms.
                        link_rtt_ms.push(8 + rng.below(53));
                        continue;
                    }
                }
                // Dedicated local resolver in the probe's region.
                let policy = config
                    .policy_mix
                    .policy(rng.weighted_index(&weights))
                    .clone();
                let idx = resolvers.len();
                resolvers.push(RecursiveResolver::new(
                    format!("local-{idx}"),
                    policy,
                    region,
                    idx as u64,
                    roots.to_vec(),
                    rng.fork(idx as u64),
                ));
                slots.push(ResolverRef::Local(idx));
                // LAN/ISP resolver: 1–8 ms.
                link_rtt_ms.push(1 + rng.below(8));
            }
            probes.push(Probe {
                id: 10_000 + config.probe_id_base + pid as u32,
                region,
                resolvers: slots,
                link_rtt_ms,
                hijacked: rng.chance(config.hijacked_fraction),
            });
        }

        Population {
            probes,
            resolvers,
            public_groups,
        }
    }

    /// Resolves a slot reference to a concrete backend cache index for
    /// one query (public services pick a random backend — the cache
    /// fragmentation of \[48\]).
    pub fn pick_backend(&self, slot: ResolverRef, rng: &mut SimRng) -> usize {
        match slot {
            ResolverRef::Local(idx) => idx,
            ResolverRef::Public(service) => {
                let group = &self.public_groups[service];
                group[rng.below(group.len() as u64) as usize]
            }
        }
    }

    /// Enumerates all vantage points.
    pub fn vantage_points(&self) -> Vec<VantagePoint> {
        let mut vps = Vec::new();
        for (probe_idx, probe) in self.probes.iter().enumerate() {
            for slot in 0..probe.resolvers.len() {
                vps.push(VantagePoint {
                    probe_idx,
                    slot,
                    link_rtt_ms: probe.link_rtt_ms[slot],
                });
            }
        }
        vps
    }

    /// Number of probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Number of VPs (probe × resolver-slot pairs).
    pub fn vp_count(&self) -> usize {
        self.probes.iter().map(|p| p.resolvers.len()).sum()
    }

    /// Clears every resolver cache (between experiment phases).
    pub fn clear_caches(&mut self) {
        for r in &mut self.resolvers {
            r.clear_cache();
        }
    }

    /// Attaches a telemetry handle to every resolver cache in the
    /// population. Backend caches share the handle, so their counters
    /// aggregate into one registry.
    pub fn set_telemetry(&mut self, telemetry: &dnsttl_telemetry::Telemetry) {
        for r in &mut self.resolvers {
            r.set_telemetry(telemetry.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(probes: usize, seed: u64) -> Population {
        let mut rng = SimRng::seed_from(seed);
        Population::build(&PopulationConfig::small(probes), &[], &mut rng)
    }

    #[test]
    fn vp_count_exceeds_probe_count() {
        let pop = build(500, 1);
        assert_eq!(pop.probe_count(), 500);
        let vps = pop.vp_count();
        // ~1.65 resolvers per probe on average.
        assert!(vps > 600 && vps < 1_200, "vps = {vps}");
        assert_eq!(pop.vantage_points().len(), vps);
    }

    #[test]
    fn regions_skew_european() {
        let pop = build(2_000, 2);
        let eu = pop.probes.iter().filter(|p| p.region == Region::Eu).count() as f64 / 2_000.0;
        assert!((0.48..0.62).contains(&eu), "EU fraction {eu}");
    }

    #[test]
    fn public_services_have_fragmented_backends() {
        let pop = build(1_000, 3);
        assert!(!pop.public_groups.is_empty());
        for group in &pop.public_groups {
            assert_eq!(group.len(), 4);
        }
        // Random backend picks within one service spread across members.
        let mut rng = SimRng::seed_from(9);
        let service = ResolverRef::Public(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(pop.pick_backend(service, &mut rng));
        }
        assert_eq!(seen.len(), 4, "all backends eventually hit");
    }

    #[test]
    fn public_services_are_shared_across_probes() {
        let pop = build(1_000, 3);
        let mut usage = vec![0usize; pop.public_groups.len()];
        for p in &pop.probes {
            for slot in &p.resolvers {
                if let ResolverRef::Public(s) = slot {
                    usage[*s] += 1;
                }
            }
        }
        assert!(usage.iter().any(|&u| u >= 3), "usage {usage:?}");
    }

    #[test]
    fn hijacked_fraction_is_small_but_present() {
        let pop = build(3_000, 4);
        let hijacked = pop.probes.iter().filter(|p| p.hijacked).count();
        assert!(hijacked > 0);
        assert!((hijacked as f64) < 0.03 * 3_000.0, "hijacked {hijacked}");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = build(200, 7);
        let b = build(200, 7);
        assert_eq!(a.vp_count(), b.vp_count());
        for (pa, pb) in a.probes.iter().zip(&b.probes) {
            assert_eq!(pa.region, pb.region);
            assert_eq!(pa.resolvers, pb.resolvers);
        }
    }

    #[test]
    fn local_links_faster_than_public() {
        let pop = build(1_000, 5);
        let mut local = Vec::new();
        let mut public = Vec::new();
        for p in &pop.probes {
            for (slot_idx, slot) in p.resolvers.iter().enumerate() {
                match slot {
                    ResolverRef::Public(_) => public.push(p.link_rtt_ms[slot_idx]),
                    ResolverRef::Local(_) => local.push(p.link_rtt_ms[slot_idx]),
                }
            }
        }
        let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
        assert!(avg(&local) < avg(&public));
    }
}
