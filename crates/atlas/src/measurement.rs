//! Measurement scheduling.
//!
//! One measurement = one query repeated from every vantage point at a
//! fixed frequency for a fixed duration (the paper queries every 600 s
//! for 1–4 hours, Table 2 / Table 3). VPs start phase-shifted within
//! the first interval, as Atlas spreads its probes, which is what makes
//! shared caches observable: a VP that queries just after a cache fill
//! sees a decremented TTL.

use crate::dataset::{Dataset, MeasurementResult};
use crate::population::Population;
use dnsttl_netsim::{EventQueue, Network, SimDuration, SimRng, SimTime};
use dnsttl_telemetry::{EventKind, Telemetry, Value};
use dnsttl_wire::{Name, RData, Rcode, RecordType};

/// How query names are formed.
#[derive(Debug, Clone)]
pub enum QueryName {
    /// Every VP queries the same name (`NS .uy` style).
    Fixed(Name),
    /// Every probe queries `<probeid>.<suffix>` — the paper's
    /// cache-busting `PROBEID.sub.cachetest.net` pattern.
    PerProbe {
        /// The shared suffix under which probe IDs are prepended.
        suffix: Name,
    },
}

impl QueryName {
    /// The concrete name a probe queries.
    pub fn for_probe(&self, probe_id: u32) -> Name {
        match self {
            QueryName::Fixed(n) => n.clone(),
            QueryName::PerProbe { suffix } => suffix
                .child(&format!("p{probe_id}"))
                .expect("probe label is short and valid"),
        }
    }
}

/// One measurement campaign.
#[derive(Debug, Clone)]
pub struct MeasurementSpec {
    /// Name(s) to query.
    pub query: QueryName,
    /// Record type to query.
    pub qtype: RecordType,
    /// Inter-query interval per VP (the paper uses 600 s).
    pub frequency: SimDuration,
    /// Total campaign duration.
    pub duration: SimDuration,
    /// Campaign start time.
    pub start: SimTime,
}

impl MeasurementSpec {
    /// The paper's default cadence: every 600 s.
    pub fn every_600s(query: QueryName, qtype: RecordType, hours: u64) -> MeasurementSpec {
        MeasurementSpec {
            query,
            qtype,
            frequency: SimDuration::from_secs(600),
            duration: SimDuration::from_hours(hours),
            start: SimTime::ZERO,
        }
    }
}

/// A scheduled VP query event.
struct Tick {
    vp_index: usize,
}

/// A mid-campaign intervention: at `at`, `action` runs against the
/// network (and whatever world handles it captured). The §4
/// renumbering experiments fire one of these nine minutes in.
pub struct Hook {
    /// When to fire.
    pub at: SimTime,
    /// What to do.
    pub action: Box<dyn FnOnce(&mut Network)>,
}

/// Runs a measurement campaign over the population and network.
///
/// Every VP fires once per `frequency`, phase-shifted uniformly within
/// the first interval. Results land in a [`Dataset`] with the observed
/// TTL (first answer record), rcode, answer strings, and the
/// client-observed RTT = probe→resolver link + resolver work.
pub fn run_measurement(
    spec: &MeasurementSpec,
    population: &mut Population,
    net: &mut Network,
    rng: &mut SimRng,
) -> Dataset {
    run_measurement_with_hooks(spec, population, net, rng, Vec::new())
}

/// [`run_measurement`] with scheduled interventions.
pub fn run_measurement_with_hooks(
    spec: &MeasurementSpec,
    population: &mut Population,
    net: &mut Network,
    rng: &mut SimRng,
    hooks: Vec<Hook>,
) -> Dataset {
    let mut hooks = hooks;
    hooks.sort_by_key(|h| h.at);
    let mut hooks = hooks.into_iter().peekable();
    let vps = population.vantage_points();
    let mut queue: EventQueue<Tick> = EventQueue::new();
    for (vp_index, _) in vps.iter().enumerate() {
        let phase = SimDuration::from_millis(rng.below(spec.frequency.as_millis().max(1)));
        queue.schedule(spec.start + phase, Tick { vp_index });
    }
    let end = spec.start + spec.duration;
    // Every VP fires ceil(duration / frequency) times (phase shifts keep
    // each VP's full tick count inside the campaign window), so the
    // result volume is known up front.
    let ticks_per_vp = spec
        .duration
        .as_millis()
        .div_ceil(spec.frequency.as_millis().max(1)) as usize;
    let mut dataset = Dataset::with_capacity(vps.len() * ticks_per_vp);

    while let Some((now, tick)) = queue.pop() {
        while hooks.peek().map(|h| h.at <= now).unwrap_or(false) {
            let hook = hooks.next().expect("peeked");
            (hook.action)(net);
        }
        if now >= end {
            continue;
        }
        let vp = vps[tick.vp_index];
        let probe = &population.probes[vp.probe_idx];
        let qname = spec.query.for_probe(probe.id);
        let probe_region = probe.region;
        let probe_id = probe.id;
        let hijacked = probe.hijacked;
        let slot_ref = probe.resolvers[vp.slot];

        let backend = population.pick_backend(slot_ref, rng);
        let resolver = &mut population.resolvers[backend];
        let outcome = resolver.resolve(&qname, spec.qtype, now, net);

        let rtt_ms = vp.link_rtt_ms + outcome.elapsed.as_millis();
        let first_answer = outcome
            .answer
            .answers
            .iter()
            .find(|r| r.record_type() == spec.qtype || r.record_type() == RecordType::CNAME);
        let ttl = first_answer.map(|r| r.ttl.as_secs() as u64);
        let answer_strings: Vec<String> = outcome
            .answer
            .answers
            .iter()
            .map(|r| match &r.rdata {
                RData::A(a) => a.to_string(),
                RData::Aaaa(a) => a.to_string(),
                other => other.to_string(),
            })
            .collect();

        // A hijacked probe's answers are overwritten by a middlebox;
        // analysis marks them invalid, as the paper discards them.
        let valid = !hijacked
            && outcome.answer.header.rcode == Rcode::NoError
            && !outcome.answer.answers.is_empty();

        // Valid/discard accounting rides on the resolver's telemetry
        // handle (all population resolvers share one when attached).
        let telemetry: &Telemetry = population.resolvers[backend].telemetry();
        if valid {
            telemetry.count("atlas_measurements_valid", 1);
        } else {
            let reason = if hijacked {
                "hijacked"
            } else if outcome.answer.header.rcode != Rcode::NoError {
                "rcode"
            } else {
                "empty_answer"
            };
            telemetry.count_with("atlas_measurements_discarded", &[("reason", reason)], 1);
            telemetry.event(now.as_millis(), EventKind::Discard, |f| {
                f.push("probe_id", u64::from(probe_id));
                f.push("qname", qname.shared_str());
                f.push("reason", Value::literal(reason));
            });
        }

        dataset.push(MeasurementResult {
            at: now,
            probe_id,
            probe_idx: vp.probe_idx,
            vp_slot: vp.slot,
            resolver_idx: backend,
            region: probe_region,
            qname: qname.clone(),
            rcode: outcome.answer.header.rcode,
            ttl,
            answers: answer_strings,
            rtt_ms,
            cache_hit: outcome.cache_hit,
            valid,
            timed_out: outcome.answer.header.rcode == Rcode::ServFail,
        });

        queue.schedule(now + spec.frequency, tick);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
    use dnsttl_netsim::{LatencyModel, Region};
    use dnsttl_resolver::RootHint;
    use dnsttl_wire::Ttl;
    use std::cell::RefCell;
    use std::net::{IpAddr, Ipv4Addr};
    use std::rc::Rc;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    fn world() -> (Network, Vec<RootHint>) {
        let mut net = Network::new(LatencyModel::constant(20.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("uy", "a.nic.uy", Ttl::TWO_DAYS)
                .a("a.nic.uy", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("a.nic.uy").with_zone(
            ZoneBuilder::new("uy")
                .ns("uy", "a.nic.uy", Ttl::from_secs(300))
                .a("a.nic.uy", "198.51.100.2", Ttl::from_secs(120))
                .build(),
        );
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Sa, Rc::new(RefCell::new(child)));
        (
            net,
            vec![RootHint {
                ns_name: Name::parse("root").unwrap(),
                addr: ip(1),
            }],
        )
    }

    #[test]
    fn campaign_produces_expected_query_volume() {
        let (mut net, roots) = world();
        let mut rng = SimRng::seed_from(1);
        let mut pop = Population::build(&PopulationConfig::small(100), &roots, &mut rng);
        let spec = MeasurementSpec::every_600s(
            QueryName::Fixed(Name::parse("uy").unwrap()),
            RecordType::NS,
            1,
        );
        let ds = run_measurement(&spec, &mut pop, &mut net, &mut rng);
        // Each VP queries 6 times in an hour (phases keep all 6 in
        // range).
        let vps = pop.vp_count();
        assert_eq!(ds.len(), vps * 6);
    }

    #[test]
    fn ttls_reflect_centricity_mixture() {
        let (mut net, roots) = world();
        let mut rng = SimRng::seed_from(2);
        let mut pop = Population::build(&PopulationConfig::small(300), &roots, &mut rng);
        let spec = MeasurementSpec::every_600s(
            QueryName::Fixed(Name::parse("uy").unwrap()),
            RecordType::NS,
            2,
        );
        let ds = run_measurement(&spec, &mut pop, &mut net, &mut rng);
        let ttls: Vec<u64> = ds.valid().filter_map(|r| r.ttl).collect();
        assert!(!ttls.is_empty());
        let child_side = ttls.iter().filter(|&&t| t <= 300).count() as f64 / ttls.len() as f64;
        // The default policy mix is ~90% child-centric.
        assert!(child_side > 0.80, "child-side fraction {child_side}");
        // And some parent-centric answers exist with day+-scale TTLs.
        assert!(ttls.iter().any(|&t| t > 86_400));
    }

    #[test]
    fn per_probe_names_bust_shared_caches() {
        let (mut net, roots) = world();
        let mut rng = SimRng::seed_from(3);
        let mut pop = Population::build(&PopulationConfig::small(50), &roots, &mut rng);
        let spec = MeasurementSpec {
            query: QueryName::PerProbe {
                suffix: Name::parse("uy").unwrap(),
            },
            qtype: RecordType::A,
            frequency: SimDuration::from_secs(600),
            duration: SimDuration::from_hours(1),
            start: SimTime::ZERO,
        };
        let ds = run_measurement(&spec, &mut pop, &mut net, &mut rng);
        // Distinct probes produce distinct qnames.
        let mut qnames: Vec<String> = ds.results().iter().map(|r| r.qname.to_string()).collect();
        qnames.sort();
        qnames.dedup();
        assert_eq!(qnames.len(), pop.probe_count());
    }

    #[test]
    fn rtt_includes_link_and_resolver_time() {
        let (mut net, roots) = world();
        let mut rng = SimRng::seed_from(4);
        let mut pop = Population::build(&PopulationConfig::small(40), &roots, &mut rng);
        let spec = MeasurementSpec::every_600s(
            QueryName::Fixed(Name::parse("uy").unwrap()),
            RecordType::NS,
            1,
        );
        let ds = run_measurement(&spec, &mut pop, &mut net, &mut rng);
        // Cache misses must be slower than hits on average: misses pay
        // 20 ms per upstream exchange.
        let miss: Vec<u64> = ds
            .valid()
            .filter(|r| !r.cache_hit)
            .map(|r| r.rtt_ms)
            .collect();
        let hit: Vec<u64> = ds
            .valid()
            .filter(|r| r.cache_hit)
            .map(|r| r.rtt_ms)
            .collect();
        assert!(!miss.is_empty() && !hit.is_empty());
        let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(avg(&miss) > avg(&hit) + 10.0);
    }

    #[test]
    fn hijacked_probes_marked_invalid() {
        let (mut net, roots) = world();
        let mut rng = SimRng::seed_from(5);
        let config = PopulationConfig {
            hijacked_fraction: 0.5,
            ..PopulationConfig::small(100)
        };
        let mut pop = Population::build(&config, &roots, &mut rng);
        let spec = MeasurementSpec::every_600s(
            QueryName::Fixed(Name::parse("uy").unwrap()),
            RecordType::NS,
            1,
        );
        let ds = run_measurement(&spec, &mut pop, &mut net, &mut rng);
        let invalid = ds.results().iter().filter(|r| !r.valid).count();
        assert!(invalid > ds.len() / 3, "invalid {invalid} of {}", ds.len());
    }
}
