//! Live progress for long sharded campaigns.
//!
//! A [`ProgressSink`] is shared (`Arc`) between the coordinating
//! thread and the cell closures running under
//! [`run_cells_profiled`](crate::run_cells_profiled): each cell
//! reports its sim-time frontier and event count as it completes, and
//! the sink prints a heartbeat line to **stderr** at most once per
//! configured interval (plus once at the end).
//!
//! Heartbeats are wall-clock-driven and therefore nondeterministic —
//! which is fine, because they exist only on stderr and never enter
//! any artifact. Everything deterministic (CSV, JSONL, manifests)
//! stays byte-identical whether progress reporting is on or off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shared progress accumulator with rate-limited stderr heartbeats.
#[derive(Debug)]
pub struct ProgressSink {
    label: String,
    workers: usize,
    cells_total: usize,
    interval_ms: u64,
    started: Instant,
    cells_done: AtomicU64,
    events: AtomicU64,
    frontier_ms: AtomicU64,
    last_print_ms: AtomicU64,
}

impl ProgressSink {
    /// A sink for a campaign of `cells_total` cells on `workers`
    /// workers, printing at most one line per `interval_ms` of wall
    /// clock.
    pub fn new(label: &str, workers: usize, cells_total: usize, interval_ms: u64) -> ProgressSink {
        ProgressSink {
            label: label.to_string(),
            workers: workers.max(1),
            cells_total: cells_total.max(1),
            interval_ms,
            started: Instant::now(),
            cells_done: AtomicU64::new(0),
            events: AtomicU64::new(0),
            frontier_ms: AtomicU64::new(0),
            last_print_ms: AtomicU64::new(0),
        }
    }

    /// Reports one completed cell: the furthest simulated time the
    /// cell reached and how many events (queries, results) it
    /// processed. Prints a heartbeat when one is due.
    pub fn cell_finished(&self, frontier_ms: u64, events: u64) {
        let done = self.cells_done.fetch_add(1, Ordering::Relaxed) + 1;
        let total_events = self.events.fetch_add(events, Ordering::Relaxed) + events;
        self.frontier_ms.fetch_max(frontier_ms, Ordering::Relaxed);
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        let finished = done as usize >= self.cells_total;
        if !finished && elapsed_ms.saturating_sub(last) < self.interval_ms {
            return;
        }
        // One printer per due interval: whoever wins the CAS prints.
        if self
            .last_print_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let per_worker =
            total_events as f64 / (elapsed_ms.max(1) as f64 / 1000.0) / self.workers as f64;
        eprintln!(
            "[heartbeat {}] cells {}/{} · sim-frontier {}s · {:.0} events/s/worker ({} workers)",
            self.label,
            done,
            self.cells_total,
            self.frontier_ms.load(Ordering::Relaxed) / 1000,
            per_worker,
            self.workers,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_threads() {
        let sink = std::sync::Arc::new(ProgressSink::new("test", 4, 8, u64::MAX));
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let sink = std::sync::Arc::clone(&sink);
                scope.spawn(move || sink.cell_finished(i * 1_000, 10));
            }
        });
        assert_eq!(sink.cells_done.load(Ordering::Relaxed), 8);
        assert_eq!(sink.events.load(Ordering::Relaxed), 80);
        assert_eq!(sink.frontier_ms.load(Ordering::Relaxed), 7_000);
    }
}
