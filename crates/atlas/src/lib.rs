//! # dnsttl-atlas — a RIPE-Atlas-style measurement platform
//!
//! The paper's active experiments all have the same geometry: ~9k
//! probes scattered across six continents, each with one or more
//! recursive resolvers, issue the same DNS question every few hundred
//! seconds for a few hours, and record the response's TTL, contents,
//! and round-trip time. A *vantage point* (VP) is a (probe, resolver)
//! pair — the unit all of the paper's CDFs are drawn over.
//!
//! This crate reproduces that geometry over the simulated network:
//!
//! * [`Population`] — probes with Atlas-like regional skew, local
//!   resolvers, and shared public-resolver infrastructure (many probes
//!   behind the same Google-/OpenDNS-style cache, which is how cache
//!   sharing and TTL decrementation become visible in Figures 1–2);
//! * [`MeasurementSpec`] — a periodic query schedule, with fixed or
//!   per-probe (`PROBEID.…`) query names and a configurable duration,
//!   mirroring the parameters in the paper's Table 2 / Table 3;
//! * [`run_measurement`] — drives the schedule through the event queue
//!   and collects a [`Dataset`] of per-query results, with the same
//!   valid/discard bookkeeping the paper reports (hijacked or broken
//!   probes are simulated and discarded).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod measurement;
pub mod population;
pub mod progress;
pub mod scale;
pub mod shard;

pub use dataset::{Dataset, MeasurementResult};
pub use measurement::{
    run_measurement, run_measurement_with_hooks, Hook, MeasurementSpec, QueryName,
};
pub use population::{
    DiurnalCurve, Population, PopulationConfig, Probe, ResolverRef, VantagePoint, ZipfSampler,
};
pub use progress::ProgressSink;
pub use scale::{
    run_zipf_campaign, run_zipf_campaign_profiled, run_zipf_cell, ProbeFrame, ZipfCampaignConfig,
    ZipfCellOut, ZipfDataset, ZipfEngine, ZipfOutcome, ZipfRow, ZipfRunOpts,
};
pub use shard::{
    partition, partition_bases, run_cells, run_cells_profiled, ShardProfile, LOGICAL_SHARDS,
};
