//! The population scale path: Zipf/diurnal campaigns over
//! struct-of-arrays probe state.
//!
//! The classic measurement engine ([`crate::run_measurement`]) keeps
//! per-probe state in heap-allocated `Probe` structs and drives the
//! schedule through a binary event queue — fine at the paper's ~9k
//! probes, but at 10^5–10^6 probes the pointer chasing and per-event
//! heap traffic dominate. This module flattens the hot per-probe state
//! (next-fire time, popularity rank, resolver binding, per-probe
//! counters) into cell-local [`ProbeFrame`] arrays and replaces the
//! event queue with a **hierarchical timing-wheel sweep**:
//!
//! * fires execute in canonical `(fire_time_ms, probe_idx)` order —
//!   the wheel drains each slot bucket by full-key minimum, so the
//!   execution order is a pure function of probe state, independent of
//!   memory layout;
//! * schedules and reschedules are O(1) bucket pushes instead of
//!   O(log n) heap sifts, and the wheel's slot buckets are reused for
//!   the whole sweep — steady-state advancement allocates nothing
//!   (the windowed linear sweep this replaced rescanned every probe
//!   per window);
//! * probes rescheduled past the campaign horizon drop out exactly as
//!   they did under the heap.
//!
//! That first point is what the differential harness leans on: a
//! retained pointer-based oracle ([`ZipfEngine::Oracle`]) drives the
//! *same* per-fire routine through a shared `OracleHeap` (a plain
//! `BinaryHeap`) keyed by the same `(fire_time_ms, probe_idx)` tuple, and
//! `tests/soa_equivalence.rs` proves the two engines produce
//! bit-identical datasets, per-probe counters, cache statistics, and
//! telemetry.
//!
//! Campaigns fan out over the logical-cell harness
//! ([`crate::run_cells`]): each cell builds its own world and RNG from
//! `shard_seed(run_seed, cell_id)`, so any power-of-two cell count is
//! valid and the worker count never touches the output. The **cell
//! count, unlike the worker count, is part of the experiment's
//! identity** — changing it repartitions probes and reseeds cells.

use crate::population::{DiurnalCurve, ZipfSampler};
use crate::progress::ProgressSink;
use crate::shard::{partition, partition_bases, run_cells_profiled, ShardProfile};
use dnsttl_netsim::{shard_seed, LatencyModel, Network, Region, SimDuration, SimRng, TimingWheel};
use dnsttl_resolver::{CacheStats, RecursiveResolver, RootHint};
use dnsttl_telemetry::{MetricKey, Telemetry, TelemetryParts};
use dnsttl_wire::{Name, Rcode, RecordType, Ttl};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Campaign-level counters, keyed once so the hot loop never hashes
/// metric names.
const ZIPF_QUERIES: MetricKey = MetricKey::new("zipf_queries_total");
const ZIPF_HITS: MetricKey = MetricKey::new("zipf_cache_hits_total");

/// The retained ordered scheduler every oracle path shares: a min-heap
/// over a canonical `(time, index)` key, drained in exact key order.
///
/// Both the k-way dataset merge ([`ZipfDataset::merge_cells`]) and the
/// pointer-based campaign oracle ([`run_oracle`]) pull from this one
/// helper, so the timing-wheel production sweep has a single
/// heap-ordered comparison point — deliberately *not* the netsim
/// `EventQueue` (whose ties break by insertion order, which would
/// diverge from the canonical order on reschedules) and deliberately
/// not the wheel itself (an oracle must not share the implementation it
/// checks).
struct OracleHeap<K: Ord> {
    heap: BinaryHeap<Reverse<K>>,
}

impl<K: Ord> OracleHeap<K> {
    fn new() -> OracleHeap<K> {
        OracleHeap {
            heap: BinaryHeap::new(),
        }
    }

    fn push(&mut self, key: K) {
        self.heap.push(Reverse(key));
    }

    fn pop(&mut self) -> Option<K> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

impl<K: Ord> FromIterator<K> for OracleHeap<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> OracleHeap<K> {
        OracleHeap {
            heap: iter.into_iter().map(Reverse).collect(),
        }
    }
}

/// Configuration for one Zipf/diurnal population campaign.
#[derive(Debug, Clone)]
pub struct ZipfCampaignConfig {
    /// Total probes across all cells (the scale knob: 10^5–10^6).
    pub probes: usize,
    /// Size of the queried-name universe (`r0.zipf` … `rN-1.zipf`).
    pub names: usize,
    /// Zipf exponent of name popularity (≈1.0 for web-like traffic).
    pub exponent: f64,
    /// Recursive resolver caches per cell; probes bind to one at build.
    pub resolvers_per_cell: usize,
    /// Base inter-query interval (the paper's measurement frequency).
    pub frequency: SimDuration,
    /// Campaign duration in simulated time.
    pub duration: SimDuration,
    /// Diurnal load curve warping each probe's interval.
    pub diurnal: DiurnalCurve,
    /// TTL of the authoritative `A` records being measured.
    pub record_ttl: Ttl,
    /// Logical cell count — **must be a power of two** (validated by
    /// [`run_zipf_campaign`]). Part of the experiment's identity.
    pub cells: usize,
}

impl ZipfCampaignConfig {
    /// A small campaign for tests: `probes` probes over a short day.
    pub fn small(probes: usize) -> ZipfCampaignConfig {
        ZipfCampaignConfig {
            probes,
            names: (probes / 4).clamp(64, 2_048),
            exponent: 1.0,
            resolvers_per_cell: 4,
            frequency: SimDuration::from_secs(600),
            duration: SimDuration::from_hours(6),
            diurnal: DiurnalCurve::new(0.6, 14.0),
            // The paper's modal A-record TTL: longer than any warped
            // polling interval, so repeat queries hit even in sparse
            // test populations.
            record_ttl: Ttl::HOUR,
            cells: crate::shard::LOGICAL_SHARDS,
        }
    }

    /// The large-scale configuration the bench trajectory runs: enough
    /// cells (64) to saturate an 8-worker fan-out with headroom.
    pub fn large(probes: usize) -> ZipfCampaignConfig {
        ZipfCampaignConfig {
            probes,
            names: 2_048,
            exponent: 1.1,
            resolvers_per_cell: 4,
            frequency: SimDuration::from_secs(600),
            duration: SimDuration::from_hours(2),
            diurnal: DiurnalCurve::new(0.6, 14.0),
            record_ttl: Ttl::from_secs(300),
            cells: 64,
        }
    }

    /// Errors unless the cell count is a nonzero power of two. The
    /// partition arithmetic works for any count, but restricting the
    /// knob keeps the space of experiment identities enumerable (16,
    /// 64, 256, …) instead of continuous.
    pub fn validate_cells(&self) -> Result<(), String> {
        if self.cells == 0 || !self.cells.is_power_of_two() {
            return Err(format!(
                "cell count must be a power of two, got {}",
                self.cells
            ));
        }
        Ok(())
    }
}

/// Which inner-loop engine drives a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfEngine {
    /// The production path: flattened struct-of-arrays probe state,
    /// windowed linear sweep.
    Soa,
    /// The differential oracle: one boxed struct per probe behind a
    /// binary heap — the layout the SoA path replaced, retained so the
    /// equivalence claim stays executable.
    Oracle,
}

/// One query result row, compact enough to hold millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfRow {
    /// Fire time in simulated milliseconds.
    pub at_ms: u64,
    /// Global probe index (cell-local index + the cell's probe base).
    pub probe: u32,
    /// Popularity rank of the queried name.
    pub rank: u32,
    /// Global resolver index (rebased at merge).
    pub resolver: u32,
    /// Client-observed RTT: probe→resolver link plus resolver work.
    pub rtt_ms: u32,
    /// True when the resolver answered from cache.
    pub cache_hit: bool,
    /// True when the response was a usable NOERROR answer.
    pub ok: bool,
}

/// A campaign dataset: rows in canonical `(at_ms, …)` merge order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZipfDataset {
    rows: Vec<ZipfRow>,
}

impl ZipfDataset {
    /// All rows.
    pub fn rows(&self) -> &[ZipfRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no queries fired.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fraction of queries answered from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().filter(|r| r.cache_hit).count() as f64 / self.rows.len() as f64
    }

    /// FNV-1a over every row in order: a cheap order-sensitive
    /// fingerprint. Digest equality across worker counts (or engines)
    /// certifies the identical row sequence.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        for r in &self.rows {
            mix(r.at_ms);
            mix(r.probe as u64);
            mix(r.rank as u64);
            mix(r.resolver as u64);
            mix(r.rtt_ms as u64);
            mix(u64::from(r.cache_hit) << 1 | u64::from(r.ok));
        }
        h
    }

    /// Merges per-cell datasets into one, parameterized by however
    /// many parts the caller produced — there is no fixed cell count
    /// anywhere in the re-sequencing key. Each part's rows are already
    /// sorted by fire time (the engines emit them that way); the merge
    /// is a heap-based k-way merge on `(at_ms, part_idx)`, so
    /// simultaneous fires in different cells land in cell order — the
    /// same total order a single-cell run of the concatenated
    /// population would produce. Resolver indices are rebased by each
    /// part's `resolver_base`; probe indices are already global.
    pub fn merge_cells(parts: Vec<(ZipfDataset, u32)>) -> ZipfDataset {
        let total: usize = parts.iter().map(|(d, _)| d.len()).sum();
        let mut rows = Vec::with_capacity(total);
        let mut iters: Vec<_> = parts
            .into_iter()
            .map(|(d, base)| (d.rows.into_iter(), base))
            .collect();
        let mut heap: OracleHeap<(u64, usize)> = OracleHeap::new();
        let mut heads: Vec<Option<ZipfRow>> = Vec::with_capacity(iters.len());
        for (idx, (it, _)) in iters.iter_mut().enumerate() {
            let head = it.next();
            if let Some(r) = &head {
                heap.push((r.at_ms, idx));
            }
            heads.push(head);
        }
        while let Some((_, idx)) = heap.pop() {
            let mut row = heads[idx].take().expect("head present while queued");
            row.resolver += iters[idx].1;
            rows.push(row);
            if let Some(next) = iters[idx].0.next() {
                heap.push((next.at_ms, idx));
                heads[idx] = Some(next);
            }
        }
        ZipfDataset { rows }
    }
}

/// Cell-local probe state, flattened into struct-of-arrays buffers:
/// the per-cell inner loop reads each array linearly instead of
/// chasing one heap allocation per probe.
#[derive(Debug, Clone, Default)]
pub struct ProbeFrame {
    /// Next scheduled fire time per probe, in simulated ms.
    pub next_fire_ms: Vec<u64>,
    /// Popularity rank per probe (index into the name universe).
    pub rank: Vec<u32>,
    /// Cell-local resolver binding per probe (fixed at build).
    pub resolver: Vec<u32>,
    /// Probe→resolver link RTT per probe, in ms.
    pub link_rtt_ms: Vec<u32>,
    /// Queries issued per probe.
    pub queries: Vec<u32>,
    /// Cache hits observed per probe.
    pub hits: Vec<u32>,
}

impl ProbeFrame {
    /// Draws `probes` probes' static state and initial phases from
    /// `rng`. Both engines share this routine, so their RNG
    /// consumption is identical by construction.
    pub fn build(
        cfg: &ZipfCampaignConfig,
        sampler: &ZipfSampler,
        probes: usize,
        rng: &mut SimRng,
    ) -> ProbeFrame {
        let base_ms = cfg.frequency.as_millis().max(1);
        let resolvers = cfg.resolvers_per_cell.max(1) as u64;
        let mut frame = ProbeFrame {
            next_fire_ms: Vec::with_capacity(probes),
            rank: Vec::with_capacity(probes),
            resolver: Vec::with_capacity(probes),
            link_rtt_ms: Vec::with_capacity(probes),
            queries: vec![0; probes],
            hits: vec![0; probes],
        };
        for _ in 0..probes {
            frame.rank.push(sampler.sample(rng) as u32);
            frame.resolver.push(rng.below(resolvers) as u32);
            // LAN/ISP link: 1–8 ms, same band as Population::build.
            frame.link_rtt_ms.push(1 + rng.below(8) as u32);
            frame.next_fire_ms.push(rng.below(base_ms));
        }
        frame
    }

    /// Number of probes in the frame.
    pub fn len(&self) -> usize {
        self.next_fire_ms.len()
    }

    /// True when the frame holds no probes.
    pub fn is_empty(&self) -> bool {
        self.next_fire_ms.is_empty()
    }
}

/// What one cell returns to the coordinator: plain data only (the
/// world's `Rc`-backed handles never cross the thread boundary).
#[derive(Debug, Default)]
pub struct ZipfCellOut {
    /// Rows in fire order; probe indices global, resolver indices
    /// cell-local until [`ZipfDataset::merge_cells`] rebases them.
    pub dataset: ZipfDataset,
    /// Queries issued per cell-local probe.
    pub queries: Vec<u32>,
    /// Cache hits per cell-local probe.
    pub hits: Vec<u32>,
    /// Summed cache statistics over the cell's resolvers.
    pub cache: CacheStats,
    /// Resolver caches the cell instantiated.
    pub resolvers: usize,
}

/// The merged campaign outcome.
#[derive(Debug, Default)]
pub struct ZipfOutcome {
    /// All rows, merged in canonical order with global indices.
    pub dataset: ZipfDataset,
    /// Queries per probe, global probe order.
    pub queries_per_probe: Vec<u32>,
    /// Cache hits per probe, global probe order.
    pub hits_per_probe: Vec<u32>,
    /// Summed cache statistics across every cell's resolvers.
    pub cache: CacheStats,
    /// Total resolver caches across cells.
    pub resolvers: usize,
    /// Drained per-cell telemetry, in cell order, ready for
    /// `Telemetry::absorb_shards` (empty when telemetry was off).
    pub parts: Vec<TelemetryParts>,
}

/// Runtime options orthogonal to the experiment's identity: none of
/// these may change a single output byte (`tests/shard_equivalence.rs`
/// holds the worker knob to that; telemetry only adds observability
/// artifacts).
#[derive(Debug, Clone)]
pub struct ZipfRunOpts {
    /// Worker threads for the cell fan-out (throughput only).
    pub workers: usize,
    /// Inner-loop engine (the oracle exists for differential tests).
    pub engine: ZipfEngine,
    /// Collect telemetry parts (counters + sim-time series) per cell.
    pub telemetry: bool,
    /// Sim-time series bucket width, when telemetry is on.
    pub ts_bucket_ms: u64,
    /// Sim-time series span cap, when telemetry is on.
    pub ts_span_cap: usize,
    /// Optional heartbeat sink for long campaigns.
    pub progress: Option<Arc<ProgressSink>>,
}

impl Default for ZipfRunOpts {
    fn default() -> ZipfRunOpts {
        ZipfRunOpts {
            workers: 1,
            engine: ZipfEngine::Soa,
            telemetry: false,
            ts_bucket_ms: dnsttl_telemetry::DEFAULT_TS_BUCKET_MS,
            ts_span_cap: dnsttl_telemetry::DEFAULT_TS_SPAN_CAP,
            progress: None,
        }
    }
}

/// Builds one cell's authoritative world: a root delegating `zipf` to
/// a child zone holding one `A` record per universe name.
fn zipf_world(names: usize, record_ttl: Ttl) -> (Network, Vec<RootHint>) {
    use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
    use std::cell::RefCell;
    use std::net::IpAddr;
    use std::rc::Rc;

    let root_addr: IpAddr = "198.41.0.4".parse().expect("static");
    let child_addr: IpAddr = "192.0.2.53".parse().expect("static");
    let root = AuthoritativeServer::new("root").with_zone(
        ZoneBuilder::new(".")
            .ns("zipf", "ns.zipf", Ttl::TWO_DAYS)
            .a("ns.zipf", "192.0.2.53", Ttl::TWO_DAYS)
            .build(),
    );
    let mut child_zone = ZoneBuilder::new("zipf").ns("zipf", "ns.zipf", Ttl::HOUR).a(
        "ns.zipf",
        "192.0.2.53",
        Ttl::HOUR,
    );
    for k in 0..names {
        let addr = format!("10.{}.{}.{}", (k >> 16) & 255, (k >> 8) & 255, k & 255);
        child_zone = child_zone.a(&format!("r{k}.zipf"), &addr, record_ttl);
    }
    let child = AuthoritativeServer::new("ns.zipf").with_zone(child_zone.build());
    let mut net = Network::new(LatencyModel::constant(5.0));
    net.register(root_addr, Region::Eu, Rc::new(RefCell::new(root)));
    net.register(child_addr, Region::Eu, Rc::new(RefCell::new(child)));
    let roots = vec![RootHint {
        ns_name: Name::parse("root").expect("static"),
        addr: root_addr,
    }];
    (net, roots)
}

/// Executes one fire: resolve the probe's name, record the row, bump
/// campaign counters. Both engines call this with identical arguments
/// in identical order, so per-query behaviour is engine-invariant by
/// construction. Returns whether the resolver answered from cache.
#[allow(clippy::too_many_arguments)]
fn fire_one(
    t_ms: u64,
    global_probe: u32,
    rank: u32,
    resolver_local: u32,
    link_rtt_ms: u32,
    names: &[Name],
    resolvers: &mut [RecursiveResolver],
    net: &mut Network,
    telemetry: &Telemetry,
    out: &mut ZipfDataset,
) -> bool {
    let qname = &names[rank as usize];
    let now = dnsttl_netsim::SimTime::from_millis(t_ms);
    let outcome = resolvers[resolver_local as usize].resolve(qname, RecordType::A, now, net);
    let ok = outcome.answer.header.rcode == Rcode::NoError && !outcome.answer.answers.is_empty();
    let row = ZipfRow {
        at_ms: t_ms,
        probe: global_probe,
        rank,
        resolver: resolver_local,
        rtt_ms: link_rtt_ms + outcome.elapsed.as_millis() as u32,
        cache_hit: outcome.cache_hit,
        ok,
    };
    out.rows.push(row);
    telemetry.count_keyed_at(&ZIPF_QUERIES, 1, t_ms);
    if outcome.cache_hit {
        telemetry.count_keyed_at(&ZIPF_HITS, 1, t_ms);
    }
    outcome.cache_hit
}

/// Runs one cell end to end with the chosen engine.
///
/// The RNG stream is `shard_seed`-derived by the caller; world
/// construction, resolver forks, and frame build consume it in a fixed
/// order shared by both engines.
#[allow(clippy::too_many_arguments)]
pub fn run_zipf_cell(
    cfg: &ZipfCampaignConfig,
    sampler: &ZipfSampler,
    names: &[Name],
    cell_probes: usize,
    probe_base: u32,
    seed: u64,
    engine: ZipfEngine,
    telemetry: &Telemetry,
) -> ZipfCellOut {
    if cell_probes == 0 {
        // Nothing to simulate: skip world construction entirely so an
        // oversized cell count doesn't pay for empty worlds. Zero
        // resolvers keeps the merge rebase exact.
        return ZipfCellOut::default();
    }
    let (mut net, roots) = zipf_world(names.len(), cfg.record_ttl);
    let mut rng = SimRng::seed_from(seed);
    let mut resolvers: Vec<RecursiveResolver> = (0..cfg.resolvers_per_cell.max(1))
        .map(|i| {
            RecursiveResolver::new(
                format!("zipf-{probe_base}-{i}"),
                dnsttl_core::ResolverPolicy::default(),
                Region::Eu,
                i as u64,
                roots.clone(),
                rng.fork(1_000_000 + i as u64),
            )
        })
        .collect();
    let mut frame = ProbeFrame::build(cfg, sampler, cell_probes, &mut rng);

    let mut dataset = ZipfDataset::default();
    let base_ms = cfg.frequency.as_millis().max(1);
    let end_ms = cfg.duration.as_millis();
    match engine {
        ZipfEngine::Soa => {
            run_soa_sweep(
                cfg,
                &mut frame,
                probe_base,
                names,
                &mut resolvers,
                &mut net,
                telemetry,
                &mut dataset,
                base_ms,
                end_ms,
            );
        }
        ZipfEngine::Oracle => {
            run_oracle(
                cfg,
                &mut frame,
                probe_base,
                names,
                &mut resolvers,
                &mut net,
                telemetry,
                &mut dataset,
                base_ms,
                end_ms,
            );
        }
    }

    let mut cache = CacheStats::default();
    for r in &resolvers {
        cache.absorb(&r.cache().stats());
    }
    ZipfCellOut {
        dataset,
        queries: frame.queries,
        hits: frame.hits,
        cache,
        resolvers: resolvers.len(),
    }
}

/// Below this frame size the SoA sweep skips the timing wheel and
/// linearly min-scans the fire-time column instead: for a handful of
/// probes the scan touches a couple of cache lines, while the wheel
/// pays struct construction plus per-pop occupancy-bitmap walks.
/// Sharded cells (~20 probes quick, ~100 full) sit squarely under it;
/// full zipf campaigns (thousands of probes per cell) stay on the
/// wheel. Both paths drain in identical `(fire_time, probe_idx)`
/// order, so the choice is invisible to the oracle suites.
const SMALL_SWEEP_MAX: usize = 128;

/// The production inner loop: a hierarchical timing wheel over the SoA
/// frame. The frame's initial fire times seed the wheel once; every pop
/// yields the globally earliest `(fire_time_ms, probe_idx)` pair — the
/// exact order the oracle's heap produces, because the wheel drains
/// each bucket by full-key minimum — and each fire reschedules itself
/// with one O(1) bucket push. Probes whose next fire crosses the
/// campaign horizon pop once more and drop without rescheduling,
/// mirroring the oracle. The wheel's slot buckets persist across the
/// whole sweep, so steady-state advancement allocates nothing (the
/// windowed linear sweep this replaced rebuilt a batch vector and
/// rescanned every probe per window).
#[allow(clippy::too_many_arguments)]
fn run_soa_sweep(
    cfg: &ZipfCampaignConfig,
    frame: &mut ProbeFrame,
    probe_base: u32,
    names: &[Name],
    resolvers: &mut [RecursiveResolver],
    net: &mut Network,
    telemetry: &Telemetry,
    dataset: &mut ZipfDataset,
    base_ms: u64,
    end_ms: u64,
) {
    if frame.next_fire_ms.len() <= SMALL_SWEEP_MAX {
        // Tiny frames (sharded cells hold ~20–100 probes): a linear
        // min-scan over the contiguous fire-time column beats the
        // wheel's per-pop bookkeeping, and picking the minimum
        // `(fire_time, probe_idx)` key reproduces the wheel's (and the
        // oracle heap's) drain order exactly. A probe whose next fire
        // crosses the horizon is simply never the sub-horizon minimum
        // again, which matches the wheel's pop-and-drop.
        loop {
            let mut best: Option<(u64, u32)> = None;
            for (i, &t) in frame.next_fire_ms.iter().enumerate() {
                let key = (t, i as u32);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((t, i)) = best else { break };
            if t >= end_ms {
                break; // the minimum crossed the horizon: all remaining did
            }
            let idx = i as usize;
            let hit = fire_one(
                t,
                probe_base + i,
                frame.rank[idx],
                frame.resolver[idx],
                frame.link_rtt_ms[idx],
                names,
                resolvers,
                net,
                telemetry,
                dataset,
            );
            frame.queries[idx] += 1;
            frame.hits[idx] += u32::from(hit);
            let next = t + cfg.diurnal.interval_ms(base_ms, t);
            debug_assert!(next > t, "warped intervals are always positive");
            frame.next_fire_ms[idx] = next;
        }
        return;
    }
    let mut wheel: TimingWheel<u32> = TimingWheel::new();
    for (i, &t) in frame.next_fire_ms.iter().enumerate() {
        wheel.insert(t, i as u32);
    }
    while let Some((t, i)) = wheel.pop_first() {
        if t >= end_ms {
            continue; // past the horizon: drop without rescheduling
        }
        let idx = i as usize;
        let hit = fire_one(
            t,
            probe_base + i,
            frame.rank[idx],
            frame.resolver[idx],
            frame.link_rtt_ms[idx],
            names,
            resolvers,
            net,
            telemetry,
            dataset,
        );
        frame.queries[idx] += 1;
        frame.hits[idx] += u32::from(hit);
        let next = t + cfg.diurnal.interval_ms(base_ms, t);
        debug_assert!(next > t, "warped intervals are always positive");
        frame.next_fire_ms[idx] = next;
        wheel.insert(next, i);
    }
}

/// The pointer-based oracle: one boxed struct per probe (the layout
/// the SoA frame replaced) behind the shared [`OracleHeap`], keyed by
/// the canonical `(fire_time_ms, probe_idx)` tuple the wheel sweep
/// must reproduce.
#[allow(clippy::too_many_arguments)]
fn run_oracle(
    cfg: &ZipfCampaignConfig,
    frame: &mut ProbeFrame,
    probe_base: u32,
    names: &[Name],
    resolvers: &mut [RecursiveResolver],
    net: &mut Network,
    telemetry: &Telemetry,
    dataset: &mut ZipfDataset,
    base_ms: u64,
    end_ms: u64,
) {
    struct OracleProbe {
        rank: u32,
        resolver: u32,
        link_rtt_ms: u32,
        queries: u32,
        hits: u32,
    }
    let mut probes: Vec<Box<OracleProbe>> = (0..frame.len())
        .map(|i| {
            Box::new(OracleProbe {
                rank: frame.rank[i],
                resolver: frame.resolver[i],
                link_rtt_ms: frame.link_rtt_ms[i],
                queries: 0,
                hits: 0,
            })
        })
        .collect();
    let mut heap: OracleHeap<(u64, u32)> = frame
        .next_fire_ms
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();
    while let Some((t, i)) = heap.pop() {
        if t >= end_ms {
            continue; // past the horizon: drop without rescheduling
        }
        let p = &mut probes[i as usize];
        let hit = fire_one(
            t,
            probe_base + i,
            p.rank,
            p.resolver,
            p.link_rtt_ms,
            names,
            resolvers,
            net,
            telemetry,
            dataset,
        );
        p.queries += 1;
        p.hits += u32::from(hit);
        heap.push((t + cfg.diurnal.interval_ms(base_ms, t), i));
    }
    for (i, p) in probes.iter().enumerate() {
        frame.queries[i] = p.queries;
        frame.hits[i] = p.hits;
    }
}

/// Runs a full campaign: partitions probes over `cfg.cells` logical
/// cells, executes them on `opts.workers` threads, and merges every
/// output in fixed cell order. Byte-identical for any worker count.
///
/// # Panics
/// Panics when `cfg.cells` is not a power of two — CLI layers validate
/// first ([`ZipfCampaignConfig::validate_cells`]).
pub fn run_zipf_campaign(
    cfg: &ZipfCampaignConfig,
    run_seed: u64,
    opts: &ZipfRunOpts,
) -> ZipfOutcome {
    run_zipf_campaign_profiled(cfg, run_seed, opts).0
}

/// [`run_zipf_campaign`] plus the wall-clock [`ShardProfile`] of the
/// fan-out (bench attribution; never enters deterministic artifacts).
pub fn run_zipf_campaign_profiled(
    cfg: &ZipfCampaignConfig,
    run_seed: u64,
    opts: &ZipfRunOpts,
) -> (ZipfOutcome, ShardProfile) {
    cfg.validate_cells().expect("validated by CLI layers");
    let sampler = ZipfSampler::new(cfg.names.max(1), cfg.exponent);
    let names: Vec<Name> = (0..cfg.names.max(1))
        .map(|k| Name::parse(&format!("r{k}.zipf")).expect("static name shape"))
        .collect();
    let sizes = partition(cfg.probes, cfg.cells);
    let bases = partition_bases(&sizes);

    let (cell_outs, profile) = run_cells_profiled(opts.workers, cfg.cells, |cell| {
        let telemetry = if opts.telemetry {
            let t = Telemetry::new();
            t.configure_timeseries(opts.ts_bucket_ms, opts.ts_span_cap);
            t
        } else {
            Telemetry::disabled()
        };
        let out = run_zipf_cell(
            cfg,
            &sampler,
            &names,
            sizes[cell],
            bases[cell] as u32,
            shard_seed(run_seed, cell as u64),
            opts.engine,
            &telemetry,
        );
        if let Some(sink) = &opts.progress {
            sink.cell_finished(cfg.duration.as_millis(), out.dataset.len() as u64);
        }
        (out, telemetry.take_parts())
    });

    let mut outcome = ZipfOutcome::default();
    let mut ds_parts = Vec::with_capacity(cell_outs.len());
    let mut resolver_base = 0u32;
    for (out, parts) in cell_outs {
        ds_parts.push((out.dataset, resolver_base));
        resolver_base += out.resolvers as u32;
        outcome.resolvers += out.resolvers;
        outcome.queries_per_probe.extend_from_slice(&out.queries);
        outcome.hits_per_probe.extend_from_slice(&out.hits);
        outcome.cache.absorb(&out.cache);
        outcome.parts.push(parts);
    }
    if !opts.telemetry {
        outcome.parts.clear();
    }
    outcome.dataset = ZipfDataset::merge_cells(ds_parts);
    (outcome, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ZipfCampaignConfig {
        let mut cfg = ZipfCampaignConfig::small(96);
        cfg.cells = 4;
        cfg.duration = SimDuration::from_hours(1);
        cfg
    }

    #[test]
    fn campaign_is_deterministic_and_merges_all_probes() {
        let cfg = tiny_cfg();
        let a = run_zipf_campaign(&cfg, 7, &ZipfRunOpts::default());
        let b = run_zipf_campaign(&cfg, 7, &ZipfRunOpts::default());
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.queries_per_probe.len(), cfg.probes);
        assert_eq!(a.dataset.digest(), b.dataset.digest());
        assert!(!a.dataset.is_empty());
        let total: u64 = a.queries_per_probe.iter().map(|&q| q as u64).sum();
        assert_eq!(total, a.dataset.len() as u64);
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let cfg = tiny_cfg();
        let seq = run_zipf_campaign(&cfg, 11, &ZipfRunOpts::default());
        for workers in [2, 4, 8] {
            let par = run_zipf_campaign(
                &cfg,
                11,
                &ZipfRunOpts {
                    workers,
                    ..ZipfRunOpts::default()
                },
            );
            assert_eq!(seq.dataset, par.dataset, "workers={workers}");
            assert_eq!(seq.queries_per_probe, par.queries_per_probe);
            assert_eq!(seq.cache, par.cache);
        }
    }

    #[test]
    fn cell_count_is_part_of_identity() {
        let cfg16 = tiny_cfg();
        let mut cfg8 = tiny_cfg();
        cfg8.cells = 8;
        let a = run_zipf_campaign(&cfg16, 5, &ZipfRunOpts::default());
        let b = run_zipf_campaign(&cfg8, 5, &ZipfRunOpts::default());
        assert_ne!(
            a.dataset.digest(),
            b.dataset.digest(),
            "repartitioning must reseed cells"
        );
    }

    #[test]
    fn non_power_of_two_cells_rejected() {
        let mut cfg = tiny_cfg();
        cfg.cells = 12;
        assert!(cfg.validate_cells().is_err());
        cfg.cells = 64;
        assert!(cfg.validate_cells().is_ok());
    }

    #[test]
    fn merge_handles_empty_and_unbalanced_parts() {
        let row = |at_ms: u64, probe: u32, resolver: u32| ZipfRow {
            at_ms,
            probe,
            rank: 0,
            resolver,
            rtt_ms: 1,
            cache_hit: false,
            ok: true,
        };
        let a = ZipfDataset {
            rows: vec![row(5, 0, 0), row(9, 1, 1)],
        };
        let b = ZipfDataset::default();
        let c = ZipfDataset {
            rows: vec![row(5, 2, 0)],
        };
        let merged = ZipfDataset::merge_cells(vec![(a, 0), (b, 4), (c, 6)]);
        let got: Vec<(u64, u32, u32)> = merged
            .rows()
            .iter()
            .map(|r| (r.at_ms, r.probe, r.resolver))
            .collect();
        // Tie at t=5 lands in part (cell) order; resolvers rebased.
        assert_eq!(got, vec![(5, 0, 0), (5, 2, 6), (9, 1, 1)]);
    }
}
