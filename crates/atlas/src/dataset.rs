//! Measurement result datasets.

use dnsttl_netsim::{Region, SimTime};
use dnsttl_wire::{Name, Rcode};

/// One query's outcome as the measurement platform records it.
#[derive(Debug, Clone)]
pub struct MeasurementResult {
    /// When the VP fired.
    pub at: SimTime,
    /// Atlas-style probe identifier.
    pub probe_id: u32,
    /// Index of the probe in the population.
    pub probe_idx: usize,
    /// Which of the probe's resolver slots fired (identifies the VP
    /// together with `probe_idx`).
    pub vp_slot: usize,
    /// Index of the concrete resolver backend that served the query
    /// (public services spread queries over several backends).
    pub resolver_idx: usize,
    /// Probe region (self-reported geolocation in the paper).
    pub region: Region,
    /// The name queried.
    pub qname: Name,
    /// Response code seen by the probe.
    pub rcode: Rcode,
    /// TTL of the first answer record, if any — the quantity behind
    /// Figures 1, 2 and 9.
    pub ttl: Option<u64>,
    /// Stringified answer data (addresses), used to tell the original
    /// from the renumbered server in Figures 6–8.
    pub answers: Vec<String>,
    /// Client-observed round-trip in ms (probe→resolver link plus the
    /// resolver's upstream work) — the quantity behind Figures 10–11.
    pub rtt_ms: u64,
    /// True when the resolver answered fully from cache.
    pub cache_hit: bool,
    /// False for hijacked probes or non-NOERROR/empty responses; the
    /// paper's "discarded" rows.
    pub valid: bool,
    /// True when the resolver gave up (SERVFAIL after timeouts).
    pub timed_out: bool,
}

/// An append-only collection of measurement results with the
/// valid/discard accounting the paper reports per experiment.
#[derive(Debug, Default)]
pub struct Dataset {
    results: Vec<MeasurementResult>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// An empty dataset pre-sized for `n` results, so a measurement
    /// loop with a known query volume never re-grows the buffer.
    pub fn with_capacity(n: usize) -> Dataset {
        Dataset {
            results: Vec::with_capacity(n),
        }
    }

    /// Appends one result.
    pub fn push(&mut self, r: MeasurementResult) {
        self.results.push(r);
    }

    /// All results in arrival order.
    pub fn results(&self) -> &[MeasurementResult] {
        &self.results
    }

    /// Total queries issued.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when no queries were recorded.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Valid responses only (the denominators in the paper's CDFs).
    pub fn valid(&self) -> impl Iterator<Item = &MeasurementResult> {
        self.results.iter().filter(|r| r.valid)
    }

    /// Count of valid responses.
    pub fn valid_count(&self) -> usize {
        self.valid().count()
    }

    /// Count of discarded (invalid) responses.
    pub fn discarded_count(&self) -> usize {
        self.len() - self.valid_count()
    }

    /// Count of timeouts (SERVFAIL outcomes).
    pub fn timeout_count(&self) -> usize {
        self.results.iter().filter(|r| r.timed_out).count()
    }

    /// Observed TTLs of valid responses.
    pub fn ttls(&self) -> Vec<u64> {
        self.valid().filter_map(|r| r.ttl).collect()
    }

    /// Observed RTTs (ms) of valid responses.
    pub fn rtts_ms(&self) -> Vec<u64> {
        self.valid().map(|r| r.rtt_ms).collect()
    }

    /// Observed RTTs (ms) of valid responses from one region.
    pub fn rtts_ms_in(&self, region: Region) -> Vec<u64> {
        self.valid()
            .filter(|r| r.region == region)
            .map(|r| r.rtt_ms)
            .collect()
    }

    /// Distinct probes that produced at least one result.
    pub fn distinct_probes(&self) -> usize {
        let mut ids: Vec<u32> = self.results.iter().map(|r| r.probe_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Distinct probes whose results were all valid.
    pub fn distinct_valid_probes(&self) -> usize {
        use std::collections::BTreeMap;
        let mut by_probe: BTreeMap<u32, bool> = BTreeMap::new();
        for r in &self.results {
            *by_probe.entry(r.probe_id).or_insert(true) &= r.valid;
        }
        by_probe.values().filter(|&&v| v).count()
    }

    /// Distinct vantage points (probe × resolver slot) seen.
    pub fn distinct_vps(&self) -> usize {
        let mut vps: Vec<(usize, usize)> = self
            .results
            .iter()
            .map(|r| (r.probe_idx, r.vp_slot))
            .collect();
        vps.sort_unstable();
        vps.dedup();
        vps.len()
    }

    /// Distinct resolvers seen.
    pub fn distinct_resolvers(&self) -> usize {
        let mut ids: Vec<usize> = self.results.iter().map(|r| r.resolver_idx).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Per-VP iterator over result indices, for behavioural
    /// classification (sticky detection in Table 4). The key is
    /// (probe index, resolver slot). Ordered so that iteration feeds
    /// downstream aggregation in a deterministic key order.
    pub fn by_vp(&self) -> std::collections::BTreeMap<(usize, usize), Vec<&MeasurementResult>> {
        let mut map: std::collections::BTreeMap<(usize, usize), Vec<&MeasurementResult>> =
            std::collections::BTreeMap::new();
        for r in &self.results {
            map.entry((r.probe_idx, r.vp_slot)).or_default().push(r);
        }
        map
    }

    /// Merges per-shard datasets into one global dataset.
    ///
    /// Each element is `(dataset, probe_base, resolver_base)`: the
    /// shard's results plus the global index offsets of its first probe
    /// and first resolver. Probe/resolver indices are rebased so VPs
    /// stay distinct across shards, then results are re-ordered by
    /// simulation time with a stable sort — ties keep shard order, then
    /// within-shard arrival order — so the merged dataset is identical
    /// no matter how many workers produced the parts.
    pub fn merge_shards(parts: Vec<(Dataset, usize, usize)>) -> Dataset {
        let total = parts.iter().map(|(d, _, _)| d.len()).sum();
        let mut lists: Vec<Vec<MeasurementResult>> = Vec::with_capacity(parts.len());
        for (part, probe_base, resolver_base) in parts {
            let mut results = part.results;
            for r in &mut results {
                r.probe_idx += probe_base;
                r.resolver_idx += resolver_base;
            }
            lists.push(results);
        }
        // Each cell's measurement loop emits results in sim-time order,
        // so the parts are already sorted and an O(k·n) k-way merge
        // replaces the old full-dataset stable re-sort. Picking the
        // strictly-smallest head (earliest part index on ties) yields
        // exactly the stable sort's order, so the output is bit-for-bit
        // what the re-sort produced. The sortedness check keeps the
        // stable sort as a correctness fallback for hand-built parts.
        let sorted = lists
            .iter()
            .all(|l| l.windows(2).all(|w| w[0].at <= w[1].at));
        if !sorted {
            let mut results: Vec<MeasurementResult> = Vec::with_capacity(total);
            results.extend(lists.into_iter().flatten());
            results.sort_by_key(|r| r.at);
            return Dataset { results };
        }
        let mut iters: Vec<_> = lists
            .into_iter()
            .map(|l| l.into_iter().peekable())
            .collect();
        let mut results = Vec::with_capacity(total);
        loop {
            let mut best: Option<(SimTime, usize)> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some(r) = it.peek() {
                    if best.is_none_or(|(t, _)| r.at < t) {
                        best = Some((r.at, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            results.push(iters[i].next().expect("head just peeked"));
        }
        Dataset { results }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(probe: u32, valid: bool, ttl: Option<u64>, rtt: u64) -> MeasurementResult {
        MeasurementResult {
            at: SimTime::ZERO,
            probe_id: probe,
            probe_idx: probe as usize,
            vp_slot: 0,
            resolver_idx: 0,
            region: Region::Eu,
            qname: Name::parse("uy").unwrap(),
            rcode: Rcode::NoError,
            ttl,
            answers: vec![],
            rtt_ms: rtt,
            cache_hit: false,
            valid,
            timed_out: false,
        }
    }

    #[test]
    fn accounting_splits_valid_and_discarded() {
        let mut ds = Dataset::new();
        ds.push(result(1, true, Some(300), 20));
        ds.push(result(1, true, Some(290), 5));
        ds.push(result(2, false, None, 0));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.valid_count(), 2);
        assert_eq!(ds.discarded_count(), 1);
        assert_eq!(ds.ttls(), vec![300, 290]);
        assert_eq!(ds.rtts_ms(), vec![20, 5]);
    }

    #[test]
    fn distinct_counts() {
        let mut ds = Dataset::new();
        ds.push(result(1, true, Some(1), 1));
        ds.push(result(1, true, Some(1), 1));
        ds.push(result(2, false, None, 1));
        assert_eq!(ds.distinct_probes(), 2);
        assert_eq!(ds.distinct_valid_probes(), 1);
        assert_eq!(ds.distinct_vps(), 2);
    }

    #[test]
    fn merge_shards_rebases_indices_and_orders_by_time() {
        let at = |ms| SimTime::from_millis(ms);
        let mut shard0 = Dataset::new();
        let mut r = result(1, true, Some(10), 1);
        r.at = at(100);
        shard0.push(r);
        let mut r = result(1, true, Some(20), 1);
        r.at = at(300);
        shard0.push(r);
        let mut shard1 = Dataset::new();
        let mut r = result(2, true, Some(30), 1);
        r.at = at(100); // ties with shard 0's first result
        r.probe_idx = 0;
        r.resolver_idx = 0;
        shard1.push(r);
        let mut r = result(2, true, Some(40), 1);
        r.at = at(200);
        r.probe_idx = 0;
        r.resolver_idx = 0;
        shard1.push(r);

        let merged = Dataset::merge_shards(vec![(shard0, 0, 0), (shard1, 5, 7)]);
        assert_eq!(
            merged.ttls(),
            vec![10, 30, 40, 20],
            "time order, shard order on ties"
        );
        let idx: Vec<(usize, usize)> = merged
            .results()
            .iter()
            .map(|r| (r.probe_idx, r.resolver_idx))
            .collect();
        assert_eq!(idx, vec![(1, 0), (5, 7), (5, 7), (1, 0)]);
        assert_eq!(merged.distinct_vps(), 2);
    }

    #[test]
    fn merge_shards_is_cell_count_agnostic() {
        // Regression for the tunable-cell-count audit: the merge is
        // parameterized purely by the parts vector, so a 64-cell
        // layout — empty cells included — must behave exactly like the
        // classic 16. Each occupied cell emits two results; times are
        // chosen so cells tie pairwise and the merged order must fall
        // back to part order.
        let at = |ms| SimTime::from_millis(ms);
        let mut parts = Vec::new();
        let mut resolver_base = 0;
        for cell in 0..64usize {
            let mut ds = Dataset::new();
            if cell % 4 != 3 {
                // Two results per occupied cell; ties across cells at
                // t = (cell / 2) ms.
                for k in 0..2u64 {
                    let mut r = result(cell as u32, true, Some(cell as u64), 1);
                    r.at = at((cell as u64 / 2) + 100 * k);
                    r.probe_idx = 0;
                    r.resolver_idx = 0;
                    ds.push(r);
                }
            }
            parts.push((ds, cell * 3, resolver_base));
            resolver_base += 2;
        }
        let merged = Dataset::merge_shards(parts);
        assert_eq!(merged.len(), 96, "48 occupied cells x 2 results");
        // Global order: non-decreasing time, part order on ties.
        let mut last = (SimTime::ZERO, 0usize);
        for r in merged.results() {
            let key = (r.at, r.probe_idx);
            assert!(key >= last, "order violated at probe_idx {}", r.probe_idx);
            last = key;
        }
        // Rebase: every result carries its cell's probe base, so all
        // probe indices are distinct multiples of 3.
        let mut idx: Vec<usize> = merged.results().iter().map(|r| r.probe_idx).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 48);
        assert!(idx.iter().all(|i| i % 3 == 0));
    }

    #[test]
    fn by_vp_groups_results() {
        let mut ds = Dataset::new();
        ds.push(result(1, true, Some(1), 1));
        ds.push(result(1, true, Some(2), 1));
        ds.push(result(2, true, Some(3), 1));
        let groups = ds.by_vp();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&(1, 0)].len(), 2);
    }
}
