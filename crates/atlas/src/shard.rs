//! The sharded execution harness.
//!
//! A sharded run partitions a population into [`LOGICAL_SHARDS`]
//! fixed-size cells. Each cell is a self-contained simulation — its own
//! `Network`, resolver caches, and RNG stream seeded from
//! `shard_seed(run_seed, cell_id)` — so cells can execute in any order
//! on any number of worker threads and still produce identical output.
//! The worker count is purely a throughput knob: it is **not** part of
//! the experiment's identity, which is what the differential harness
//! (`tests/shard_equivalence.rs`) enforces byte-for-byte.
//!
//! The simulator's service handles are `Rc`-backed and therefore not
//! `Send`; [`run_cells`] works around that by constructing each cell's
//! world *inside* its worker thread and returning only plain-data
//! results (datasets, drained telemetry parts, counters) to the
//! coordinating thread, which merges them in fixed cell order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall-clock profile of one sharded fan-out: where the parallel time
/// actually went, so a flat w8-over-w1 speedup can be attributed to
/// imbalance, merge cost, or contention instead of guessed at.
///
/// Everything here is wall-clock and therefore **must never enter a
/// deterministic artifact** (DESIGN.md §10). Callers route it to stderr
/// and to the bench report's timings section only.
#[derive(Debug, Clone, Default)]
pub struct ShardProfile {
    /// Per-cell busy time: how long `job(cell)` ran, in cell order.
    pub cell_busy: Vec<Duration>,
    /// Cells processed by each worker thread, in worker order.
    pub worker_cells: Vec<u64>,
    /// Total busy time per worker thread.
    pub worker_busy: Vec<Duration>,
    /// Idle time per worker: the span between the worker finishing its
    /// last cell and the slowest worker finishing (join-wait skew).
    pub worker_idle: Vec<Duration>,
}

impl ShardProfile {
    /// Max-over-mean cell cost: 1.0 means perfectly uniform cells; the
    /// higher the ratio, the more one straggler cell bounds the whole
    /// fan-out's wall-clock.
    pub fn imbalance(&self) -> f64 {
        if self.cell_busy.is_empty() {
            return 1.0;
        }
        let max = self.cell_busy.iter().max().copied().unwrap_or_default();
        let total: Duration = self.cell_busy.iter().sum();
        let mean = total.as_secs_f64() / self.cell_busy.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        max.as_secs_f64() / mean
    }

    /// Mean worker utilization: busy time over (busy + idle), in
    /// `0.0..=1.0`. 1.0 when idle time was not observable (inline run).
    pub fn utilization(&self) -> f64 {
        let busy: Duration = self.worker_busy.iter().sum();
        let idle: Duration = self.worker_idle.iter().sum();
        let denom = (busy + idle).as_secs_f64();
        if denom <= 0.0 {
            return 1.0;
        }
        busy.as_secs_f64() / denom
    }

    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        let busiest = self
            .cell_busy
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| **d)
            .map(|(i, d)| format!("cell {} at {:.1}ms", i, d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "n/a".to_string());
        format!(
            "workers={} cells={} imbalance={:.2} utilization={:.0}% busiest {}",
            self.worker_cells.len(),
            self.cell_busy.len(),
            self.imbalance(),
            self.utilization() * 100.0,
            busiest,
        )
    }
}

/// Default number of logical cells a sharded run is partitioned into.
///
/// Independent of the worker-thread count (`--shards N` picks workers,
/// not cells): results depend only on the cell partition, so a laptop
/// run with one worker and a 16-core run with eight workers replay the
/// exact same cells and merge to the same bytes.
///
/// The count is a *tunable* power of two (`--cells` /
/// `ExpConfig::cells`), but tunable means **identity-changing**:
/// repartitioning moves probes between cells and reseeds their RNG
/// streams, so outputs are only comparable at a fixed cell count. This
/// default is deliberately host-independent — scale campaigns that want
/// to saturate wider machines opt into 64 or 256 cells explicitly.
pub const LOGICAL_SHARDS: usize = 16;

/// Splits `total` items into `cells` contiguous partition sizes.
///
/// The first `total % cells` cells get one extra item, so sizes differ
/// by at most one and the mapping from item to cell is deterministic.
pub fn partition(total: usize, cells: usize) -> Vec<usize> {
    let cells = cells.max(1);
    let base = total / cells;
    let extra = total % cells;
    (0..cells).map(|i| base + usize::from(i < extra)).collect()
}

/// Prefix sums of a partition: the global index where each cell starts.
pub fn partition_bases(sizes: &[usize]) -> Vec<usize> {
    let mut bases = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for size in sizes {
        bases.push(acc);
        acc += size;
    }
    bases
}

/// Runs `job(cell)` for every cell on `workers` scoped threads and
/// returns the results in cell order.
///
/// Workers pull cell indices from a shared counter, so scheduling is
/// dynamic, but results land in per-cell slots: the returned vector is
/// always `[job(0), job(1), …]` regardless of which worker ran what.
/// With one worker (or one cell) the jobs run inline on the calling
/// thread — the sequential reference the differential harness compares
/// multi-worker runs against.
///
/// The requested worker count is capped at the machine's available
/// parallelism: cells are CPU-bound with no blocking I/O, so threads
/// beyond the core count only add scheduling overhead (on a one-core
/// host, `--shards 8` used to run *slower* than the sequential oracle).
/// Output is unaffected — the worker count is not part of the
/// experiment's identity.
pub fn run_cells<T, F>(workers: usize, cells: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_profiled(workers, cells, job).0
}

/// [`run_cells`] plus a wall-clock [`ShardProfile`]: per-cell busy
/// time, per-worker cells-processed/busy/idle, and the derived
/// imbalance and utilization figures.
///
/// The profile is measurement-only — the results vector is identical to
/// what [`run_cells`] returns, and the clock reads (two per cell) are
/// noise next to a cell's simulation work. Profiles go to stderr and
/// the bench timings section, never into deterministic artifacts.
pub fn run_cells_profiled<T, F>(workers: usize, cells: usize, job: F) -> (Vec<T>, ShardProfile)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.min(hw);
    if workers <= 1 || cells <= 1 {
        let mut profile = ShardProfile::default();
        let results: Vec<T> = (0..cells)
            .map(|cell| {
                let start = Instant::now();
                let result = job(cell);
                profile.cell_busy.push(start.elapsed());
                result
            })
            .collect();
        profile.worker_cells = vec![cells as u64];
        profile.worker_busy = vec![profile.cell_busy.iter().sum()];
        profile.worker_idle = vec![Duration::ZERO];
        return (results, profile);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(T, Duration)>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let spawned = workers.min(cells);
    // (cells processed, busy time, finish instant) per worker thread.
    let worker_stats: Vec<Mutex<(u64, Duration, Option<Instant>)>> = (0..spawned)
        .map(|_| Mutex::new((0, Duration::ZERO, None)))
        .collect();
    std::thread::scope(|scope| {
        for stats in &worker_stats {
            scope.spawn(|| {
                let mut processed = 0u64;
                let mut busy = Duration::ZERO;
                loop {
                    let cell = next.fetch_add(1, Ordering::Relaxed);
                    if cell >= cells {
                        break;
                    }
                    let start = Instant::now();
                    let result = job(cell);
                    let elapsed = start.elapsed();
                    processed += 1;
                    busy += elapsed;
                    *slots[cell].lock().expect("no other use of this slot") =
                        Some((result, elapsed));
                }
                *stats.lock().expect("worker stats slot") = (processed, busy, Some(Instant::now()));
            });
        }
    });
    let mut profile = ShardProfile::default();
    let results = slots
        .into_iter()
        .map(|slot| {
            let (result, busy) = slot
                .into_inner()
                .expect("workers joined")
                .expect("every cell index below `cells` was claimed and completed");
            profile.cell_busy.push(busy);
            result
        })
        .collect();
    let stats: Vec<(u64, Duration, Option<Instant>)> = worker_stats
        .into_iter()
        .map(|m| m.into_inner().expect("workers joined"))
        .collect();
    let last_finish = stats.iter().filter_map(|(_, _, at)| *at).max();
    for (processed, busy, finished_at) in stats {
        profile.worker_cells.push(processed);
        profile.worker_busy.push(busy);
        let idle = match (finished_at, last_finish) {
            (Some(at), Some(last)) => last.duration_since(at),
            _ => Duration::ZERO,
        };
        profile.worker_idle.push(idle);
    }
    (results, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_spreads_remainder_over_leading_cells() {
        assert_eq!(partition(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition(3, 16).iter().sum::<usize>(), 3);
        assert_eq!(partition(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(partition(5, 1), vec![5]);
        assert_eq!(partition_bases(&[3, 3, 2, 2]), vec![0, 3, 6, 8]);
    }

    #[test]
    fn results_are_in_cell_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..LOGICAL_SHARDS).map(|c| c * c).collect();
        for workers in [1, 2, 4, 8, 32] {
            let got = run_cells(workers, LOGICAL_SHARDS, |cell| cell * cell);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn profile_accounts_for_every_cell_and_worker() {
        for workers in [1, 4] {
            let (results, profile) = run_cells_profiled(workers, 8, |cell| cell + 1);
            assert_eq!(results, (1..=8).collect::<Vec<_>>());
            assert_eq!(profile.cell_busy.len(), 8);
            assert_eq!(profile.worker_cells.iter().sum::<u64>(), 8);
            assert_eq!(profile.worker_cells.len(), profile.worker_busy.len());
            assert_eq!(profile.worker_cells.len(), profile.worker_idle.len());
            assert!(profile.imbalance() >= 1.0 || profile.imbalance() == 1.0);
            let u = profile.utilization();
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
            assert!(!profile.summary().is_empty());
        }
    }

    #[test]
    fn cells_run_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        run_cells(4, 8, |cell| counts[cell].fetch_add(1, Ordering::SeqCst));
        for (cell, count) in counts.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "cell {cell}");
        }
    }
}
