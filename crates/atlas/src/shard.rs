//! The sharded execution harness.
//!
//! A sharded run partitions a population into [`LOGICAL_SHARDS`]
//! fixed-size cells. Each cell is a self-contained simulation — its own
//! `Network`, resolver caches, and RNG stream seeded from
//! `shard_seed(run_seed, cell_id)` — so cells can execute in any order
//! on any number of worker threads and still produce identical output.
//! The worker count is purely a throughput knob: it is **not** part of
//! the experiment's identity, which is what the differential harness
//! (`tests/shard_equivalence.rs`) enforces byte-for-byte.
//!
//! The simulator's service handles are `Rc`-backed and therefore not
//! `Send`; [`run_cells`] works around that by constructing each cell's
//! world *inside* its worker thread and returning only plain-data
//! results (datasets, drained telemetry parts, counters) to the
//! coordinating thread, which merges them in fixed cell order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of logical shards a sharded run is partitioned into.
///
/// Fixed and independent of the worker-thread count (`--shards N` picks
/// workers, not cells): results depend only on the cell partition, so a
/// laptop run with one worker and a 16-core run with eight workers
/// replay the exact same cells and merge to the same bytes.
pub const LOGICAL_SHARDS: usize = 16;

/// Splits `total` items into `cells` contiguous partition sizes.
///
/// The first `total % cells` cells get one extra item, so sizes differ
/// by at most one and the mapping from item to cell is deterministic.
pub fn partition(total: usize, cells: usize) -> Vec<usize> {
    let cells = cells.max(1);
    let base = total / cells;
    let extra = total % cells;
    (0..cells).map(|i| base + usize::from(i < extra)).collect()
}

/// Prefix sums of a partition: the global index where each cell starts.
pub fn partition_bases(sizes: &[usize]) -> Vec<usize> {
    let mut bases = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for size in sizes {
        bases.push(acc);
        acc += size;
    }
    bases
}

/// Runs `job(cell)` for every cell on `workers` scoped threads and
/// returns the results in cell order.
///
/// Workers pull cell indices from a shared counter, so scheduling is
/// dynamic, but results land in per-cell slots: the returned vector is
/// always `[job(0), job(1), …]` regardless of which worker ran what.
/// With one worker (or one cell) the jobs run inline on the calling
/// thread — the sequential reference the differential harness compares
/// multi-worker runs against.
///
/// The requested worker count is capped at the machine's available
/// parallelism: cells are CPU-bound with no blocking I/O, so threads
/// beyond the core count only add scheduling overhead (on a one-core
/// host, `--shards 8` used to run *slower* than the sequential oracle).
/// Output is unaffected — the worker count is not part of the
/// experiment's identity.
pub fn run_cells<T, F>(workers: usize, cells: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.min(hw);
    if workers <= 1 || cells <= 1 {
        return (0..cells).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells) {
            scope.spawn(|| loop {
                let cell = next.fetch_add(1, Ordering::Relaxed);
                if cell >= cells {
                    break;
                }
                let result = job(cell);
                *slots[cell].lock().expect("no other use of this slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers joined")
                .expect("every cell index below `cells` was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_spreads_remainder_over_leading_cells() {
        assert_eq!(partition(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition(3, 16).iter().sum::<usize>(), 3);
        assert_eq!(partition(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(partition(5, 1), vec![5]);
        assert_eq!(partition_bases(&[3, 3, 2, 2]), vec![0, 3, 6, 8]);
    }

    #[test]
    fn results_are_in_cell_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..LOGICAL_SHARDS).map(|c| c * c).collect();
        for workers in [1, 2, 4, 8, 32] {
            let got = run_cells(workers, LOGICAL_SHARDS, |cell| cell * cell);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn cells_run_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        run_cells(4, 8, |cell| counts[cell].fetch_add(1, Ordering::SeqCst));
        for (cell, count) in counts.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "cell {cell}");
        }
    }
}
