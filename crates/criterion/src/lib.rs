//! A local, zero-dependency stand-in for the crates.io `criterion`
//! crate, providing exactly the surface the workspace benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter` /
//! `iter_batched`, [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no network access, so the real harness
//! cannot be fetched; this shim keeps `cargo bench` working with the
//! same bench sources. Methodology: per benchmark, a short warm-up,
//! then `sample_size` samples of an adaptively sized iteration batch,
//! reporting the median, minimum, and maximum per-iteration time.
//! No statistics beyond that — the numbers are for trend-watching
//! (e.g. the `telemetry_overhead` bench), not for micro-sigma claims.

use std::time::{Duration, Instant};

/// Re-export point mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock measurement marker (the only measurement supported).
    pub struct WallTime;
}

/// Batch sizing hints for [`Bencher::iter_batched`]. The shim uses them
/// only to bound how many setup values are materialised per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: batches of up to 64 iterations.
    SmallInput,
    /// Large routine input: batches of up to 8 iterations.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id that is just the parameter (grouped benches).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.id
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Median/min/max per-iteration nanoseconds, filled by a run.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Bencher {
        Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            result: None,
        }
    }

    /// Benchmarks `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and estimate the per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (budget / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.finish_samples(samples);
    }

    /// Benchmarks `routine` over values produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up pass.
        std::hint::black_box(routine(setup()));
        let batch = size.batch_len();
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline && samples.len() >= 3 {
                break;
            }
        }
        self.finish_samples(samples);
    }

    fn finish_samples(&mut self, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = *samples.first().expect("at least one sample");
        let max = *samples.last().expect("at least one sample");
        self.result = Some((median, min, max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(sample_size, measurement_time, warm_up_time);
    f(&mut b);
    match b.result {
        Some((median, min, max)) => println!(
            "{name:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        ),
        None => println!("{name:<48} (no samples)"),
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes the filter as the first
        // non-flag argument.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Criterion {
        let name = id.into_name();
        if self.matches(&name) {
            run_one(
                &name,
                self.sample_size,
                self.measurement_time,
                self.warm_up_time,
                &mut f,
            );
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        group_name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Called by [`criterion_main!`] after all groups have run.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing tuning (sample size, durations).
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    criterion: &'a Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_name());
        if self.criterion.matches(&name) {
            run_one(
                &name,
                self.sample_size,
                self.measurement_time,
                self.warm_up_time,
                &mut f,
            );
        }
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_result() {
        let mut b = Bencher::new(5, Duration::from_millis(10), Duration::from_millis(1));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        let (median, min, max) = b.result.expect("samples collected");
        assert!(min <= median && median <= max);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(5, Duration::from_millis(10), Duration::from_millis(1));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
    }
}
