//! The cache-backend abstraction: one trait over the full cache
//! surface, implemented by the sequential oracle ([`Cache`]) and the
//! concurrent segment-locked backend ([`SharedCache`]), plus the
//! [`CacheEngine`] enum a resolver actually holds.
//!
//! The trait exists for the differential harnesses: a workload driver
//! written against [`CacheBackend`] replays the identical seeded op
//! sequence through both engines, and the equivalence suite asserts
//! the answers, victim sequences, ledgers, and counters agree. The
//! resolver itself dispatches through [`CacheEngine`] (an enum, not a
//! `dyn` object — `with_ledger` is generic, and enum dispatch keeps
//! the sequential hot path free of vtable calls).

use dnsttl_core::{CacheBackendChoice, ResolverPolicy};
use dnsttl_netsim::{SimDuration, SimTime};
use dnsttl_telemetry::Telemetry;
use dnsttl_wire::{Name, RRset, Rcode, RecordType, Ttl};
use std::sync::Arc;

use crate::cache::{Cache, CachedAnswer, Credibility};
use crate::ledger::{CacheStats, Ledger, StoreContext};
use crate::shared::SharedCache;
use crate::snapshot::CacheSnapshot;

/// The full cache surface both backends implement. Mutators take
/// `&mut self` so the sequential engine can implement them without
/// interior mutability; the concurrent backend's inherent methods are
/// all `&self` (internal locking) and the trait impl just forwards.
pub trait CacheBackend {
    /// Stores an RRset under the given credibility rank.
    /// See [`Cache::store_with`].
    fn store_with(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    );

    /// Fetches a fresh entry, decrementing TTLs by age.
    /// See [`Cache::get`].
    fn get(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer>;

    /// Fetches an entry even if expired, for serve-stale.
    /// See [`Cache::get_stale`].
    fn get_stale(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer>;

    /// Caches a negative answer per RFC 2308. See [`Cache::store_negative`].
    #[allow(clippy::too_many_arguments)]
    fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    );

    /// Caches a resolution failure (SERVFAIL). See [`Cache::store_failure`].
    fn store_failure(&mut self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime);

    /// Fresh negative entry for the key, if any. See [`Cache::get_negative`].
    fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode>;

    /// Drops one positive entry. See [`Cache::invalidate`].
    fn invalidate(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> bool;

    /// Drops every positive entry at or below `apex`.
    /// See [`Cache::invalidate_zone`].
    fn invalidate_zone(&mut self, apex: &Name, now: SimTime) -> usize;

    /// Drops expired, unpinned entries. See [`Cache::purge_expired`].
    fn purge_expired(&mut self, now: SimTime);

    /// How long ago an expired entry's TTL ran out, if it is still
    /// resident. See [`Cache::expired_since`].
    fn expired_since(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<SimDuration>;

    /// Remaining-TTL fraction of a fresh entry. See [`Cache::freshness`].
    fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64>;

    /// Number of positive entries (fresh and expired).
    fn len(&self) -> usize;

    /// True if the backend holds no positive entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted under capacity pressure so far.
    fn evictions(&self) -> u64;

    /// The always-on transaction counts.
    fn stats(&self) -> CacheStats;

    /// Turns on op journalling (provenance ledger / op log).
    fn enable_ledger(&mut self);

    /// Whether op journalling is recording.
    fn ledger_enabled(&self) -> bool;

    /// Removes every entry. See [`Cache::clear`].
    fn clear(&mut self);

    /// Deterministic sorted dump of positive contents.
    fn snapshot(&self, now: SimTime) -> CacheSnapshot;
}

impl CacheBackend for Cache {
    fn store_with(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    ) {
        Cache::store_with(self, rrset, rank, now, policy, pinned, ctx);
    }

    fn get(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        Cache::get(self, name, rtype, now)
    }

    fn get_stale(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer> {
        Cache::get_stale(self, name, rtype, now, max_stale)
    }

    fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        Cache::store_negative(self, name, rtype, rcode, soa_minimum, soa_ttl, now, policy);
    }

    fn store_failure(&mut self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime) {
        Cache::store_failure(self, name, rtype, ttl, now);
    }

    fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode> {
        Cache::get_negative(self, name, rtype, now)
    }

    fn invalidate(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        Cache::invalidate(self, name, rtype, now)
    }

    fn invalidate_zone(&mut self, apex: &Name, now: SimTime) -> usize {
        Cache::invalidate_zone(self, apex, now)
    }

    fn purge_expired(&mut self, now: SimTime) {
        Cache::purge_expired(self, now);
    }

    fn expired_since(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<SimDuration> {
        Cache::expired_since(self, name, rtype, now)
    }

    fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        Cache::freshness(self, name, rtype, now)
    }

    fn len(&self) -> usize {
        Cache::len(self)
    }

    fn evictions(&self) -> u64 {
        Cache::evictions(self)
    }

    fn stats(&self) -> CacheStats {
        Cache::stats(self)
    }

    fn enable_ledger(&mut self) {
        Cache::enable_ledger(self);
    }

    fn ledger_enabled(&self) -> bool {
        Cache::ledger_enabled(self)
    }

    fn clear(&mut self) {
        Cache::clear(self);
    }

    fn snapshot(&self, now: SimTime) -> CacheSnapshot {
        Cache::snapshot(self, now)
    }
}

impl CacheBackend for SharedCache {
    fn store_with(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    ) {
        SharedCache::store_with(self, rrset, rank, now, policy, pinned, ctx);
    }

    fn get(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        SharedCache::get(self, name, rtype, now)
    }

    fn get_stale(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer> {
        SharedCache::get_stale(self, name, rtype, now, max_stale)
    }

    fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        SharedCache::store_negative(self, name, rtype, rcode, soa_minimum, soa_ttl, now, policy);
    }

    fn store_failure(&mut self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime) {
        SharedCache::store_failure(self, name, rtype, ttl, now);
    }

    fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode> {
        SharedCache::get_negative(self, name, rtype, now)
    }

    fn invalidate(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        SharedCache::invalidate(self, name, rtype, now)
    }

    fn invalidate_zone(&mut self, apex: &Name, now: SimTime) -> usize {
        SharedCache::invalidate_zone(self, apex, now)
    }

    fn purge_expired(&mut self, now: SimTime) {
        SharedCache::purge_expired(self, now);
    }

    fn expired_since(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<SimDuration> {
        SharedCache::expired_since(self, name, rtype, now)
    }

    fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        SharedCache::freshness(self, name, rtype, now)
    }

    fn len(&self) -> usize {
        SharedCache::len(self)
    }

    fn evictions(&self) -> u64 {
        SharedCache::evictions(self)
    }

    fn stats(&self) -> CacheStats {
        SharedCache::stats(self)
    }

    fn enable_ledger(&mut self) {
        SharedCache::enable_ledger(self);
    }

    fn ledger_enabled(&self) -> bool {
        SharedCache::ledger_enabled(self)
    }

    fn clear(&mut self) {
        SharedCache::clear(self);
    }

    fn snapshot(&self, now: SimTime) -> CacheSnapshot {
        SharedCache::snapshot(self, now)
    }
}

/// The cache a resolver holds: either the single-threaded
/// expiry-indexed oracle or the concurrent segment-locked backend,
/// picked by [`ResolverPolicy::cache_backend`]. Enum (not `dyn`)
/// dispatch — the sequential arm stays a direct call.
// One engine lives per resolver (never in collections), so the size
// skew between variants is irrelevant; boxing the sequential arm would
// put a pointer chase on the hot path instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CacheEngine {
    /// The sequential oracle: single-threaded, telemetry-wired.
    Sequential(Cache),
    /// The concurrent backend behind an `Arc` so client threads can
    /// hold the same cache the resolver serves from.
    Shared(Arc<SharedCache>),
}

impl Default for CacheEngine {
    fn default() -> CacheEngine {
        CacheEngine::Sequential(Cache::new())
    }
}

impl CacheEngine {
    /// Builds the backend a policy asks for, honouring
    /// `cache_capacity`, `cache_segments`, and `slru_admission`.
    pub fn from_policy(policy: &ResolverPolicy) -> CacheEngine {
        match policy.cache_backend {
            CacheBackendChoice::Sequential => {
                CacheEngine::Sequential(match policy.cache_capacity {
                    Some(capacity) => Cache::with_capacity(capacity),
                    None => Cache::new(),
                })
            }
            CacheBackendChoice::Shared => {
                CacheEngine::Shared(Arc::new(SharedCache::from_policy(policy)))
            }
        }
    }

    /// The sequential cache, if that's the active backend.
    pub fn as_sequential(&self) -> Option<&Cache> {
        match self {
            CacheEngine::Sequential(cache) => Some(cache),
            CacheEngine::Shared(_) => None,
        }
    }

    /// Mutable access to the sequential cache, if active.
    pub fn as_sequential_mut(&mut self) -> Option<&mut Cache> {
        match self {
            CacheEngine::Sequential(cache) => Some(cache),
            CacheEngine::Shared(_) => None,
        }
    }

    /// A cloneable handle to the shared backend, if that's the active
    /// backend — this is how client threads join the cache.
    pub fn shared(&self) -> Option<Arc<SharedCache>> {
        match self {
            CacheEngine::Sequential(_) => None,
            CacheEngine::Shared(cache) => Some(Arc::clone(cache)),
        }
    }

    /// Routes typed transaction events into `telemetry`. The shared
    /// backend journals through its own lock-free op log instead (the
    /// telemetry handle is single-threaded), so this is a no-op there.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let CacheEngine::Sequential(cache) = self {
            cache.set_telemetry(telemetry);
        }
    }

    /// See [`Cache::store`].
    pub fn store(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
    ) {
        self.store_with(rrset, rank, now, policy, pinned, StoreContext::default());
    }

    /// See [`Cache::store_with`].
    pub fn store_with(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    ) {
        match self {
            CacheEngine::Sequential(c) => c.store_with(rrset, rank, now, policy, pinned, ctx),
            CacheEngine::Shared(c) => c.store_with(rrset, rank, now, policy, pinned, ctx),
        }
    }

    /// See [`Cache::get`].
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        match self {
            CacheEngine::Sequential(c) => c.get(name, rtype, now),
            CacheEngine::Shared(c) => c.get(name, rtype, now),
        }
    }

    /// See [`Cache::get_stale`].
    pub fn get_stale(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer> {
        match self {
            CacheEngine::Sequential(c) => c.get_stale(name, rtype, now, max_stale),
            CacheEngine::Shared(c) => c.get_stale(name, rtype, now, max_stale),
        }
    }

    /// See [`Cache::store_negative`].
    #[allow(clippy::too_many_arguments)]
    pub fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        match self {
            CacheEngine::Sequential(c) => {
                c.store_negative(name, rtype, rcode, soa_minimum, soa_ttl, now, policy)
            }
            CacheEngine::Shared(c) => {
                c.store_negative(name, rtype, rcode, soa_minimum, soa_ttl, now, policy)
            }
        }
    }

    /// See [`Cache::store_failure`].
    pub fn store_failure(&mut self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime) {
        match self {
            CacheEngine::Sequential(c) => c.store_failure(name, rtype, ttl, now),
            CacheEngine::Shared(c) => c.store_failure(name, rtype, ttl, now),
        }
    }

    /// See [`Cache::get_negative`].
    pub fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode> {
        match self {
            CacheEngine::Sequential(c) => c.get_negative(name, rtype, now),
            CacheEngine::Shared(c) => c.get_negative(name, rtype, now),
        }
    }

    /// See [`Cache::invalidate`].
    pub fn invalidate(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        match self {
            CacheEngine::Sequential(c) => c.invalidate(name, rtype, now),
            CacheEngine::Shared(c) => c.invalidate(name, rtype, now),
        }
    }

    /// See [`Cache::invalidate_zone`].
    pub fn invalidate_zone(&mut self, apex: &Name, now: SimTime) -> usize {
        match self {
            CacheEngine::Sequential(c) => c.invalidate_zone(apex, now),
            CacheEngine::Shared(c) => c.invalidate_zone(apex, now),
        }
    }

    /// See [`Cache::purge_expired`].
    pub fn purge_expired(&mut self, now: SimTime) {
        match self {
            CacheEngine::Sequential(c) => c.purge_expired(now),
            CacheEngine::Shared(c) => c.purge_expired(now),
        }
    }

    /// See [`Cache::expired_since`].
    pub fn expired_since(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<SimDuration> {
        match self {
            CacheEngine::Sequential(c) => c.expired_since(name, rtype, now),
            CacheEngine::Shared(c) => c.expired_since(name, rtype, now),
        }
    }

    /// See [`Cache::freshness`].
    pub fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        match self {
            CacheEngine::Sequential(c) => c.freshness(name, rtype, now),
            CacheEngine::Shared(c) => c.freshness(name, rtype, now),
        }
    }

    /// Number of positive entries (fresh and expired).
    pub fn len(&self) -> usize {
        match self {
            CacheEngine::Sequential(c) => c.len(),
            CacheEngine::Shared(c) => c.len(),
        }
    }

    /// True if the cache holds no positive entries.
    pub fn is_empty(&self) -> bool {
        match self {
            CacheEngine::Sequential(c) => c.is_empty(),
            CacheEngine::Shared(c) => c.is_empty(),
        }
    }

    /// Entries evicted under capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        match self {
            CacheEngine::Sequential(c) => c.evictions(),
            CacheEngine::Shared(c) => c.evictions(),
        }
    }

    /// The always-on transaction counts.
    pub fn stats(&self) -> CacheStats {
        match self {
            CacheEngine::Sequential(c) => c.stats(),
            CacheEngine::Shared(c) => c.stats(),
        }
    }

    /// Turns on op journalling for the active backend.
    pub fn enable_ledger(&mut self) {
        match self {
            CacheEngine::Sequential(c) => c.enable_ledger(),
            CacheEngine::Shared(c) => c.enable_ledger(),
        }
    }

    /// Whether op journalling is recording.
    pub fn ledger_enabled(&self) -> bool {
        match self {
            CacheEngine::Sequential(c) => c.ledger_enabled(),
            CacheEngine::Shared(c) => c.ledger_enabled(),
        }
    }

    /// Runs `f` against the (possibly replayed) ledger, if enabled.
    pub fn with_ledger<T>(&self, f: impl FnOnce(&Ledger) -> T) -> Option<T> {
        match self {
            CacheEngine::Sequential(c) => c.with_ledger(f),
            CacheEngine::Shared(c) => c.with_ledger(f),
        }
    }

    /// See [`Cache::clear`].
    pub fn clear(&mut self) {
        match self {
            CacheEngine::Sequential(c) => c.clear(),
            CacheEngine::Shared(c) => c.clear(),
        }
    }

    /// Deterministic sorted dump of positive contents.
    pub fn snapshot(&self, now: SimTime) -> CacheSnapshot {
        match self {
            CacheEngine::Sequential(c) => c.snapshot(now),
            CacheEngine::Shared(c) => c.snapshot(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_wire::RData;

    fn policy_with(backend: CacheBackendChoice) -> ResolverPolicy {
        ResolverPolicy {
            cache_backend: backend,
            cache_capacity: Some(32),
            ..ResolverPolicy::default()
        }
    }

    fn a_rrset(name: &str, ttl: u32) -> RRset {
        RRset {
            name: Name::parse(name).unwrap(),
            rtype: RecordType::A,
            ttl: Ttl::from_secs(ttl),
            rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, 1))],
        }
    }

    // The same tiny workload through both engines via the trait, so
    // the trait surface itself is exercised (not just the enum).
    fn drive<B: CacheBackend>(backend: &mut B, policy: &ResolverPolicy) -> (u64, u64, usize) {
        for i in 0..8 {
            backend.store_with(
                a_rrset(&format!("w{i}.pool.example"), 300),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                policy,
                false,
                StoreContext::default(),
            );
        }
        let mut hits = 0;
        for i in 0..8 {
            let name = Name::parse(&format!("w{i}.pool.example")).unwrap();
            if backend
                .get(&name, RecordType::A, SimTime::from_secs(10))
                .is_some()
            {
                hits += 1;
            }
        }
        let stats = backend.stats();
        (hits, stats.inserts, backend.len())
    }

    #[test]
    fn trait_drives_both_backends_identically() {
        let policy = policy_with(CacheBackendChoice::Sequential);
        let mut seq = Cache::with_capacity(32);
        let mut shared = SharedCache::with_capacity(4, 32);
        assert_eq!(drive(&mut seq, &policy), drive(&mut shared, &policy));
    }

    #[test]
    fn from_policy_picks_the_backend() {
        let seq = CacheEngine::from_policy(&policy_with(CacheBackendChoice::Sequential));
        assert!(seq.as_sequential().is_some());
        assert!(seq.shared().is_none());

        let shared = CacheEngine::from_policy(&policy_with(CacheBackendChoice::Shared));
        assert!(shared.as_sequential().is_none());
        let handle = shared.shared().expect("shared handle");
        assert_eq!(handle.segment_count(), 8);
    }

    #[test]
    fn engine_surface_matches_across_backends() {
        let mut policy = policy_with(CacheBackendChoice::Shared);
        let mut shared = CacheEngine::from_policy(&policy);
        policy.cache_backend = CacheBackendChoice::Sequential;
        let mut seq = CacheEngine::from_policy(&policy);

        for engine in [&mut seq, &mut shared] {
            engine.enable_ledger();
            engine.store(
                a_rrset("host.example", 120),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy,
                false,
            );
            assert!(engine
                .get(
                    &Name::parse("host.example").unwrap(),
                    RecordType::A,
                    SimTime::from_secs(60)
                )
                .is_some());
            engine.purge_expired(SimTime::from_secs(600));
            assert_eq!(engine.len(), 0);
            let stats = engine.stats();
            assert_eq!(stats.inserts, stats.removals());
            assert_eq!(
                engine.with_ledger(|l| l.journal().records().count()),
                Some(3)
            );
        }
        assert_eq!(
            seq.snapshot(SimTime::from_secs(600)).to_jsonl(),
            shared.snapshot(SimTime::from_secs(600)).to_jsonl()
        );
    }
}
