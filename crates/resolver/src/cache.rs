//! The resolver cache: credibility-ranked, TTL-expiring, stale-capable.
//!
//! RFC 2181 §5.4.1 ranks DNS data by where it arrived: the answer
//! section of an authoritative response is worth more than the authority
//! section of a referral, which is worth more than glue from the
//! additional section. A cache must never let lower-ranked data replace
//! fresh higher-ranked data. The paper's parent-vs-child question is a
//! question about this ranking: *child-centric* resolvers apply it as
//! written; *parent-centric* resolvers in effect pin referral data above
//! the child's authoritative answers.
//!
//! # Structure
//!
//! All replacement, expiry, and eviction logic lives in [`CacheCore`],
//! a `Send`-able state machine with no interior mutability and no
//! telemetry handle. Accounting side effects (stats, ledger records,
//! trace events) go through the [`OpSink`] trait, so the same core
//! drives two engines:
//!
//! * [`Cache`] — the single-threaded sequential oracle: one core plus a
//!   `RefCell`-guarded stats/ledger pair and an `Rc`-based telemetry
//!   handle, exactly the engine every equivalence test pins down;
//! * [`crate::SharedCache`] — the concurrent backend: one core per
//!   locked segment, journalling through a lock-free append instead of
//!   a telemetry handle (which is `Rc`-based and cannot cross threads).

use dnsttl_core::{Centricity, ResolverPolicy};
use dnsttl_netsim::{SimDuration, SimTime, TimingWheel};
use dnsttl_telemetry::{CacheOp, EventKind, MetricKey, Telemetry, Value};
use dnsttl_wire::{Name, RRset, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::collections::HashMap;

use crate::ledger::{rank_token, CacheStats, Ledger, Provenance, RecordOrigin, StoreContext};

/// Pre-hashed key for the eviction counter/series: evictions happen
/// under capacity pressure, which is exactly when per-event hashing
/// would hurt most.
const EVICTIONS_KEY: MetricKey = MetricKey::new("resolver_cache_evictions");

/// Trustworthiness of cached data, descending (RFC 2181 §5.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Credibility {
    /// Glue / additional-section data from a referral. Lowest.
    ReferralAdditional,
    /// NS records from the authority section of a referral.
    ReferralAuthority,
    /// Data from the authority section of an authoritative answer.
    AuthAuthority,
    /// Data from the answer section of an authoritative (AA) answer.
    AuthAnswer,
}

/// One positive cache entry.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) rrset: RRset,
    pub(crate) stored_at: SimTime,
    pub(crate) expires_at: SimTime,
    pub(crate) rank: Credibility,
    /// True for entries a local-root (RFC 7706) resolver treats as a
    /// mirrored copy: served at full TTL, never expiring.
    pub(crate) pinned: bool,
    /// SLRU tier: true once a hit promoted the entry out of probation.
    /// Always false when admission control is off.
    pub(crate) protected: bool,
    /// Where the entry came from (installing transaction, server,
    /// origin, bailiwick, published vs effective TTL).
    pub(crate) provenance: Provenance,
    /// TTL-excluded fingerprint of the RRset data — refresh vs
    /// overwrite detection, and the snapshot diff anchor.
    pub(crate) fingerprint: u64,
}

/// One negative cache entry (RFC 2308).
#[derive(Debug, Clone)]
struct NegEntry {
    rcode: Rcode,
    expires_at: SimTime,
}

/// A cached RRset as handed to a client or to the iteration logic:
/// TTLs already decremented by the entry's age.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The RRset with remaining (decremented) TTL.
    pub rrset: RRset,
    /// Rank the data was stored under.
    pub rank: Credibility,
    /// True if the entry had expired and was served stale.
    pub stale: bool,
    /// Why this entry is in the cache: installing transaction, source
    /// server, parent/child origin, bailiwick class, published vs
    /// effective TTL.
    pub provenance: Provenance,
}

/// Where a cache engine routes the side effects of one transaction:
/// the always-on [`CacheStats`] counters plus the optional
/// ledger/telemetry record. The sequential engine borrows its
/// `RefCell` meta; each concurrent segment borrows its own stats and
/// appends to the shared lock-free op log.
pub(crate) trait OpSink {
    /// The always-on counters the caller updates in place.
    fn stats(&mut self) -> &mut CacheStats;

    /// Records one ledger transaction. The caller has already updated
    /// [`CacheStats`].
    #[allow(clippy::too_many_arguments)]
    fn note(
        &mut self,
        now: SimTime,
        op: CacheOp,
        rrset: &RRset,
        rank: Credibility,
        prov: Provenance,
        residency_ms: Option<u64>,
        fingerprint: u64,
    );
}

/// The cache state machine, engine-agnostic: entry table, negative
/// table, and the expiry-ordered eviction indexes. `Send` by
/// construction (no `Rc`, no `RefCell`), so one core backs the
/// sequential [`Cache`] and one core sits behind each lock of the
/// concurrent [`crate::SharedCache`].
///
/// Eviction order is deterministic and documented: the victim is the
/// minimum of the probation index, then of the protected index —
/// i.e. ordered by `(expires_at, canonical name order, type code)`,
/// probation tier before protected tier. With SLRU admission off
/// (the default, and always the case for the sequential engine) every
/// entry is in probation and the order is exactly the pre-SLRU one.
#[derive(Debug)]
pub(crate) struct CacheCore {
    pub(crate) entries: HashMap<(Name, RecordType), Entry>,
    /// Expiry index over the *unpinned, unprotected* entries — a
    /// hierarchical timing wheel bucketing `(name, rtype code)` ties by
    /// `expires_at` milliseconds. Kept in lockstep with every
    /// insert/remove so eviction and expiry purges are amortized-O(1)
    /// wheel pops instead of O(log n) ordered-set operations, while
    /// every pop drains in the exact `(expires_at, canonical name
    /// order, type code)` order the previous `BTreeSet` index used (the
    /// eviction-oracle differential suite pins this). Pinned entries
    /// never expire and are never evicted, so they are not indexed.
    probation: TimingWheel<(Name, u16)>,
    /// SLRU protected tier: entries promoted by a hit. Evicted only
    /// when probation is empty; demoted (oldest-expiry first) when the
    /// tier outgrows `protected_cap`. Empty when admission is off.
    protected: TimingWheel<(Name, u16)>,
    negatives: HashMap<(Name, RecordType), NegEntry>,
    /// Maximum positive entries; `None` = unbounded. Real caches are
    /// bounded, and under pressure the *effective* TTL is the eviction
    /// horizon, not the configured TTL (the paper's \[19\]).
    capacity: Option<usize>,
    /// Entries evicted due to capacity pressure.
    evictions: u64,
    /// SLRU-style admission: hits promote entries into the protected
    /// tier, shielding popular names from scan-like churn.
    slru: bool,
    /// Maximum protected-tier size before promotion demotes the
    /// protected entry closest to expiry back to probation.
    protected_cap: usize,
}

impl Default for CacheCore {
    fn default() -> CacheCore {
        CacheCore::new(None, false)
    }
}

impl CacheCore {
    /// A core with the given capacity and admission mode.
    pub(crate) fn new(capacity: Option<usize>, slru: bool) -> CacheCore {
        let capacity = capacity.map(|c| c.max(1));
        // The classic SLRU split: ~80% of a bounded cache may be
        // protected; an unbounded cache never demotes.
        let protected_cap = if slru {
            capacity.map(|c| (c * 4 / 5).max(1)).unwrap_or(usize::MAX)
        } else {
            0
        };
        CacheCore {
            entries: HashMap::new(),
            probation: TimingWheel::new(),
            protected: TimingWheel::new(),
            negatives: HashMap::new(),
            capacity,
            evictions: 0,
            slru,
            protected_cap,
        }
    }

    /// Entries evicted under capacity pressure so far.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates the positive entries (snapshot builders).
    pub(crate) fn iter_entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Removes `key` from whichever tier holds it.
    fn index_remove(&mut self, key: &(SimTime, Name, u16), protected: bool) {
        let (expires_at, name, code) = key;
        let tier = if protected {
            &mut self.protected
        } else {
            &mut self.probation
        };
        tier.cancel_by(expires_at.as_millis(), |(n, c)| c == code && n == name);
    }

    /// Makes room for one more entry when at capacity.
    fn evict_if_full<S: OpSink>(
        &mut self,
        incoming: &(Name, RecordType),
        now: SimTime,
        sink: &mut S,
    ) {
        let Some(cap) = self.capacity else { return };
        if self.entries.len() < cap || self.entries.contains_key(incoming) {
            return;
        }
        // The victim is the index minimum: the entry with the earliest
        // expiry (already-expired entries sort first by construction),
        // ties broken by canonical name order then type code — never by
        // HashMap iteration order, so the ledger is identical across
        // reruns. Probation is drained before the protected tier (the
        // SLRU admission promise); with admission off the protected
        // tier is empty and this is the pre-SLRU order exactly. Pinned
        // entries are mirrored zone data, never indexed, never evicted.
        let victim = self
            .probation
            .pop_first()
            .or_else(|| self.protected.pop_first());
        if let Some((_, (name, code))) = victim {
            let rtype = RecordType::from_code(code).expect("index holds valid type codes");
            let e = self
                .entries
                .remove(&(name, rtype))
                .expect("index entry has a backing cache entry");
            self.evictions += 1;
            sink.stats().evictions += 1;
            sink.note(
                now,
                CacheOp::Evict,
                &e.rrset,
                e.rank,
                e.provenance,
                Some(now.since(e.stored_at).as_millis()),
                e.fingerprint,
            );
        }
    }

    /// See [`Cache::store_with`]; the documented replacement rules live
    /// there. This is the engine-agnostic implementation.
    // Crate-internal plumbing shared by both engines; the public
    // wrappers keep the ergonomic arity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store_with<S: OpSink>(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
        sink: &mut S,
    ) {
        let key = (rrset.name.clone(), rrset.rtype);
        self.negatives.remove(&key);
        let original_ttl = rrset.ttl;
        let ttl = policy.clamp_ttl(rrset.ttl);
        if ttl.is_zero() {
            sink.stats().rejected_stores += 1;
            return;
        }
        // Removal cause for the entry currently under the key, if any.
        let mut displaced: Option<(CacheOp, Entry)> = None;
        let mut refresh = false;
        // Index key + tier of the entry this store replaces (refreshes
        // move an entry's expiry too, so the stale key must go either
        // way).
        let mut old_index: Option<((SimTime, Name, u16), bool)> = None;
        // A fresh replacement inherits the old entry's SLRU tier; an
        // expired entry re-enters through probation like any newcomer.
        let mut keep_protected = false;
        let fingerprint = rrset.fingerprint();
        if let Some(existing) = self.entries.get(&key) {
            let fresh = existing.pinned || existing.expires_at > now;
            if fresh {
                let rejected = existing.rank > rank // lower rank never displaces higher
                    || (policy.centricity == Centricity::ParentCentric
                        && existing.rank <= Credibility::ReferralAuthority
                        && rank >= Credibility::AuthAuthority) // referral data wins
                    || (!policy.link_inbailiwick_glue
                        && existing.rank == Credibility::ReferralAdditional
                        && rank == Credibility::ReferralAdditional); // keep cached glue
                if rejected {
                    sink.stats().rejected_stores += 1;
                    return;
                }
                if existing.fingerprint == fingerprint {
                    refresh = true;
                } else {
                    displaced = Some((CacheOp::Overwrite, existing.clone()));
                }
                keep_protected = existing.protected;
            } else {
                // Past its TTL: whatever replaces it, the old entry
                // died of expiry.
                displaced = Some((CacheOp::Expire, existing.clone()));
            }
            if !existing.pinned {
                old_index = Some((
                    (existing.expires_at, key.0.clone(), key.1.code()),
                    existing.protected,
                ));
            }
        }
        let origin = if ctx.txn == 0 && ctx.server.is_none() {
            RecordOrigin::Seed
        } else {
            RecordOrigin::from_rank(rank)
        };
        let prov = Provenance {
            txn: ctx.txn,
            server: ctx.server,
            origin,
            bailiwick: ctx.bailiwick,
            original_ttl,
            effective_ttl: ttl,
        };
        if let Some((cause, old)) = displaced {
            match cause {
                CacheOp::Overwrite => sink.stats().overwrites += 1,
                _ => sink.stats().expiries += 1,
            }
            sink.note(
                now,
                cause,
                &old.rrset,
                old.rank,
                old.provenance,
                Some(now.since(old.stored_at).as_millis()),
                old.fingerprint,
            );
        }
        let mut rrset = rrset;
        rrset.ttl = ttl;
        if let Some((stale_key, was_protected)) = old_index {
            self.index_remove(&stale_key, was_protected);
        }
        self.evict_if_full(&key, now, sink);
        if refresh {
            sink.stats().refreshes += 1;
        } else {
            sink.stats().inserts += 1;
        }
        sink.note(
            now,
            if refresh {
                CacheOp::Refresh
            } else {
                CacheOp::Insert
            },
            &rrset,
            rank,
            prov,
            None,
            fingerprint,
        );
        let expires_at = now + ttl_span(ttl);
        let protected = keep_protected && self.slru;
        if !pinned {
            let tier = if protected {
                &mut self.protected
            } else {
                &mut self.probation
            };
            tier.insert(expires_at.as_millis(), (key.0.clone(), key.1.code()));
        }
        self.entries.insert(
            key,
            Entry {
                expires_at,
                stored_at: now,
                rrset,
                rank,
                pinned,
                protected,
                provenance: prov,
                fingerprint,
            },
        );
    }

    /// See [`Cache::invalidate`].
    pub(crate) fn invalidate<S: OpSink>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        sink: &mut S,
    ) -> bool {
        match self.entries.remove(&(name.clone(), rtype)) {
            Some(e) => {
                if !e.pinned {
                    self.index_remove(&(e.expires_at, name.clone(), rtype.code()), e.protected);
                }
                sink.stats().invalidations += 1;
                sink.note(
                    now,
                    CacheOp::Invalidate,
                    &e.rrset,
                    e.rank,
                    e.provenance,
                    Some(now.since(e.stored_at).as_millis()),
                    e.fingerprint,
                );
                true
            }
            None => false,
        }
    }

    /// See [`Cache::invalidate_zone`].
    pub(crate) fn invalidate_zone<S: OpSink>(
        &mut self,
        apex: &Name,
        now: SimTime,
        sink: &mut S,
    ) -> usize {
        let mut victims: Vec<(Name, RecordType)> = self
            .entries
            .keys()
            .filter(|(n, _)| n.is_subdomain_of(apex))
            .cloned()
            .collect();
        // Deterministic ledger order regardless of HashMap layout —
        // canonical name order directly, no string formatting.
        victims.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.code().cmp(&b.1.code())));
        for (name, rtype) in &victims {
            self.invalidate(name, *rtype, now, sink);
        }
        victims.len()
    }

    /// See [`Cache::get`]. Read-only on the core: SLRU promotion is a
    /// separate, explicit [`CacheCore::touch`] so the sequential engine
    /// can keep its `&self` read path.
    pub(crate) fn get<S: OpSink>(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        sink: &mut S,
    ) -> Option<CachedAnswer> {
        let e = self.entries.get(&(name.clone(), rtype))?;
        if !e.pinned && e.expires_at <= now {
            return None;
        }
        sink.stats().hits += 1;
        sink.note(
            now,
            CacheOp::Serve,
            &e.rrset,
            e.rank,
            e.provenance,
            Some(now.since(e.stored_at).as_millis()),
            e.fingerprint,
        );
        let mut rrset = e.rrset.clone();
        if !e.pinned {
            let age = now.secs_since(e.stored_at) as u32;
            rrset.ttl = rrset.ttl.saturating_sub_secs(age);
        }
        Some(CachedAnswer {
            rrset,
            rank: e.rank,
            stale: false,
            provenance: e.provenance,
        })
    }

    /// SLRU promotion after a hit: moves the entry from probation into
    /// the protected tier, demoting the protected entry closest to
    /// expiry when the tier is full. No-op when admission is off, for
    /// pinned entries, and for entries already protected — so the
    /// sequential engine (which never calls this) and an
    /// admission-off shared segment have identical index states.
    pub(crate) fn touch(&mut self, name: &Name, rtype: RecordType) {
        if !self.slru {
            return;
        }
        let Some(e) = self.entries.get_mut(&(name.clone(), rtype)) else {
            return;
        };
        if e.pinned || e.protected {
            return;
        }
        let expires_ms = e.expires_at.as_millis();
        let code = rtype.code();
        if !self
            .probation
            .cancel_by(expires_ms, |(n, c)| *c == code && n == name)
        {
            return;
        }
        e.protected = true;
        self.protected.insert(expires_ms, (name.clone(), code));
        if self.protected.len() > self.protected_cap {
            if let Some((demoted_ms, (dname, dcode))) = self.protected.pop_first() {
                let rt = RecordType::from_code(dcode).expect("index holds valid type codes");
                if let Some(d) = self.entries.get_mut(&(dname.clone(), rt)) {
                    d.protected = false;
                }
                self.probation.insert(demoted_ms, (dname, dcode));
            }
        }
    }

    /// See [`Cache::expired_since`].
    pub(crate) fn expired_since(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<SimDuration> {
        // The expiry indexes cover every unpinned entry and cache their
        // minimum fire time, so they answer "is anything expired at
        // all?" in O(1) without touching the entry table. Resolvers
        // probe this on *every* query; in the common all-fresh cache
        // the probe ends here.
        let earliest = match (self.probation.earliest_ms(), self.protected.earliest_ms()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        if earliest > now.as_millis() {
            return None;
        }
        let e = self.entries.get(&(name.clone(), rtype))?;
        if e.pinned || e.expires_at > now {
            return None;
        }
        Some(now.since(e.expires_at))
    }

    /// See [`Cache::freshness`].
    pub(crate) fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        let e = self.entries.get(&(name.clone(), rtype))?;
        if e.pinned {
            return Some(1.0);
        }
        if e.expires_at <= now {
            return None;
        }
        let total = e.rrset.ttl.as_secs() as f64;
        if total == 0.0 {
            return None;
        }
        let remaining = e.expires_at.since(now).as_secs_f64();
        Some((remaining / total).clamp(0.0, 1.0))
    }

    /// See [`Cache::get_stale`].
    pub(crate) fn get_stale<S: OpSink>(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
        sink: &mut S,
    ) -> Option<CachedAnswer> {
        let e = self.entries.get(&(name.clone(), rtype))?;
        if e.expires_at > now || e.pinned {
            return self.get(name, rtype, now, sink);
        }
        let staleness = now.secs_since(e.expires_at);
        if staleness > max_stale.as_secs() as u64 {
            return None;
        }
        sink.stats().stale_hits += 1;
        sink.note(
            now,
            CacheOp::StaleServe,
            &e.rrset,
            e.rank,
            e.provenance,
            Some(now.since(e.stored_at).as_millis()),
            e.fingerprint,
        );
        let mut rrset = e.rrset.clone();
        rrset.ttl = Ttl::from_secs(30);
        Some(CachedAnswer {
            rrset,
            rank: e.rank,
            stale: true,
            provenance: e.provenance,
        })
    }

    /// See [`Cache::store_negative`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        let ttl = policy.clamp_ttl(soa_minimum.min(soa_ttl));
        if ttl.is_zero() {
            return;
        }
        self.negatives.insert(
            (name, rtype),
            NegEntry {
                rcode,
                expires_at: now + ttl_span(ttl),
            },
        );
    }

    /// See [`Cache::store_failure`].
    pub(crate) fn store_failure<S: OpSink>(
        &mut self,
        name: Name,
        rtype: RecordType,
        ttl: Ttl,
        now: SimTime,
        sink: &mut S,
    ) {
        if ttl.is_zero() {
            return;
        }
        // RFC 2308 §7: failures must not be cached for longer than
        // five minutes.
        let ttl = ttl.min(Ttl::from_secs(300));
        let shell = RRset {
            name: name.clone(),
            rtype,
            ttl,
            rdatas: vec![],
        };
        sink.note(
            now,
            CacheOp::NegCache,
            &shell,
            Credibility::AuthAuthority,
            Provenance {
                original_ttl: ttl,
                effective_ttl: ttl,
                ..Provenance::default()
            },
            None,
            0,
        );
        self.negatives.insert(
            (name, rtype),
            NegEntry {
                rcode: Rcode::ServFail,
                expires_at: now + ttl_span(ttl),
            },
        );
    }

    /// See [`Cache::get_negative`].
    pub(crate) fn get_negative(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<Rcode> {
        let e = self.negatives.get(&(name.clone(), rtype))?;
        (e.expires_at > now).then_some(e.rcode)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// See [`Cache::purge_expired`]. Expired entries are the merged
    /// prefixes of both tier indexes up to `now`, drained in global
    /// `(expires_at, name, type code)` order — the same ledger order as
    /// the single-index engine, regardless of which tier held an entry.
    pub(crate) fn purge_expired<S: OpSink>(&mut self, now: SimTime, sink: &mut S) {
        let now_ms = now.as_millis();
        loop {
            // The exact O(1) earliest-time cache answers "anything due,
            // and in which tier?" without a bucket scan; only a
            // same-instant collision across tiers needs the full
            // `(expires_at, name, code)` comparison to keep the global
            // single-index drain order, and `first` cascades there so
            // the peek is over a fine bucket.
            let p = self.probation.earliest_ms().filter(|t| *t <= now_ms);
            let q = self.protected.earliest_ms().filter(|t| *t <= now_ms);
            let from_probation = match (p, q) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) if a != b => a < b,
                // Same expiry millisecond in both tiers: time first,
                // then the tie key, exactly as one merged index would.
                (Some(_), Some(_)) => {
                    let pk = self.probation.first().map(|(t, k)| (t, k.clone()));
                    pk <= self.protected.first().map(|(t, k)| (t, k.clone()))
                }
            };
            let (_, (name, code)) = if from_probation {
                self.probation.pop_first().expect("first just seen")
            } else {
                self.protected.pop_first().expect("first just seen")
            };
            let rtype = RecordType::from_code(code).expect("index holds valid type codes");
            let e = self
                .entries
                .remove(&(name, rtype))
                .expect("index entry has a backing cache entry");
            sink.stats().expiries += 1;
            sink.note(
                now,
                CacheOp::Expire,
                &e.rrset,
                e.rank,
                e.provenance,
                Some(now.since(e.stored_at).as_millis()),
                e.fingerprint,
            );
        }
        self.negatives.retain(|_, e| e.expires_at > now);
    }

    /// See [`Cache::clear`].
    pub(crate) fn clear<S: OpSink>(&mut self, sink: &mut S) {
        sink.stats().clears += self.entries.len() as u64;
        self.entries.clear();
        self.probation.clear();
        self.protected.clear();
        self.negatives.clear();
    }
}

/// Always-on accounting plus the opt-in provenance ledger, behind a
/// `RefCell` so the `&self` read path ([`Cache::get`]) can record
/// serves. The sequential engine is single-threaded; the borrow is
/// never contended.
#[derive(Debug, Default)]
struct CacheMeta {
    stats: CacheStats,
    ledger: Option<Box<Ledger>>,
}

/// The sequential engine's [`OpSink`]: stats + ledger behind the
/// `RefCell`, trace events into the `Rc`-based telemetry handle.
struct SeqSink<'a> {
    meta: std::cell::RefMut<'a, CacheMeta>,
    telemetry: &'a Telemetry,
}

impl OpSink for SeqSink<'_> {
    fn stats(&mut self) -> &mut CacheStats {
        &mut self.meta.stats
    }

    fn note(
        &mut self,
        now: SimTime,
        op: CacheOp,
        rrset: &RRset,
        rank: Credibility,
        prov: Provenance,
        residency_ms: Option<u64>,
        fingerprint: u64,
    ) {
        if let Some(ledger) = self.meta.ledger.as_mut() {
            ledger.record(now, op, rrset, rank, &prov, residency_ms, fingerprint);
        }
        note_telemetry(
            self.telemetry,
            now,
            op,
            rrset,
            rank,
            &prov,
            residency_ms,
            fingerprint,
        );
    }
}

/// Emits the typed trace event (and the eviction time series) for one
/// cache transaction.
#[allow(clippy::too_many_arguments)]
fn note_telemetry(
    telemetry: &Telemetry,
    now: SimTime,
    op: CacheOp,
    rrset: &RRset,
    rank: Credibility,
    prov: &Provenance,
    residency_ms: Option<u64>,
    fingerprint: u64,
) {
    if op == CacheOp::Evict {
        // Capacity-pressure evictions get a sim-time series so the
        // timeline shows *when* churn happens, not just how much.
        telemetry.count_keyed_at(&EVICTIONS_KEY, 1, now.as_millis());
    }
    telemetry.event(now.as_millis(), event_kind(op), |f| {
        // Shared/Static/Hex64/Addr values straight into the trace
        // arena: recording a cache transaction allocates nothing —
        // hex and address rendering are deferred to export time.
        f.push("qname", rrset.name.shared_str());
        f.push("qtype", Value::literal(rrset.rtype.as_str()));
        f.push("fp", Value::Hex64(fingerprint));
        if op == CacheOp::Serve {
            // Serve is the hot path: a warm hit fires one of these
            // per client query. The full provenance (rank, origin,
            // bailiwick, server, ttl, txn) was already traced on
            // insert under the same fingerprint and is recorded on
            // every ledger line, so the trace carries just enough
            // to join against those.
            if let Some(res) = residency_ms {
                f.push("residency_ms", res);
            }
            return;
        }
        f.push("rank", Value::literal(rank_token(rank)));
        f.push("origin", Value::literal(prov.origin.as_str()));
        f.push("bailiwick", Value::literal(prov.bailiwick.as_str()));
        f.push("ttl", prov.effective_ttl.as_secs() as u64);
        f.push("txn", prov.txn);
        if let Some(server) = prov.server {
            f.push("server", server);
        }
        if let Some(res) = residency_ms {
            f.push("residency_ms", res);
        }
    });
}

/// The cache proper — the sequential engine, and the oracle every
/// differential suite measures other engines against.
///
/// ```
/// use dnsttl_resolver::{Cache, Credibility};
/// use dnsttl_core::ResolverPolicy;
/// use dnsttl_netsim::SimTime;
/// use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};
///
/// let policy = ResolverPolicy::default();
/// let mut cache = Cache::new();
/// let name = Name::parse("a.nic.uy").unwrap();
/// let rrset = RRset {
///     name: name.clone(),
///     rtype: RecordType::A,
///     ttl: Ttl::from_secs(120),
///     rdatas: vec![RData::A("200.40.241.1".parse().unwrap())],
/// };
/// cache.store(rrset, Credibility::AuthAnswer, SimTime::ZERO, &policy, false);
/// // 50 s later the remaining TTL is 70 s…
/// let got = cache.get(&name, RecordType::A, SimTime::from_secs(50)).unwrap();
/// assert_eq!(got.rrset.ttl.as_secs(), 70);
/// // …and at 120 s it is gone.
/// assert!(cache.get(&name, RecordType::A, SimTime::from_secs(120)).is_none());
/// ```
#[derive(Debug, Default)]
pub struct Cache {
    pub(crate) core: CacheCore,
    /// Stats (always) + provenance ledger (opt-in).
    meta: RefCell<CacheMeta>,
    /// Typed cache-transaction events land here when enabled.
    telemetry: Telemetry,
}

impl Cache {
    /// An empty, unbounded cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// A cache bounded to `capacity` positive entries. When full, the
    /// entry closest to expiry is evicted first (least remaining
    /// value), pinned entries last.
    pub fn with_capacity(capacity: usize) -> Cache {
        Cache {
            core: CacheCore::new(Some(capacity), false),
            ..Cache::default()
        }
    }

    /// Entries evicted under capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.core.evictions()
    }

    /// Routes the cache's typed transaction events into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Turns on the provenance ledger: every transaction from here on
    /// is journalled and aggregated per attribution cell. Off by
    /// default — the always-on path keeps only [`CacheStats`].
    pub fn enable_ledger(&mut self) {
        let mut meta = self.meta.borrow_mut();
        if meta.ledger.is_none() {
            meta.ledger = Some(Box::new(Ledger::new()));
        }
    }

    /// Whether the provenance ledger is recording.
    pub fn ledger_enabled(&self) -> bool {
        self.meta.borrow().ledger.is_some()
    }

    /// Runs `f` against the ledger, if enabled.
    pub fn with_ledger<T>(&self, f: impl FnOnce(&Ledger) -> T) -> Option<T> {
        self.meta.borrow().ledger.as_deref().map(f)
    }

    /// The always-on transaction counts.
    pub fn stats(&self) -> CacheStats {
        self.meta.borrow().stats
    }

    /// The per-call [`OpSink`] borrowing this cache's meta + telemetry.
    fn sink(&self) -> SeqSink<'_> {
        SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        }
    }

    /// Stores an RRset under `rank`, applying the policy's TTL clamp and
    /// replacement rules. `pinned` marks RFC 7706 mirrored data.
    ///
    /// Replacement rules (the crux of §3 and §4.2 of the paper):
    ///
    /// * expired entries are always replaced;
    /// * fresh entries are replaced by data of **equal or higher** rank
    ///   (RFC 2181 §5.4.1) — this is how re-fetched referral glue
    ///   carries a renumbered address into the cache at NS-expiry time,
    ///   producing the coupled NS/A lifetimes of §4.2;
    /// * a policy with `link_inbailiwick_glue = false` keeps fresh glue
    ///   instead of replacing it with *equal*-ranked glue — the minority
    ///   "trust my cache" behaviour visible as the slow-decaying old
    ///   server bars in Figure 6;
    /// * a **parent-centric** policy refuses to replace fresh
    ///   referral-ranked data with the child's authoritative data —
    ///   the referral is its truth (§3.2's 10%).
    ///
    /// Zero-TTL RRsets are not cached at all (§5.1.2: TTL 0 "undermines
    /// caching"), and any same-key negative entry is invalidated.
    pub fn store(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
    ) {
        self.store_with(rrset, rank, now, policy, pinned, StoreContext::default());
    }

    /// [`Cache::store`] with provenance: the installing transaction id,
    /// the responding server, and the bailiwick class the resolution
    /// loop computed against the queried zone. Each accepted store is
    /// classified as an *insert* (key empty, or old entry removed with
    /// its own cause), a *refresh* (identical data — only the clock
    /// restarts; §4.2's NS-coupled glue refresh), or an *overwrite*
    /// (different data — e.g. a renumbering becoming visible).
    pub fn store_with(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    ) {
        let mut sink = SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        };
        self.core
            .store_with(rrset, rank, now, policy, pinned, ctx, &mut sink);
    }

    /// Removes the entry under `(name, rtype)`, attributing the
    /// removal to an explicit invalidation — what an operator's cache
    /// flush after a renumbering does. Returns true if present.
    pub fn invalidate(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        let mut sink = SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        };
        self.core.invalidate(name, rtype, now, &mut sink)
    }

    /// Invalidates every positive entry at or below `apex` (the
    /// `rndc flushtree` analogue). Returns how many entries died.
    pub fn invalidate_zone(&mut self, apex: &Name, now: SimTime) -> usize {
        let mut sink = SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        };
        self.core.invalidate_zone(apex, now, &mut sink)
    }

    /// Fetches a fresh entry, decrementing TTLs by age. Pinned entries
    /// are served at full TTL (an RFC 7706 mirror is always fresh).
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        let mut sink = self.sink();
        self.core.get(name, rtype, now, &mut sink)
    }

    /// If an entry exists for `(name, rtype)` but is past its TTL (and
    /// not pinned), returns how long ago it expired. This is the
    /// telemetry probe distinguishing an *expiry* (the resolver held
    /// the data and lost it to the TTL — the refetches of Figure 6)
    /// from a plain miss (never cached).
    pub fn expired_since(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<SimDuration> {
        self.core.expired_since(name, rtype, now)
    }

    /// Remaining lifetime of a fresh entry as a fraction of its
    /// original TTL (1.0 = just stored, →0.0 = about to expire).
    /// Pinned entries are always 1.0; absent/expired entries are None.
    /// Prefetching resolvers use this to decide when to refresh ahead.
    pub fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        self.core.freshness(name, rtype, now)
    }

    /// Fetches an entry even if expired, for serve-stale: the entry must
    /// not be older than `expires_at + max_stale`. Stale answers carry a
    /// short 30 s TTL, per draft-ietf-dnsop-serve-stale.
    pub fn get_stale(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer> {
        let mut sink = self.sink();
        self.core.get_stale(name, rtype, now, max_stale, &mut sink)
    }

    /// Stores a negative answer (NXDOMAIN or NODATA) bounded by the SOA
    /// `minimum` / SOA TTL pair per RFC 2308.
    #[allow(clippy::too_many_arguments)]
    pub fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        self.core
            .store_negative(name, rtype, rcode, soa_minimum, soa_ttl, now, policy);
    }

    /// Caches an *upstream failure* (SERVFAIL / every server dead) for
    /// `ttl`, per RFC 2308 §7: subsequent queries for the key are
    /// answered from this entry instead of hammering dead servers —
    /// RFC 8767's "failure recheck timer". Journalled as a
    /// [`CacheOp::NegCache`] transaction so provenance forensics see
    /// the outage response, even though no RRset is held.
    pub fn store_failure(&mut self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime) {
        let mut sink = SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        };
        self.core.store_failure(name, rtype, ttl, now, &mut sink);
    }

    /// Fresh negative entry for the key, if any.
    pub fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode> {
        self.core.get_negative(name, rtype, now)
    }

    /// Number of positive entries (fresh and expired).
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// True if the cache holds no positive entries.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// Drops expired, unpinned entries. Not required for correctness
    /// (reads check freshness) but keeps long simulations lean. Each
    /// drop is a ledger `expire` transaction in deterministic
    /// `(expires_at, name, type code)` order.
    pub fn purge_expired(&mut self, now: SimTime) {
        let mut sink = SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        };
        self.core.purge_expired(now, &mut sink);
    }

    /// Removes every entry (used between experiment phases). Counted
    /// as `clears` in the stats; no per-entry ledger records — a phase
    /// boundary is not a cache event the paper cares about.
    pub fn clear(&mut self) {
        let mut sink = SeqSink {
            meta: self.meta.borrow_mut(),
            telemetry: &self.telemetry,
        };
        self.core.clear(&mut sink);
    }
}

/// The trace-event kind for a ledger op.
pub(crate) fn event_kind(op: CacheOp) -> EventKind {
    match op {
        CacheOp::Insert => EventKind::CacheInsert,
        CacheOp::Refresh => EventKind::CacheRefresh,
        CacheOp::Overwrite => EventKind::CacheOverwrite,
        CacheOp::Serve => EventKind::CacheServe,
        CacheOp::Expire => EventKind::CacheExpiredDrop,
        CacheOp::Evict => EventKind::CacheEvict,
        CacheOp::Invalidate => EventKind::CacheInvalidate,
        CacheOp::StaleServe => EventKind::CacheStaleServe,
        CacheOp::NegCache => EventKind::NegCache,
    }
}

/// TTL seconds as a simulated duration.
fn ttl_span(ttl: Ttl) -> dnsttl_netsim::SimDuration {
    dnsttl_netsim::SimDuration::from_secs(ttl.as_secs() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_wire::RData;

    fn policy() -> ResolverPolicy {
        ResolverPolicy::default()
    }

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_rrset(name: &str, ttl: u32, last: u8) -> RRset {
        RRset {
            name: n(name),
            rtype: RecordType::A,
            ttl: Ttl::from_secs(ttl),
            rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, last))],
        }
    }

    #[test]
    fn ttl_decrements_with_age() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 300, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        let got = c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(got.rrset.ttl.as_secs(), 200);
    }

    #[test]
    fn expired_entries_are_not_served() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 300, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(300))
            .is_none());
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(299))
            .is_some());
    }

    #[test]
    fn lower_rank_cannot_displace_fresh_higher_rank() {
        let mut c = Cache::new();
        c.store(
            a_rrset("ns.example", 3600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("ns.example", 172800, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(10),
            &policy(),
            false,
        );
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(20))
            .unwrap();
        assert_eq!(got.rank, Credibility::AuthAnswer);
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 1).rdatas);
    }

    #[test]
    fn equal_rank_replaces_and_refreshes() {
        // Re-fetched glue replaces cached glue — the mechanism behind
        // §4.2's NS/A lifetime coupling.
        let mut c = Cache::new();
        c.store(
            a_rrset("ns.example", 7200, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("ns.example", 7200, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(3600),
            &policy(),
            false,
        );
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(3700))
            .unwrap();
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 2).rdatas);
        assert_eq!(got.rrset.ttl.as_secs(), 7100);
    }

    #[test]
    fn unlinked_policy_keeps_old_glue_until_expiry() {
        let p = ResolverPolicy {
            link_inbailiwick_glue: false,
            ..ResolverPolicy::default()
        };
        let mut c = Cache::new();
        c.store(
            a_rrset("ns.example", 7200, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &p,
            false,
        );
        c.store(
            a_rrset("ns.example", 7200, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(3600),
            &p,
            false,
        );
        // Old glue still served…
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(3700))
            .unwrap();
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 1).rdatas);
        // …until it expires; a later store succeeds.
        c.store(
            a_rrset("ns.example", 7200, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(7300),
            &p,
            false,
        );
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(7400))
            .unwrap();
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 2).rdatas);
    }

    #[test]
    fn parent_centric_refuses_child_overwrite() {
        let p = ResolverPolicy::parent_centric();
        let mut c = Cache::new();
        c.store(
            a_rrset("a.nic.uy", 172800, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &p,
            false,
        );
        c.store(
            a_rrset("a.nic.uy", 120, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(5),
            &p,
            false,
        );
        let got = c
            .get(&n("a.nic.uy"), RecordType::A, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(got.rank, Credibility::ReferralAdditional);
        assert_eq!(got.rrset.ttl.as_secs(), 172_790);
    }

    #[test]
    fn child_centric_overwrites_glue_with_answer() {
        let mut c = Cache::new();
        c.store(
            a_rrset("a.nic.uy", 172800, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("a.nic.uy", 120, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(5),
            &policy(),
            false,
        );
        let got = c
            .get(&n("a.nic.uy"), RecordType::A, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(got.rank, Credibility::AuthAnswer);
        assert_eq!(got.rrset.ttl.as_secs(), 115);
    }

    #[test]
    fn pinned_entries_never_age() {
        let mut c = Cache::new();
        c.store(
            a_rrset("uy", 172800, 1),
            Credibility::ReferralAuthority,
            SimTime::ZERO,
            &policy(),
            true,
        );
        let got = c
            .get(&n("uy"), RecordType::A, SimTime::from_secs(1_000_000))
            .unwrap();
        assert_eq!(got.rrset.ttl.as_secs(), 172_800);
    }

    #[test]
    fn ttl_cap_applies_at_store_time() {
        let p = ResolverPolicy::google_like();
        let mut c = Cache::new();
        c.store(
            a_rrset("google.co", 345_600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &p,
            false,
        );
        let got = c
            .get(&n("google.co"), RecordType::A, SimTime::ZERO)
            .unwrap();
        assert_eq!(got.rrset.ttl.as_secs(), 21_599);
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 0, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::ZERO)
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn stale_service_within_window() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // Expired at 60 s; stale window one day.
        let got = c
            .get_stale(
                &n("x.example"),
                RecordType::A,
                SimTime::from_secs(600),
                Ttl::DAY,
            )
            .unwrap();
        assert!(got.stale);
        assert_eq!(got.rrset.ttl.as_secs(), 30);
        // Beyond the stale window: gone.
        assert!(c
            .get_stale(
                &n("x.example"),
                RecordType::A,
                SimTime::from_secs(90_000),
                Ttl::DAY
            )
            .is_none());
    }

    #[test]
    fn freshness_tracks_remaining_fraction() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 1000, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        let f0 = c
            .freshness(&n("x.example"), RecordType::A, SimTime::ZERO)
            .unwrap();
        assert!((f0 - 1.0).abs() < 1e-9);
        let f_mid = c
            .freshness(&n("x.example"), RecordType::A, SimTime::from_secs(500))
            .unwrap();
        assert!((f_mid - 0.5).abs() < 1e-9);
        let f_late = c
            .freshness(&n("x.example"), RecordType::A, SimTime::from_secs(950))
            .unwrap();
        assert!(f_late < 0.1);
        assert!(c
            .freshness(&n("x.example"), RecordType::A, SimTime::from_secs(1_000))
            .is_none());
        assert!(c
            .freshness(&n("y.example"), RecordType::A, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn pinned_entries_are_always_fresh() {
        let mut c = Cache::new();
        c.store(
            a_rrset("uy", 300, 1),
            Credibility::ReferralAuthority,
            SimTime::ZERO,
            &policy(),
            true,
        );
        let f = c
            .freshness(&n("uy"), RecordType::A, SimTime::from_secs(1_000_000))
            .unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn negative_caching_round_trip() {
        let mut c = Cache::new();
        c.store_negative(
            n("missing.example"),
            RecordType::A,
            Rcode::NxDomain,
            Ttl::from_secs(300),
            Ttl::HOUR,
            SimTime::ZERO,
            &policy(),
        );
        assert_eq!(
            c.get_negative(
                &n("missing.example"),
                RecordType::A,
                SimTime::from_secs(100)
            ),
            Some(Rcode::NxDomain)
        );
        // Bounded by min(SOA minimum, SOA TTL) = 300 s.
        assert_eq!(
            c.get_negative(
                &n("missing.example"),
                RecordType::A,
                SimTime::from_secs(300)
            ),
            None
        );
    }

    #[test]
    fn positive_store_clears_negative() {
        let mut c = Cache::new();
        c.store_negative(
            n("x.example"),
            RecordType::A,
            Rcode::NxDomain,
            Ttl::HOUR,
            Ttl::HOUR,
            SimTime::ZERO,
            &policy(),
        );
        c.store(
            a_rrset("x.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::from_secs(10),
            &policy(),
            false,
        );
        assert_eq!(
            c.get_negative(&n("x.example"), RecordType::A, SimTime::from_secs(11)),
            None
        );
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(11))
            .is_some());
    }

    #[test]
    fn bounded_cache_evicts_soonest_to_expire() {
        let mut c = Cache::with_capacity(2);
        c.store(
            a_rrset("long.example", 3_600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("short.example", 60, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // Third entry: the 60 s one goes.
        c.store(
            a_rrset("new.example", 600, 3),
            Credibility::AuthAnswer,
            SimTime::from_secs(1),
            &policy(),
            false,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c
            .get(&n("short.example"), RecordType::A, SimTime::from_secs(1))
            .is_none());
        assert!(c
            .get(&n("long.example"), RecordType::A, SimTime::from_secs(1))
            .is_some());
        assert!(c
            .get(&n("new.example"), RecordType::A, SimTime::from_secs(1))
            .is_some());
    }

    #[test]
    fn bounded_cache_update_in_place_does_not_evict() {
        let mut c = Cache::with_capacity(2);
        c.store(
            a_rrset("a.example", 600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("b.example", 600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // Refreshing an existing key at capacity must not evict.
        c.store(
            a_rrset("a.example", 600, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(10),
            &policy(),
            false,
        );
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn bounded_cache_never_evicts_pinned() {
        let mut c = Cache::with_capacity(1);
        c.store(
            a_rrset("root.example", 600, 1),
            Credibility::ReferralAuthority,
            SimTime::ZERO,
            &policy(),
            true,
        );
        c.store(
            a_rrset("x.example", 600, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // The pinned entry survives; the cache grows past capacity
        // rather than dropping mirrored zone data.
        assert!(c
            .get(&n("root.example"), RecordType::A, SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn purge_drops_expired_keeps_pinned() {
        let mut c = Cache::new();
        c.store(
            a_rrset("a.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("b.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            true,
        );
        c.purge_expired(SimTime::from_secs(120));
        assert_eq!(c.len(), 1);
        assert!(c
            .get(&n("b.example"), RecordType::A, SimTime::from_secs(120))
            .is_some());
    }

    /// Seeded property test: across random insert / time-advance /
    /// stale-query sequences, an answer's effective age never exceeds
    /// its original TTL + max-stale, and the fresh/stale/gone regimes
    /// match a shadow model exactly.
    #[test]
    fn stale_serving_never_exceeds_ttl_plus_max_stale() {
        let max_stale = Ttl::from_secs(300);
        for seed in 0..16u64 {
            let mut rng = dnsttl_netsim::SimRng::seed_from(0xC4A0_5000 + seed);
            let mut c = Cache::new();
            let mut now = SimTime::ZERO;
            // Shadow model: when the single tracked name was last
            // stored, and with what TTL.
            let mut shadow: Option<(SimTime, u64)> = None;
            for _ in 0..400 {
                match rng.below(3) {
                    0 => {
                        let ttl = 60 + rng.below(540) as u32;
                        c.store(
                            a_rrset("p.example", ttl, 1),
                            Credibility::AuthAnswer,
                            now,
                            &policy(),
                            false,
                        );
                        shadow = Some((now, ttl as u64));
                    }
                    1 => {
                        now += SimDuration::from_secs(1 + rng.below(200));
                    }
                    _ => {
                        let got = c.get_stale(&n("p.example"), RecordType::A, now, max_stale);
                        match shadow {
                            None => assert!(got.is_none(), "seed {seed}: answer before insert"),
                            Some((stored, ttl)) => {
                                let age = now.secs_since(stored);
                                if let Some(ans) = &got {
                                    assert!(
                                        age <= ttl + max_stale.as_secs() as u64,
                                        "seed {seed}: served at age {age}s, ttl {ttl}s \
                                         + max-stale {}s exceeded",
                                        max_stale.as_secs()
                                    );
                                    assert_eq!(ans.stale, age >= ttl, "seed {seed}: regime");
                                }
                                if age < ttl {
                                    assert!(got.is_some(), "seed {seed}: fresh entry unserved");
                                } else if age > ttl + max_stale.as_secs() as u64 {
                                    assert!(got.is_none(), "seed {seed}: over-stale served");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Seeded property test: however stale an entry has become, a
    /// successful refresh (re-store) always resets staleness — the next
    /// lookup is fresh with the full new TTL.
    #[test]
    fn refresh_always_resets_staleness() {
        let max_stale = Ttl::DAY;
        for seed in 0..16u64 {
            let mut rng = dnsttl_netsim::SimRng::seed_from(0x5EED_0000 + seed);
            let mut c = Cache::new();
            let ttl = 60 + rng.below(540) as u32;
            c.store(
                a_rrset("r.example", ttl, 1),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy(),
                false,
            );
            // Let it go stale by a random margin inside the window.
            let stale_by = 1 + rng.below(max_stale.as_secs() as u64 - ttl as u64);
            let when = SimTime::from_secs(ttl as u64 + stale_by);
            let before = c
                .get_stale(&n("r.example"), RecordType::A, when, max_stale)
                .expect("inside max-stale window");
            assert!(before.stale, "seed {seed}: expected a stale answer");
            assert_eq!(before.rrset.ttl.as_secs(), 30, "stale answers carry 30 s");
            // Refresh with new data at the same instant.
            let new_ttl = 60 + rng.below(540) as u32;
            c.store(
                a_rrset("r.example", new_ttl, 2),
                Credibility::AuthAnswer,
                when,
                &policy(),
                false,
            );
            let after = c
                .get_stale(&n("r.example"), RecordType::A, when, max_stale)
                .expect("just refreshed");
            assert!(!after.stale, "seed {seed}: refresh must reset staleness");
            assert_eq!(after.rrset.ttl.as_secs(), new_ttl, "full TTL after refresh");
            assert_eq!(after.rrset.rdatas, a_rrset("r.example", 0, 2).rdatas);
        }
    }

    #[test]
    fn failure_caching_is_capped_at_five_minutes() {
        let mut c = Cache::new();
        c.enable_ledger();
        c.store_failure(n("down.example"), RecordType::A, Ttl::HOUR, SimTime::ZERO);
        // RFC 2308 §7: upstream-failure entries live at most 5 minutes.
        assert_eq!(
            c.get_negative(&n("down.example"), RecordType::A, SimTime::from_secs(299)),
            Some(Rcode::ServFail)
        );
        assert_eq!(
            c.get_negative(&n("down.example"), RecordType::A, SimTime::from_secs(300)),
            None
        );
        let neg_caches = c
            .with_ledger(|l| l.cells().map(|(_, cell)| cell.neg_caches).sum::<u64>())
            .unwrap();
        assert_eq!(neg_caches, 1);
    }

    /// A throwaway sink for driving [`CacheCore`] directly in SLRU
    /// tests: counts into a plain [`CacheStats`], drops every record.
    #[derive(Default)]
    struct TestSink {
        stats: CacheStats,
    }

    impl OpSink for TestSink {
        fn stats(&mut self) -> &mut CacheStats {
            &mut self.stats
        }

        fn note(
            &mut self,
            _now: SimTime,
            _op: CacheOp,
            _rrset: &RRset,
            _rank: Credibility,
            _prov: Provenance,
            _residency_ms: Option<u64>,
            _fingerprint: u64,
        ) {
        }
    }

    #[test]
    fn slru_touch_shields_promoted_entry_from_eviction() {
        let mut core = CacheCore::new(Some(2), true);
        let mut sink = TestSink::default();
        let p = policy();
        core.store_with(
            a_rrset("hot.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &p,
            false,
            StoreContext::default(),
            &mut sink,
        );
        core.store_with(
            a_rrset("cold.example", 3_600, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &p,
            false,
            StoreContext::default(),
            &mut sink,
        );
        // A hit promotes hot.example out of probation even though it
        // expires first…
        assert!(core
            .get(
                &n("hot.example"),
                RecordType::A,
                SimTime::from_secs(1),
                &mut sink
            )
            .is_some());
        core.touch(&n("hot.example"), RecordType::A);
        // …so capacity pressure evicts the probation entry instead of
        // the soonest-to-expire one.
        core.store_with(
            a_rrset("new.example", 600, 3),
            Credibility::AuthAnswer,
            SimTime::from_secs(2),
            &p,
            false,
            StoreContext::default(),
            &mut sink,
        );
        assert!(core
            .get(
                &n("hot.example"),
                RecordType::A,
                SimTime::from_secs(3),
                &mut sink
            )
            .is_some());
        assert!(core
            .get(
                &n("cold.example"),
                RecordType::A,
                SimTime::from_secs(3),
                &mut sink
            )
            .is_none());
        assert_eq!(core.evictions(), 1);
        // Conservation holds through promotion and eviction.
        assert_eq!(
            sink.stats.inserts,
            sink.stats.removals() + core.len() as u64
        );
    }

    #[test]
    fn slru_overfull_protected_tier_demotes_oldest_expiry() {
        // Capacity 2 → protected_cap 1: promoting a second entry must
        // demote the protected one closest to expiry back to probation.
        let mut core = CacheCore::new(Some(2), true);
        let mut sink = TestSink::default();
        let p = policy();
        for (name, ttl, last) in [("a.example", 60u32, 1u8), ("b.example", 3_600, 2)] {
            core.store_with(
                a_rrset(name, ttl, last),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &p,
                false,
                StoreContext::default(),
                &mut sink,
            );
        }
        core.touch(&n("a.example"), RecordType::A);
        core.touch(&n("b.example"), RecordType::A);
        // a.example (earliest expiry) was demoted, so it is the next
        // eviction victim again.
        core.store_with(
            a_rrset("c.example", 600, 3),
            Credibility::AuthAnswer,
            SimTime::from_secs(1),
            &p,
            false,
            StoreContext::default(),
            &mut sink,
        );
        assert!(core
            .get(
                &n("a.example"),
                RecordType::A,
                SimTime::from_secs(2),
                &mut sink
            )
            .is_none());
        assert!(core
            .get(
                &n("b.example"),
                RecordType::A,
                SimTime::from_secs(2),
                &mut sink
            )
            .is_some());
    }

    #[test]
    fn slru_purge_merges_tiers_in_expiry_order() {
        let mut core = CacheCore::new(Some(8), true);
        let mut sink = TestSink::default();
        let p = policy();
        for (name, ttl, last) in [
            ("a.example", 60u32, 1u8),
            ("b.example", 120, 2),
            ("c.example", 240, 3),
        ] {
            core.store_with(
                a_rrset(name, ttl, last),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &p,
                false,
                StoreContext::default(),
                &mut sink,
            );
        }
        // b.example is protected; a and c stay in probation.
        core.touch(&n("b.example"), RecordType::A);
        core.purge_expired(SimTime::from_secs(150), &mut sink);
        // Both expired entries died exactly once, whichever tier held
        // them — the double-count audit in miniature.
        assert_eq!(sink.stats.expiries, 2);
        assert_eq!(core.len(), 1);
        assert_eq!(
            sink.stats.inserts,
            sink.stats.removals() + core.len() as u64
        );
    }

    #[test]
    fn sequential_engine_never_uses_the_protected_tier() {
        // The oracle's Cache::get path must not promote: with SLRU off,
        // eviction order is the pre-SLRU expiry order even for entries
        // that were hit many times.
        let mut c = Cache::with_capacity(2);
        c.store(
            a_rrset("hot.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("cold.example", 3_600, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        for _ in 0..10 {
            assert!(c
                .get(&n("hot.example"), RecordType::A, SimTime::from_secs(1))
                .is_some());
        }
        c.store(
            a_rrset("new.example", 600, 3),
            Credibility::AuthAnswer,
            SimTime::from_secs(2),
            &policy(),
            false,
        );
        // Despite the hits, hot.example (soonest expiry) is evicted.
        assert!(c
            .get(&n("hot.example"), RecordType::A, SimTime::from_secs(3))
            .is_none());
    }
}
