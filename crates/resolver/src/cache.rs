//! The resolver cache: credibility-ranked, TTL-expiring, stale-capable.
//!
//! RFC 2181 §5.4.1 ranks DNS data by where it arrived: the answer
//! section of an authoritative response is worth more than the authority
//! section of a referral, which is worth more than glue from the
//! additional section. A cache must never let lower-ranked data replace
//! fresh higher-ranked data. The paper's parent-vs-child question is a
//! question about this ranking: *child-centric* resolvers apply it as
//! written; *parent-centric* resolvers in effect pin referral data above
//! the child's authoritative answers.

use dnsttl_core::{Centricity, ResolverPolicy};
use dnsttl_netsim::{SimDuration, SimTime};
use dnsttl_telemetry::{CacheOp, EventKind, MetricKey, Telemetry, Value};
use dnsttl_wire::{Name, RRset, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

use crate::ledger::{rank_token, CacheStats, Ledger, Provenance, RecordOrigin, StoreContext};

/// Pre-hashed key for the eviction counter/series: evictions happen
/// under capacity pressure, which is exactly when per-event hashing
/// would hurt most.
const EVICTIONS_KEY: MetricKey = MetricKey::new("resolver_cache_evictions");

/// Trustworthiness of cached data, descending (RFC 2181 §5.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Credibility {
    /// Glue / additional-section data from a referral. Lowest.
    ReferralAdditional,
    /// NS records from the authority section of a referral.
    ReferralAuthority,
    /// Data from the authority section of an authoritative answer.
    AuthAuthority,
    /// Data from the answer section of an authoritative (AA) answer.
    AuthAnswer,
}

/// One positive cache entry.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) rrset: RRset,
    pub(crate) stored_at: SimTime,
    pub(crate) expires_at: SimTime,
    pub(crate) rank: Credibility,
    /// True for entries a local-root (RFC 7706) resolver treats as a
    /// mirrored copy: served at full TTL, never expiring.
    pub(crate) pinned: bool,
    /// Where the entry came from (installing transaction, server,
    /// origin, bailiwick, published vs effective TTL).
    pub(crate) provenance: Provenance,
    /// TTL-excluded fingerprint of the RRset data — refresh vs
    /// overwrite detection, and the snapshot diff anchor.
    pub(crate) fingerprint: u64,
}

/// One negative cache entry (RFC 2308).
#[derive(Debug, Clone)]
struct NegEntry {
    rcode: Rcode,
    expires_at: SimTime,
}

/// A cached RRset as handed to a client or to the iteration logic:
/// TTLs already decremented by the entry's age.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The RRset with remaining (decremented) TTL.
    pub rrset: RRset,
    /// Rank the data was stored under.
    pub rank: Credibility,
    /// True if the entry had expired and was served stale.
    pub stale: bool,
    /// Why this entry is in the cache: installing transaction, source
    /// server, parent/child origin, bailiwick class, published vs
    /// effective TTL.
    pub provenance: Provenance,
}

/// Always-on accounting plus the opt-in provenance ledger, behind a
/// `RefCell` so the `&self` read path ([`Cache::get`]) can record
/// serves. The simulator is single-threaded; the borrow is never
/// contended.
#[derive(Debug, Default)]
struct CacheMeta {
    stats: CacheStats,
    ledger: Option<Box<Ledger>>,
}

/// The cache proper.
///
/// ```
/// use dnsttl_resolver::{Cache, Credibility};
/// use dnsttl_core::ResolverPolicy;
/// use dnsttl_netsim::SimTime;
/// use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};
///
/// let policy = ResolverPolicy::default();
/// let mut cache = Cache::new();
/// let name = Name::parse("a.nic.uy").unwrap();
/// let rrset = RRset {
///     name: name.clone(),
///     rtype: RecordType::A,
///     ttl: Ttl::from_secs(120),
///     rdatas: vec![RData::A("200.40.241.1".parse().unwrap())],
/// };
/// cache.store(rrset, Credibility::AuthAnswer, SimTime::ZERO, &policy, false);
/// // 50 s later the remaining TTL is 70 s…
/// let got = cache.get(&name, RecordType::A, SimTime::from_secs(50)).unwrap();
/// assert_eq!(got.rrset.ttl.as_secs(), 70);
/// // …and at 120 s it is gone.
/// assert!(cache.get(&name, RecordType::A, SimTime::from_secs(120)).is_none());
/// ```
#[derive(Debug, Default)]
pub struct Cache {
    pub(crate) entries: HashMap<(Name, RecordType), Entry>,
    /// Expiry-ordered index over the *unpinned* entries of `entries`:
    /// `(expires_at, name, rtype code)`. Kept in lockstep with every
    /// insert/remove so eviction and expiry purges are ordered-set pops
    /// instead of full-table scans, with the same deterministic
    /// tie-break the scans used (canonical `Name` order, then type
    /// code) — no per-candidate string formatting. Pinned entries never
    /// expire and are never evicted, so they are not indexed.
    expiry: BTreeSet<(SimTime, Name, u16)>,
    negatives: HashMap<(Name, RecordType), NegEntry>,
    /// Maximum positive entries; `None` = unbounded. Real caches are
    /// bounded, and under pressure the *effective* TTL is the eviction
    /// horizon, not the configured TTL (the paper's \[19\] studies
    /// exactly this).
    capacity: Option<usize>,
    /// Entries evicted due to capacity pressure.
    evictions: u64,
    /// Stats (always) + provenance ledger (opt-in).
    meta: RefCell<CacheMeta>,
    /// Typed cache-transaction events land here when enabled.
    telemetry: Telemetry,
}

impl Cache {
    /// An empty, unbounded cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// A cache bounded to `capacity` positive entries. When full, the
    /// entry closest to expiry is evicted first (least remaining
    /// value), pinned entries last.
    pub fn with_capacity(capacity: usize) -> Cache {
        Cache {
            capacity: Some(capacity.max(1)),
            ..Cache::default()
        }
    }

    /// Entries evicted under capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Routes the cache's typed transaction events into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Turns on the provenance ledger: every transaction from here on
    /// is journalled and aggregated per attribution cell. Off by
    /// default — the always-on path keeps only [`CacheStats`].
    pub fn enable_ledger(&mut self) {
        let mut meta = self.meta.borrow_mut();
        if meta.ledger.is_none() {
            meta.ledger = Some(Box::new(Ledger::new()));
        }
    }

    /// Whether the provenance ledger is recording.
    pub fn ledger_enabled(&self) -> bool {
        self.meta.borrow().ledger.is_some()
    }

    /// Runs `f` against the ledger, if enabled.
    pub fn with_ledger<T>(&self, f: impl FnOnce(&Ledger) -> T) -> Option<T> {
        self.meta.borrow().ledger.as_deref().map(f)
    }

    /// The always-on transaction counts.
    pub fn stats(&self) -> CacheStats {
        self.meta.borrow().stats
    }

    /// Records one ledger transaction: journal + cell (when the ledger
    /// is on) and a typed trace event (when telemetry is on). The
    /// caller has already updated [`CacheStats`].
    #[allow(clippy::too_many_arguments)]
    fn note(
        &self,
        now: SimTime,
        op: CacheOp,
        rrset: &RRset,
        rank: Credibility,
        prov: Provenance,
        residency_ms: Option<u64>,
        fingerprint: u64,
    ) {
        {
            let mut meta = self.meta.borrow_mut();
            if let Some(ledger) = meta.ledger.as_mut() {
                ledger.record(now, op, rrset, rank, &prov, residency_ms, fingerprint);
            }
        }
        if op == CacheOp::Evict {
            // Capacity-pressure evictions get a sim-time series so the
            // timeline shows *when* churn happens, not just how much.
            self.telemetry
                .count_keyed_at(&EVICTIONS_KEY, 1, now.as_millis());
        }
        self.telemetry.event(now.as_millis(), event_kind(op), |f| {
            // Shared/Static/Hex64/Addr values straight into the trace
            // arena: recording a cache transaction allocates nothing —
            // hex and address rendering are deferred to export time.
            f.push("qname", rrset.name.shared_str());
            f.push("qtype", Value::literal(rrset.rtype.as_str()));
            f.push("fp", Value::Hex64(fingerprint));
            if op == CacheOp::Serve {
                // Serve is the hot path: a warm hit fires one of these
                // per client query. The full provenance (rank, origin,
                // bailiwick, server, ttl, txn) was already traced on
                // insert under the same fingerprint and is recorded on
                // every ledger line, so the trace carries just enough
                // to join against those.
                if let Some(res) = residency_ms {
                    f.push("residency_ms", res);
                }
                return;
            }
            f.push("rank", Value::literal(rank_token(rank)));
            f.push("origin", Value::literal(prov.origin.as_str()));
            f.push("bailiwick", Value::literal(prov.bailiwick.as_str()));
            f.push("ttl", prov.effective_ttl.as_secs() as u64);
            f.push("txn", prov.txn);
            if let Some(server) = prov.server {
                f.push("server", server);
            }
            if let Some(res) = residency_ms {
                f.push("residency_ms", res);
            }
        });
    }

    /// Makes room for one more entry when at capacity.
    fn evict_if_full(&mut self, incoming: &(Name, RecordType), now: SimTime) {
        let Some(cap) = self.capacity else { return };
        if self.entries.len() < cap || self.entries.contains_key(incoming) {
            return;
        }
        // The victim is the index minimum: the entry with the earliest
        // expiry (already-expired entries sort first by construction),
        // ties broken by canonical name order then type code — never by
        // HashMap iteration order, so the ledger is identical across
        // reruns. Pinned entries are mirrored zone data, never indexed,
        // never evicted. One ordered-set pop replaces the old
        // O(n)-scan-with-string-formatting victim search.
        if let Some((_, name, code)) = self.expiry.pop_first() {
            let rtype = RecordType::from_code(code).expect("index holds valid type codes");
            let e = self
                .entries
                .remove(&(name, rtype))
                .expect("index entry has a backing cache entry");
            self.evictions += 1;
            self.meta.borrow_mut().stats.evictions += 1;
            self.note(
                now,
                CacheOp::Evict,
                &e.rrset,
                e.rank,
                e.provenance,
                Some(now.since(e.stored_at).as_millis()),
                e.fingerprint,
            );
        }
    }

    /// Stores an RRset under `rank`, applying the policy's TTL clamp and
    /// replacement rules. `pinned` marks RFC 7706 mirrored data.
    ///
    /// Replacement rules (the crux of §3 and §4.2 of the paper):
    ///
    /// * expired entries are always replaced;
    /// * fresh entries are replaced by data of **equal or higher** rank
    ///   (RFC 2181 §5.4.1) — this is how re-fetched referral glue
    ///   carries a renumbered address into the cache at NS-expiry time,
    ///   producing the coupled NS/A lifetimes of §4.2;
    /// * a policy with `link_inbailiwick_glue = false` keeps fresh glue
    ///   instead of replacing it with *equal*-ranked glue — the minority
    ///   "trust my cache" behaviour visible as the slow-decaying old
    ///   server bars in Figure 6;
    /// * a **parent-centric** policy refuses to replace fresh
    ///   referral-ranked data with the child's authoritative data —
    ///   the referral is its truth (§3.2's 10%).
    ///
    /// Zero-TTL RRsets are not cached at all (§5.1.2: TTL 0 "undermines
    /// caching"), and any same-key negative entry is invalidated.
    pub fn store(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
    ) {
        self.store_with(rrset, rank, now, policy, pinned, StoreContext::default());
    }

    /// [`Cache::store`] with provenance: the installing transaction id,
    /// the responding server, and the bailiwick class the resolution
    /// loop computed against the queried zone. Each accepted store is
    /// classified as an *insert* (key empty, or old entry removed with
    /// its own cause), a *refresh* (identical data — only the clock
    /// restarts; §4.2's NS-coupled glue refresh), or an *overwrite*
    /// (different data — e.g. a renumbering becoming visible).
    pub fn store_with(
        &mut self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    ) {
        let key = (rrset.name.clone(), rrset.rtype);
        self.negatives.remove(&key);
        let original_ttl = rrset.ttl;
        let ttl = policy.clamp_ttl(rrset.ttl);
        if ttl.is_zero() {
            self.meta.borrow_mut().stats.rejected_stores += 1;
            return;
        }
        // Removal cause for the entry currently under the key, if any.
        let mut displaced: Option<(CacheOp, Entry)> = None;
        let mut refresh = false;
        // Index key of the entry this store replaces (refreshes move an
        // entry's expiry too, so the stale key must go either way).
        let mut old_index: Option<(SimTime, Name, u16)> = None;
        let fingerprint = rrset.fingerprint();
        if let Some(existing) = self.entries.get(&key) {
            let fresh = existing.pinned || existing.expires_at > now;
            if fresh {
                let rejected = existing.rank > rank // lower rank never displaces higher
                    || (policy.centricity == Centricity::ParentCentric
                        && existing.rank <= Credibility::ReferralAuthority
                        && rank >= Credibility::AuthAuthority) // referral data wins
                    || (!policy.link_inbailiwick_glue
                        && existing.rank == Credibility::ReferralAdditional
                        && rank == Credibility::ReferralAdditional); // keep cached glue
                if rejected {
                    self.meta.borrow_mut().stats.rejected_stores += 1;
                    return;
                }
                if existing.fingerprint == fingerprint {
                    refresh = true;
                } else {
                    displaced = Some((CacheOp::Overwrite, existing.clone()));
                }
            } else {
                // Past its TTL: whatever replaces it, the old entry
                // died of expiry.
                displaced = Some((CacheOp::Expire, existing.clone()));
            }
            if !existing.pinned {
                old_index = Some((existing.expires_at, key.0.clone(), key.1.code()));
            }
        }
        let origin = if ctx.txn == 0 && ctx.server.is_none() {
            RecordOrigin::Seed
        } else {
            RecordOrigin::from_rank(rank)
        };
        let prov = Provenance {
            txn: ctx.txn,
            server: ctx.server,
            origin,
            bailiwick: ctx.bailiwick,
            original_ttl,
            effective_ttl: ttl,
        };
        if let Some((cause, old)) = displaced {
            match cause {
                CacheOp::Overwrite => self.meta.borrow_mut().stats.overwrites += 1,
                _ => self.meta.borrow_mut().stats.expiries += 1,
            }
            self.note(
                now,
                cause,
                &old.rrset,
                old.rank,
                old.provenance,
                Some(now.since(old.stored_at).as_millis()),
                old.fingerprint,
            );
        }
        let mut rrset = rrset;
        rrset.ttl = ttl;
        if let Some(stale_key) = old_index {
            self.expiry.remove(&stale_key);
        }
        self.evict_if_full(&key, now);
        if refresh {
            self.meta.borrow_mut().stats.refreshes += 1;
        } else {
            self.meta.borrow_mut().stats.inserts += 1;
        }
        self.note(
            now,
            if refresh {
                CacheOp::Refresh
            } else {
                CacheOp::Insert
            },
            &rrset,
            rank,
            prov,
            None,
            fingerprint,
        );
        let expires_at = now + ttl_span(ttl);
        if !pinned {
            self.expiry
                .insert((expires_at, key.0.clone(), key.1.code()));
        }
        self.entries.insert(
            key,
            Entry {
                expires_at,
                stored_at: now,
                rrset,
                rank,
                pinned,
                provenance: prov,
                fingerprint,
            },
        );
    }

    /// Removes the entry under `(name, rtype)`, attributing the
    /// removal to an explicit invalidation — what an operator's cache
    /// flush after a renumbering does. Returns true if present.
    pub fn invalidate(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        match self.entries.remove(&(name.clone(), rtype)) {
            Some(e) => {
                if !e.pinned {
                    self.expiry
                        .remove(&(e.expires_at, name.clone(), rtype.code()));
                }
                self.meta.borrow_mut().stats.invalidations += 1;
                self.note(
                    now,
                    CacheOp::Invalidate,
                    &e.rrset,
                    e.rank,
                    e.provenance,
                    Some(now.since(e.stored_at).as_millis()),
                    e.fingerprint,
                );
                true
            }
            None => false,
        }
    }

    /// Invalidates every positive entry at or below `apex` (the
    /// `rndc flushtree` analogue). Returns how many entries died.
    pub fn invalidate_zone(&mut self, apex: &Name, now: SimTime) -> usize {
        let mut victims: Vec<(Name, RecordType)> = self
            .entries
            .keys()
            .filter(|(n, _)| n.is_subdomain_of(apex))
            .cloned()
            .collect();
        // Deterministic ledger order regardless of HashMap layout —
        // canonical name order directly, no string formatting.
        victims.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.code().cmp(&b.1.code())));
        for (name, rtype) in &victims {
            self.invalidate(name, *rtype, now);
        }
        victims.len()
    }

    /// Fetches a fresh entry, decrementing TTLs by age. Pinned entries
    /// are served at full TTL (an RFC 7706 mirror is always fresh).
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        let e = self.entries.get(&(name.clone(), rtype))?;
        if !e.pinned && e.expires_at <= now {
            return None;
        }
        self.meta.borrow_mut().stats.hits += 1;
        self.note(
            now,
            CacheOp::Serve,
            &e.rrset,
            e.rank,
            e.provenance,
            Some(now.since(e.stored_at).as_millis()),
            e.fingerprint,
        );
        let mut rrset = e.rrset.clone();
        if !e.pinned {
            let age = now.secs_since(e.stored_at) as u32;
            rrset.ttl = rrset.ttl.saturating_sub_secs(age);
        }
        Some(CachedAnswer {
            rrset,
            rank: e.rank,
            stale: false,
            provenance: e.provenance,
        })
    }

    /// If an entry exists for `(name, rtype)` but is past its TTL (and
    /// not pinned), returns how long ago it expired. This is the
    /// telemetry probe distinguishing an *expiry* (the resolver held
    /// the data and lost it to the TTL — the refetches of Figure 6)
    /// from a plain miss (never cached).
    pub fn expired_since(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<SimDuration> {
        // The expiry index is ordered and covers every unpinned entry,
        // so its minimum answers "is anything expired at all?" without
        // touching the entry table. Resolvers probe this on *every*
        // query; in the common all-fresh cache the probe ends here.
        match self.expiry.first() {
            Some((earliest, _, _)) if *earliest <= now => {}
            _ => return None,
        }
        let e = self.entries.get(&(name.clone(), rtype))?;
        if e.pinned || e.expires_at > now {
            return None;
        }
        Some(now.since(e.expires_at))
    }

    /// Remaining lifetime of a fresh entry as a fraction of its
    /// original TTL (1.0 = just stored, →0.0 = about to expire).
    /// Pinned entries are always 1.0; absent/expired entries are None.
    /// Prefetching resolvers use this to decide when to refresh ahead.
    pub fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        let e = self.entries.get(&(name.clone(), rtype))?;
        if e.pinned {
            return Some(1.0);
        }
        if e.expires_at <= now {
            return None;
        }
        let total = e.rrset.ttl.as_secs() as f64;
        if total == 0.0 {
            return None;
        }
        let remaining = e.expires_at.since(now).as_secs_f64();
        Some((remaining / total).clamp(0.0, 1.0))
    }

    /// Fetches an entry even if expired, for serve-stale: the entry must
    /// not be older than `expires_at + max_stale`. Stale answers carry a
    /// short 30 s TTL, per draft-ietf-dnsop-serve-stale.
    pub fn get_stale(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer> {
        let e = self.entries.get(&(name.clone(), rtype))?;
        if e.expires_at > now || e.pinned {
            return self.get(name, rtype, now);
        }
        let staleness = now.secs_since(e.expires_at);
        if staleness > max_stale.as_secs() as u64 {
            return None;
        }
        self.meta.borrow_mut().stats.stale_hits += 1;
        self.note(
            now,
            CacheOp::StaleServe,
            &e.rrset,
            e.rank,
            e.provenance,
            Some(now.since(e.stored_at).as_millis()),
            e.fingerprint,
        );
        let mut rrset = e.rrset.clone();
        rrset.ttl = Ttl::from_secs(30);
        Some(CachedAnswer {
            rrset,
            rank: e.rank,
            stale: true,
            provenance: e.provenance,
        })
    }

    /// Stores a negative answer (NXDOMAIN or NODATA) bounded by the SOA
    /// `minimum` / SOA TTL pair per RFC 2308.
    #[allow(clippy::too_many_arguments)]
    pub fn store_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        let ttl = policy.clamp_ttl(soa_minimum.min(soa_ttl));
        if ttl.is_zero() {
            return;
        }
        self.negatives.insert(
            (name, rtype),
            NegEntry {
                rcode,
                expires_at: now + ttl_span(ttl),
            },
        );
    }

    /// Caches an *upstream failure* (SERVFAIL / every server dead) for
    /// `ttl`, per RFC 2308 §7: subsequent queries for the key are
    /// answered from this entry instead of hammering dead servers —
    /// RFC 8767's "failure recheck timer". Journalled as a
    /// [`CacheOp::NegCache`] transaction so provenance forensics see
    /// the outage response, even though no RRset is held.
    pub fn store_failure(&mut self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime) {
        if ttl.is_zero() {
            return;
        }
        // RFC 2308 §7: failures must not be cached for longer than
        // five minutes.
        let ttl = ttl.min(Ttl::from_secs(300));
        let shell = RRset {
            name: name.clone(),
            rtype,
            ttl,
            rdatas: vec![],
        };
        self.note(
            now,
            CacheOp::NegCache,
            &shell,
            Credibility::AuthAuthority,
            Provenance {
                original_ttl: ttl,
                effective_ttl: ttl,
                ..Provenance::default()
            },
            None,
            0,
        );
        self.negatives.insert(
            (name, rtype),
            NegEntry {
                rcode: Rcode::ServFail,
                expires_at: now + ttl_span(ttl),
            },
        );
    }

    /// Fresh negative entry for the key, if any.
    pub fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode> {
        let e = self.negatives.get(&(name.clone(), rtype))?;
        (e.expires_at > now).then_some(e.rcode)
    }

    /// Number of positive entries (fresh and expired).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no positive entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops expired, unpinned entries. Not required for correctness
    /// (reads check freshness) but keeps long simulations lean. Each
    /// drop is a ledger `expire` transaction.
    pub fn purge_expired(&mut self, now: SimTime) {
        // Expired entries are exactly the index prefix up to `now`:
        // ordered-set pops replace the old full scan + string sort.
        // Ledger order is (expires_at, name, type code) — deterministic
        // regardless of HashMap layout.
        while let Some((expires_at, _, _)) = self.expiry.first() {
            if *expires_at > now {
                break;
            }
            let (_, name, code) = self.expiry.pop_first().expect("first just seen");
            let rtype = RecordType::from_code(code).expect("index holds valid type codes");
            let e = self
                .entries
                .remove(&(name, rtype))
                .expect("index entry has a backing cache entry");
            self.meta.borrow_mut().stats.expiries += 1;
            self.note(
                now,
                CacheOp::Expire,
                &e.rrset,
                e.rank,
                e.provenance,
                Some(now.since(e.stored_at).as_millis()),
                e.fingerprint,
            );
        }
        self.negatives.retain(|_, e| e.expires_at > now);
    }

    /// Removes every entry (used between experiment phases). Counted
    /// as `clears` in the stats; no per-entry ledger records — a phase
    /// boundary is not a cache event the paper cares about.
    pub fn clear(&mut self) {
        self.meta.borrow_mut().stats.clears += self.entries.len() as u64;
        self.entries.clear();
        self.expiry.clear();
        self.negatives.clear();
    }
}

/// The trace-event kind for a ledger op.
fn event_kind(op: CacheOp) -> EventKind {
    match op {
        CacheOp::Insert => EventKind::CacheInsert,
        CacheOp::Refresh => EventKind::CacheRefresh,
        CacheOp::Overwrite => EventKind::CacheOverwrite,
        CacheOp::Serve => EventKind::CacheServe,
        CacheOp::Expire => EventKind::CacheExpiredDrop,
        CacheOp::Evict => EventKind::CacheEvict,
        CacheOp::Invalidate => EventKind::CacheInvalidate,
        CacheOp::StaleServe => EventKind::CacheStaleServe,
        CacheOp::NegCache => EventKind::NegCache,
    }
}

/// TTL seconds as a simulated duration.
fn ttl_span(ttl: Ttl) -> dnsttl_netsim::SimDuration {
    dnsttl_netsim::SimDuration::from_secs(ttl.as_secs() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_wire::RData;

    fn policy() -> ResolverPolicy {
        ResolverPolicy::default()
    }

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_rrset(name: &str, ttl: u32, last: u8) -> RRset {
        RRset {
            name: n(name),
            rtype: RecordType::A,
            ttl: Ttl::from_secs(ttl),
            rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, last))],
        }
    }

    #[test]
    fn ttl_decrements_with_age() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 300, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        let got = c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(got.rrset.ttl.as_secs(), 200);
    }

    #[test]
    fn expired_entries_are_not_served() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 300, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(300))
            .is_none());
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(299))
            .is_some());
    }

    #[test]
    fn lower_rank_cannot_displace_fresh_higher_rank() {
        let mut c = Cache::new();
        c.store(
            a_rrset("ns.example", 3600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("ns.example", 172800, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(10),
            &policy(),
            false,
        );
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(20))
            .unwrap();
        assert_eq!(got.rank, Credibility::AuthAnswer);
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 1).rdatas);
    }

    #[test]
    fn equal_rank_replaces_and_refreshes() {
        // Re-fetched glue replaces cached glue — the mechanism behind
        // §4.2's NS/A lifetime coupling.
        let mut c = Cache::new();
        c.store(
            a_rrset("ns.example", 7200, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("ns.example", 7200, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(3600),
            &policy(),
            false,
        );
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(3700))
            .unwrap();
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 2).rdatas);
        assert_eq!(got.rrset.ttl.as_secs(), 7100);
    }

    #[test]
    fn unlinked_policy_keeps_old_glue_until_expiry() {
        let p = ResolverPolicy {
            link_inbailiwick_glue: false,
            ..ResolverPolicy::default()
        };
        let mut c = Cache::new();
        c.store(
            a_rrset("ns.example", 7200, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &p,
            false,
        );
        c.store(
            a_rrset("ns.example", 7200, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(3600),
            &p,
            false,
        );
        // Old glue still served…
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(3700))
            .unwrap();
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 1).rdatas);
        // …until it expires; a later store succeeds.
        c.store(
            a_rrset("ns.example", 7200, 2),
            Credibility::ReferralAdditional,
            SimTime::from_secs(7300),
            &p,
            false,
        );
        let got = c
            .get(&n("ns.example"), RecordType::A, SimTime::from_secs(7400))
            .unwrap();
        assert_eq!(got.rrset.rdatas, a_rrset("ns.example", 0, 2).rdatas);
    }

    #[test]
    fn parent_centric_refuses_child_overwrite() {
        let p = ResolverPolicy::parent_centric();
        let mut c = Cache::new();
        c.store(
            a_rrset("a.nic.uy", 172800, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &p,
            false,
        );
        c.store(
            a_rrset("a.nic.uy", 120, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(5),
            &p,
            false,
        );
        let got = c
            .get(&n("a.nic.uy"), RecordType::A, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(got.rank, Credibility::ReferralAdditional);
        assert_eq!(got.rrset.ttl.as_secs(), 172_790);
    }

    #[test]
    fn child_centric_overwrites_glue_with_answer() {
        let mut c = Cache::new();
        c.store(
            a_rrset("a.nic.uy", 172800, 1),
            Credibility::ReferralAdditional,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("a.nic.uy", 120, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(5),
            &policy(),
            false,
        );
        let got = c
            .get(&n("a.nic.uy"), RecordType::A, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(got.rank, Credibility::AuthAnswer);
        assert_eq!(got.rrset.ttl.as_secs(), 115);
    }

    #[test]
    fn pinned_entries_never_age() {
        let mut c = Cache::new();
        c.store(
            a_rrset("uy", 172800, 1),
            Credibility::ReferralAuthority,
            SimTime::ZERO,
            &policy(),
            true,
        );
        let got = c
            .get(&n("uy"), RecordType::A, SimTime::from_secs(1_000_000))
            .unwrap();
        assert_eq!(got.rrset.ttl.as_secs(), 172_800);
    }

    #[test]
    fn ttl_cap_applies_at_store_time() {
        let p = ResolverPolicy::google_like();
        let mut c = Cache::new();
        c.store(
            a_rrset("google.co", 345_600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &p,
            false,
        );
        let got = c
            .get(&n("google.co"), RecordType::A, SimTime::ZERO)
            .unwrap();
        assert_eq!(got.rrset.ttl.as_secs(), 21_599);
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 0, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::ZERO)
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn stale_service_within_window() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // Expired at 60 s; stale window one day.
        let got = c
            .get_stale(
                &n("x.example"),
                RecordType::A,
                SimTime::from_secs(600),
                Ttl::DAY,
            )
            .unwrap();
        assert!(got.stale);
        assert_eq!(got.rrset.ttl.as_secs(), 30);
        // Beyond the stale window: gone.
        assert!(c
            .get_stale(
                &n("x.example"),
                RecordType::A,
                SimTime::from_secs(90_000),
                Ttl::DAY
            )
            .is_none());
    }

    #[test]
    fn freshness_tracks_remaining_fraction() {
        let mut c = Cache::new();
        c.store(
            a_rrset("x.example", 1000, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        let f0 = c
            .freshness(&n("x.example"), RecordType::A, SimTime::ZERO)
            .unwrap();
        assert!((f0 - 1.0).abs() < 1e-9);
        let f_mid = c
            .freshness(&n("x.example"), RecordType::A, SimTime::from_secs(500))
            .unwrap();
        assert!((f_mid - 0.5).abs() < 1e-9);
        let f_late = c
            .freshness(&n("x.example"), RecordType::A, SimTime::from_secs(950))
            .unwrap();
        assert!(f_late < 0.1);
        assert!(c
            .freshness(&n("x.example"), RecordType::A, SimTime::from_secs(1_000))
            .is_none());
        assert!(c
            .freshness(&n("y.example"), RecordType::A, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn pinned_entries_are_always_fresh() {
        let mut c = Cache::new();
        c.store(
            a_rrset("uy", 300, 1),
            Credibility::ReferralAuthority,
            SimTime::ZERO,
            &policy(),
            true,
        );
        let f = c
            .freshness(&n("uy"), RecordType::A, SimTime::from_secs(1_000_000))
            .unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn negative_caching_round_trip() {
        let mut c = Cache::new();
        c.store_negative(
            n("missing.example"),
            RecordType::A,
            Rcode::NxDomain,
            Ttl::from_secs(300),
            Ttl::HOUR,
            SimTime::ZERO,
            &policy(),
        );
        assert_eq!(
            c.get_negative(
                &n("missing.example"),
                RecordType::A,
                SimTime::from_secs(100)
            ),
            Some(Rcode::NxDomain)
        );
        // Bounded by min(SOA minimum, SOA TTL) = 300 s.
        assert_eq!(
            c.get_negative(
                &n("missing.example"),
                RecordType::A,
                SimTime::from_secs(300)
            ),
            None
        );
    }

    #[test]
    fn positive_store_clears_negative() {
        let mut c = Cache::new();
        c.store_negative(
            n("x.example"),
            RecordType::A,
            Rcode::NxDomain,
            Ttl::HOUR,
            Ttl::HOUR,
            SimTime::ZERO,
            &policy(),
        );
        c.store(
            a_rrset("x.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::from_secs(10),
            &policy(),
            false,
        );
        assert_eq!(
            c.get_negative(&n("x.example"), RecordType::A, SimTime::from_secs(11)),
            None
        );
        assert!(c
            .get(&n("x.example"), RecordType::A, SimTime::from_secs(11))
            .is_some());
    }

    #[test]
    fn bounded_cache_evicts_soonest_to_expire() {
        let mut c = Cache::with_capacity(2);
        c.store(
            a_rrset("long.example", 3_600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("short.example", 60, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // Third entry: the 60 s one goes.
        c.store(
            a_rrset("new.example", 600, 3),
            Credibility::AuthAnswer,
            SimTime::from_secs(1),
            &policy(),
            false,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c
            .get(&n("short.example"), RecordType::A, SimTime::from_secs(1))
            .is_none());
        assert!(c
            .get(&n("long.example"), RecordType::A, SimTime::from_secs(1))
            .is_some());
        assert!(c
            .get(&n("new.example"), RecordType::A, SimTime::from_secs(1))
            .is_some());
    }

    #[test]
    fn bounded_cache_update_in_place_does_not_evict() {
        let mut c = Cache::with_capacity(2);
        c.store(
            a_rrset("a.example", 600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("b.example", 600, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // Refreshing an existing key at capacity must not evict.
        c.store(
            a_rrset("a.example", 600, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(10),
            &policy(),
            false,
        );
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn bounded_cache_never_evicts_pinned() {
        let mut c = Cache::with_capacity(1);
        c.store(
            a_rrset("root.example", 600, 1),
            Credibility::ReferralAuthority,
            SimTime::ZERO,
            &policy(),
            true,
        );
        c.store(
            a_rrset("x.example", 600, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        // The pinned entry survives; the cache grows past capacity
        // rather than dropping mirrored zone data.
        assert!(c
            .get(&n("root.example"), RecordType::A, SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn purge_drops_expired_keeps_pinned() {
        let mut c = Cache::new();
        c.store(
            a_rrset("a.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            false,
        );
        c.store(
            a_rrset("b.example", 60, 1),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy(),
            true,
        );
        c.purge_expired(SimTime::from_secs(120));
        assert_eq!(c.len(), 1);
        assert!(c
            .get(&n("b.example"), RecordType::A, SimTime::from_secs(120))
            .is_some());
    }

    /// Seeded property test: across random insert / time-advance /
    /// stale-query sequences, an answer's effective age never exceeds
    /// its original TTL + max-stale, and the fresh/stale/gone regimes
    /// match a shadow model exactly.
    #[test]
    fn stale_serving_never_exceeds_ttl_plus_max_stale() {
        let max_stale = Ttl::from_secs(300);
        for seed in 0..16u64 {
            let mut rng = dnsttl_netsim::SimRng::seed_from(0xC4A0_5000 + seed);
            let mut c = Cache::new();
            let mut now = SimTime::ZERO;
            // Shadow model: when the single tracked name was last
            // stored, and with what TTL.
            let mut shadow: Option<(SimTime, u64)> = None;
            for _ in 0..400 {
                match rng.below(3) {
                    0 => {
                        let ttl = 60 + rng.below(540) as u32;
                        c.store(
                            a_rrset("p.example", ttl, 1),
                            Credibility::AuthAnswer,
                            now,
                            &policy(),
                            false,
                        );
                        shadow = Some((now, ttl as u64));
                    }
                    1 => {
                        now += SimDuration::from_secs(1 + rng.below(200));
                    }
                    _ => {
                        let got = c.get_stale(&n("p.example"), RecordType::A, now, max_stale);
                        match shadow {
                            None => assert!(got.is_none(), "seed {seed}: answer before insert"),
                            Some((stored, ttl)) => {
                                let age = now.secs_since(stored);
                                if let Some(ans) = &got {
                                    assert!(
                                        age <= ttl + max_stale.as_secs() as u64,
                                        "seed {seed}: served at age {age}s, ttl {ttl}s \
                                         + max-stale {}s exceeded",
                                        max_stale.as_secs()
                                    );
                                    assert_eq!(ans.stale, age >= ttl, "seed {seed}: regime");
                                }
                                if age < ttl {
                                    assert!(got.is_some(), "seed {seed}: fresh entry unserved");
                                } else if age > ttl + max_stale.as_secs() as u64 {
                                    assert!(got.is_none(), "seed {seed}: over-stale served");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Seeded property test: however stale an entry has become, a
    /// successful refresh (re-store) always resets staleness — the next
    /// lookup is fresh with the full new TTL.
    #[test]
    fn refresh_always_resets_staleness() {
        let max_stale = Ttl::DAY;
        for seed in 0..16u64 {
            let mut rng = dnsttl_netsim::SimRng::seed_from(0x5EED_0000 + seed);
            let mut c = Cache::new();
            let ttl = 60 + rng.below(540) as u32;
            c.store(
                a_rrset("r.example", ttl, 1),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy(),
                false,
            );
            // Let it go stale by a random margin inside the window.
            let stale_by = 1 + rng.below(max_stale.as_secs() as u64 - ttl as u64);
            let when = SimTime::from_secs(ttl as u64 + stale_by);
            let before = c
                .get_stale(&n("r.example"), RecordType::A, when, max_stale)
                .expect("inside max-stale window");
            assert!(before.stale, "seed {seed}: expected a stale answer");
            assert_eq!(before.rrset.ttl.as_secs(), 30, "stale answers carry 30 s");
            // Refresh with new data at the same instant.
            let new_ttl = 60 + rng.below(540) as u32;
            c.store(
                a_rrset("r.example", new_ttl, 2),
                Credibility::AuthAnswer,
                when,
                &policy(),
                false,
            );
            let after = c
                .get_stale(&n("r.example"), RecordType::A, when, max_stale)
                .expect("just refreshed");
            assert!(!after.stale, "seed {seed}: refresh must reset staleness");
            assert_eq!(after.rrset.ttl.as_secs(), new_ttl, "full TTL after refresh");
            assert_eq!(after.rrset.rdatas, a_rrset("r.example", 0, 2).rdatas);
        }
    }

    #[test]
    fn failure_caching_is_capped_at_five_minutes() {
        let mut c = Cache::new();
        c.enable_ledger();
        c.store_failure(n("down.example"), RecordType::A, Ttl::HOUR, SimTime::ZERO);
        // RFC 2308 §7: upstream-failure entries live at most 5 minutes.
        assert_eq!(
            c.get_negative(&n("down.example"), RecordType::A, SimTime::from_secs(299)),
            Some(Rcode::ServFail)
        );
        assert_eq!(
            c.get_negative(&n("down.example"), RecordType::A, SimTime::from_secs(300)),
            None
        );
        let neg_caches = c
            .with_ledger(|l| l.cells().map(|(_, cell)| cell.neg_caches).sum::<u64>())
            .unwrap();
        assert_eq!(neg_caches, 1);
    }
}
