//! # dnsttl-resolver — a policy-parameterised recursive resolver
//!
//! The recursive resolver is where every question in the paper gets
//! decided: which TTL wins when parent and child disagree, how long a
//! name server's address survives in cache, and what latency a client
//! sees. This crate implements a complete iterative resolver whose
//! behaviour is a function of a [`ResolverPolicy`](dnsttl_core::ResolverPolicy):
//!
//! * **credibility-ranked cache** ([`cache`]) per RFC 2181 §5.4.1 —
//!   authoritative answers outrank referral authority data, which
//!   outranks glue; parent-centric policies invert the child's
//!   precedence;
//! * **iterative resolution** ([`resolver`]) from root hints, with
//!   referral chasing, CNAME chains, out-of-bailiwick server-address
//!   sub-resolution, retries, and lame-delegation handling;
//! * **negative caching** per RFC 2308 (SOA-bounded);
//! * the paper's observed behaviours as policy: TTL capping (Figure 2's
//!   21 599 s step), serve-stale, RFC 7706 local root (answers with the
//!   parent's full TTL, §3.2's OpenDNS observation), sticky server
//!   choice (§4.4), and in-bailiwick glue replacement (§4.2's coupled
//!   NS/A lifetimes).
//!
//! The resolver talks to authoritative servers through the
//! [`Network`](dnsttl_netsim::Network) fabric and accounts every
//! exchange's RTT, so experiments can measure client-observed latency
//! distributions (the paper's Figures 10–11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod ledger;
pub mod resolver;
pub mod shared;
pub mod snapshot;
pub mod stub;

pub use backend::{CacheBackend, CacheEngine};
pub use cache::{Cache, CachedAnswer, Credibility};
pub use ledger::{
    parse_rank_token, rank_token, BailiwickClass, CacheStats, Ledger, LedgerCell, LedgerKey,
    Provenance, RecordOrigin, StoreContext,
};
pub use resolver::{RecursiveResolver, ResolutionOutcome, ResolverStats, RootHint};
pub use shared::SharedCache;
pub use snapshot::{CacheSnapshot, SnapshotDiff, SnapshotEntry};
pub use stub::{HostLookup, StubConfig, StubError, StubResolver};
