//! The stub resolver — the client side of the paper's three-tier
//! picture ("client software (the stub resolver, provided by OS
//! libraries) that contacts recursive resolvers", §1).
//!
//! A [`StubResolver`] is what an application links against: it holds a
//! list of recursive resolvers (like `/etc/resolv.conf` nameservers), a
//! search list, and retry behaviour, and turns host names into address
//! lists. It does no caching of its own beyond what the recursive
//! provides — exactly like the common OS stubs.

use crate::resolver::RecursiveResolver;
use dnsttl_netsim::{Network, SimDuration, SimTime};
use dnsttl_wire::{Name, RData, Rcode, RecordType};
use std::cell::RefCell;
use std::net::IpAddr;
use std::rc::Rc;

/// A shared handle to a recursive resolver (one `nameserver` line).
pub type ResolverHandle = Rc<RefCell<RecursiveResolver>>;

/// Stub configuration, `resolv.conf`-shaped.
#[derive(Clone)]
pub struct StubConfig {
    /// Recursive resolvers, tried in order (`nameserver`).
    pub servers: Vec<ResolverHandle>,
    /// Suffixes appended to relative names (`search`).
    pub search: Vec<Name>,
    /// Names with at least this many dots are tried as-is first
    /// (`ndots`; glibc default 1).
    pub ndots: usize,
    /// Attempts per server before failing over (`attempts`).
    pub attempts: u8,
}

impl StubConfig {
    /// A minimal config with one server and no search list.
    pub fn new(server: ResolverHandle) -> StubConfig {
        StubConfig {
            servers: vec![server],
            search: Vec::new(),
            ndots: 1,
            attempts: 2,
        }
    }
}

/// The result of a host lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostLookup {
    /// The fully-qualified name that finally resolved (after the
    /// search list was applied).
    pub canonical: Name,
    /// All addresses, A then AAAA.
    pub addresses: Vec<IpAddr>,
    /// Total client-observed time.
    pub elapsed: SimDuration,
}

/// Errors a stub can return to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StubError {
    /// Every candidate name returned NXDOMAIN.
    NotFound,
    /// The name exists but has no address records.
    NoAddresses,
    /// Every server failed (SERVFAIL / timeouts).
    ServersFailed,
    /// The input was not a usable name.
    BadName,
}

/// An application-facing stub resolver.
pub struct StubResolver {
    config: StubConfig,
}

impl StubResolver {
    /// Creates a stub with the given configuration.
    ///
    /// # Panics
    /// Panics when no servers are configured — a stub with an empty
    /// `resolv.conf` cannot do anything.
    pub fn new(config: StubConfig) -> StubResolver {
        assert!(
            !config.servers.is_empty(),
            "stub resolver needs at least one nameserver"
        );
        StubResolver { config }
    }

    /// The candidate FQDNs for `host`, in the glibc try order: as-is
    /// first when it has ≥ `ndots` dots (or is absolute), then each
    /// search suffix.
    pub fn candidates(&self, host: &str) -> Result<Vec<Name>, StubError> {
        let absolute = host.ends_with('.');
        let dots = host.trim_end_matches('.').matches('.').count();
        let as_is = Name::parse(host).map_err(|_| StubError::BadName)?;
        let mut out = Vec::new();
        if absolute || dots >= self.config.ndots {
            out.push(as_is.clone());
        }
        if !absolute {
            for suffix in &self.config.search {
                let mut combined = suffix.clone();
                // Prepend the host's labels onto the suffix.
                for label in as_is.labels().rev() {
                    combined = match combined.child(label) {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                }
                out.push(combined);
            }
            if dots < self.config.ndots {
                out.push(as_is);
            }
        }
        out.dedup();
        if out.is_empty() {
            return Err(StubError::BadName);
        }
        Ok(out)
    }

    /// Resolves `host` to addresses, walking the search list and the
    /// server list with retries — `getaddrinfo`, in miniature.
    pub fn lookup_host(
        &self,
        host: &str,
        now: SimTime,
        net: &mut Network,
    ) -> Result<HostLookup, StubError> {
        let candidates = self.candidates(host)?;
        let mut elapsed = SimDuration::ZERO;
        let mut any_server_answered = false;
        for candidate in candidates {
            let mut nxdomain = false;
            'servers: for server in &self.config.servers {
                for _attempt in 0..self.config.attempts.max(1) {
                    let mut server = server.borrow_mut();
                    let a = server.resolve(&candidate, RecordType::A, now, net);
                    elapsed = elapsed + a.elapsed;
                    match a.answer.header.rcode {
                        Rcode::ServFail => continue, // retry
                        Rcode::NxDomain => {
                            any_server_answered = true;
                            nxdomain = true;
                            break 'servers;
                        }
                        _ => {}
                    }
                    let mut addresses: Vec<IpAddr> = a
                        .answer
                        .answers
                        .iter()
                        .filter_map(|r| match &r.rdata {
                            RData::A(v4) => Some(IpAddr::V4(*v4)),
                            _ => None,
                        })
                        .collect();
                    let aaaa = server.resolve(&candidate, RecordType::AAAA, now, net);
                    elapsed = elapsed + aaaa.elapsed;
                    addresses.extend(aaaa.answer.answers.iter().filter_map(|r| match &r.rdata {
                        RData::Aaaa(v6) => Some(IpAddr::V6(*v6)),
                        _ => None,
                    }));
                    if addresses.is_empty() {
                        return Err(StubError::NoAddresses);
                    }
                    return Ok(HostLookup {
                        canonical: candidate,
                        addresses,
                        elapsed,
                    });
                }
            }
            if nxdomain {
                continue; // next search-list candidate
            }
        }
        if any_server_answered {
            Err(StubError::NotFound)
        } else {
            Err(StubError::ServersFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
    use dnsttl_core::ResolverPolicy;
    use dnsttl_netsim::{LatencyModel, Region, SimRng};
    use dnsttl_wire::Ttl;
    use std::net::Ipv4Addr;

    fn world() -> (Network, ResolverHandle) {
        let root_addr = IpAddr::V4(Ipv4Addr::new(198, 41, 0, 4));
        let child_addr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 53));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("corp", "ns.corp", Ttl::TWO_DAYS)
                .a("ns.corp", "192.0.2.53", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("ns.corp").with_zone(
            ZoneBuilder::new("corp")
                .ns("corp", "ns.corp", Ttl::HOUR)
                .a("web.corp", "203.0.113.80", Ttl::HOUR)
                .aaaa("web.corp", "2001:db8::80", Ttl::HOUR)
                .a("db.prod.corp", "203.0.113.81", Ttl::HOUR)
                .build(),
        );
        let mut net = Network::new(LatencyModel::constant(5.0));
        net.register(root_addr, Region::Eu, Rc::new(RefCell::new(root)));
        net.register(child_addr, Region::Eu, Rc::new(RefCell::new(child)));
        let recursive = RecursiveResolver::new(
            "stub-upstream",
            ResolverPolicy::default(),
            Region::Eu,
            1,
            vec![crate::resolver::RootHint {
                ns_name: Name::parse("root").unwrap(),
                addr: root_addr,
            }],
            SimRng::seed_from(7),
        );
        (net, Rc::new(RefCell::new(recursive)))
    }

    #[test]
    fn absolute_lookup_returns_both_families() {
        let (mut net, server) = world();
        let stub = StubResolver::new(StubConfig::new(server));
        let result = stub
            .lookup_host("web.corp.", SimTime::ZERO, &mut net)
            .unwrap();
        assert_eq!(result.addresses.len(), 2);
        assert!(result.addresses[0].is_ipv4());
        assert!(result.addresses[1].is_ipv6());
        assert!(result.elapsed.as_millis() > 0);
    }

    #[test]
    fn search_list_expands_short_names() {
        let (mut net, server) = world();
        let mut config = StubConfig::new(server);
        config.search = vec![
            Name::parse("prod.corp").unwrap(),
            Name::parse("corp").unwrap(),
        ];
        let stub = StubResolver::new(config);
        // "db" has 0 dots < ndots=1 → search list first: db.prod.corp.
        let result = stub.lookup_host("db", SimTime::ZERO, &mut net).unwrap();
        assert_eq!(result.canonical, Name::parse("db.prod.corp").unwrap());
        // "web" resolves via the second suffix.
        let result = stub.lookup_host("web", SimTime::ZERO, &mut net).unwrap();
        assert_eq!(result.canonical, Name::parse("web.corp").unwrap());
    }

    #[test]
    fn nxdomain_walks_the_whole_search_list_then_fails() {
        let (mut net, server) = world();
        let mut config = StubConfig::new(server);
        config.search = vec![Name::parse("corp").unwrap()];
        let stub = StubResolver::new(config);
        assert_eq!(
            stub.lookup_host("missing", SimTime::ZERO, &mut net),
            Err(StubError::NotFound)
        );
    }

    #[test]
    fn dead_servers_reported_distinctly() {
        let (mut net, server) = world();
        // Kill the whole world.
        net.set_online(IpAddr::V4(Ipv4Addr::new(198, 41, 0, 4)), false);
        net.set_online(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 53)), false);
        let stub = StubResolver::new(StubConfig::new(server));
        assert_eq!(
            stub.lookup_host("web.corp.", SimTime::ZERO, &mut net),
            Err(StubError::ServersFailed)
        );
    }

    #[test]
    fn failover_to_second_server() {
        let (mut net, dead) = world();
        // First server's policy never succeeds because we point its
        // root hint nowhere.
        let broken = RecursiveResolver::new(
            "broken",
            ResolverPolicy::default(),
            Region::Eu,
            2,
            vec![crate::resolver::RootHint {
                ns_name: Name::parse("root").unwrap(),
                addr: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 250)), // unregistered
            }],
            SimRng::seed_from(8),
        );
        let config = StubConfig {
            servers: vec![Rc::new(RefCell::new(broken)), dead],
            search: Vec::new(),
            ndots: 1,
            attempts: 1,
        };
        let stub = StubResolver::new(config);
        let result = stub
            .lookup_host("web.corp.", SimTime::ZERO, &mut net)
            .unwrap();
        assert!(
            !result.addresses.is_empty(),
            "second server must save the lookup"
        );
    }

    #[test]
    fn bad_names_rejected() {
        let (_net, server) = world();
        let stub = StubResolver::new(StubConfig::new(server));
        assert!(stub.candidates("bad..name").is_err());
    }
}
