//! Deterministic cache snapshots and snapshot diffs — the forensics
//! half of the provenance ledger.
//!
//! A snapshot is the cache's positive contents at one simulated
//! instant, sorted by `(owner name, record type)` so the same cache
//! state always renders to the same bytes. Diffing two snapshots shows
//! exactly what a window of simulated time did to the cache — which
//! entries appeared, which died, and which changed *data* (same key,
//! different fingerprint: the signature of a renumbering becoming
//! visible, §4.2/Tables 3–4).

use dnsttl_netsim::SimTime;
use dnsttl_telemetry::{flat_get, parse_flat_object, JsonScalar, ObjectWriter, Value};
use dnsttl_wire::Ttl;

use crate::cache::Cache;
use crate::ledger::rank_token;

/// The schema tag written on every snapshot header line.
pub const SNAPSHOT_SCHEMA: &str = "dnsttl-cache-snapshot/1";

/// One cache entry, frozen: strings only, so snapshots survive a trip
/// through a file and can be diffed without the resolver loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Owner name (presentation form).
    pub name: String,
    /// Record type mnemonic.
    pub rtype: String,
    /// Credibility rank token.
    pub rank: String,
    /// RFC 7706 mirrored entry (never expires)?
    pub pinned: bool,
    /// When the entry was stored, simulated ms.
    pub stored_at_ms: u64,
    /// When it expires, simulated ms.
    pub expires_at_ms: u64,
    /// TTL remaining at snapshot time, seconds (0 when expired, full
    /// TTL when pinned).
    pub remaining_ttl_s: u32,
    /// TTL as published in the installing response.
    pub original_ttl_s: u32,
    /// TTL after resolver policy — what the entry lives by.
    pub effective_ttl_s: u32,
    /// Parent/child/seed origin token.
    pub origin: String,
    /// Bailiwick class token.
    pub bailiwick: String,
    /// Installing transaction (DNS message) id.
    pub txn: u64,
    /// Installing server (empty for seeded data).
    pub server: String,
    /// TTL-excluded RRset fingerprint.
    pub fingerprint: u64,
    /// Member data, sorted, joined with `|`.
    pub rdatas: String,
}

impl SnapshotEntry {
    pub(crate) fn key(&self) -> (String, String) {
        (self.name.clone(), self.rtype.clone())
    }

    /// One human-readable dump line.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} {} rem={}s/{}s rank={} origin={} bw={} txn={} fp={:016x}",
            self.name,
            self.rtype,
            self.remaining_ttl_s,
            self.effective_ttl_s,
            self.rank,
            self.origin,
            self.bailiwick,
            self.txn,
            self.fingerprint,
        );
        if self.pinned {
            line.push_str(" pinned");
        }
        if !self.server.is_empty() {
            line.push_str(" sv=");
            line.push_str(&self.server);
        }
        line.push_str(" rd=");
        line.push_str(&self.rdatas);
        line
    }

    fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field("n", &Value::Str(self.name.clone()));
        w.field("ty", &Value::Str(self.rtype.clone()));
        w.field("rk", &Value::Str(self.rank.clone()));
        w.field("pin", &Value::Bool(self.pinned));
        w.field("st", &Value::U64(self.stored_at_ms));
        w.field("ex", &Value::U64(self.expires_at_ms));
        w.field("rem", &Value::U64(self.remaining_ttl_s as u64));
        w.field("ot", &Value::U64(self.original_ttl_s as u64));
        w.field("et", &Value::U64(self.effective_ttl_s as u64));
        w.field("or", &Value::Str(self.origin.clone()));
        w.field("bw", &Value::Str(self.bailiwick.clone()));
        w.field("tx", &Value::U64(self.txn));
        if !self.server.is_empty() {
            w.field("sv", &Value::Str(self.server.clone()));
        }
        w.field("fp", &Value::Str(format!("{:016x}", self.fingerprint)));
        w.field("rd", &Value::Str(self.rdatas.clone()));
        w.finish()
    }

    fn parse_line(line: &str) -> Result<SnapshotEntry, String> {
        let fields = parse_flat_object(line)?;
        let str_field = |key: &str| -> Result<String, String> {
            flat_get(&fields, key)
                .and_then(JsonScalar::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?} in {line:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            flat_get(&fields, key)
                .and_then(JsonScalar::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?} in {line:?}"))
        };
        let fp_hex = str_field("fp")?;
        Ok(SnapshotEntry {
            name: str_field("n")?,
            rtype: str_field("ty")?,
            rank: str_field("rk")?,
            pinned: matches!(flat_get(&fields, "pin"), Some(JsonScalar::Bool(true))),
            stored_at_ms: u64_field("st")?,
            expires_at_ms: u64_field("ex")?,
            remaining_ttl_s: u64_field("rem")? as u32,
            original_ttl_s: u64_field("ot")? as u32,
            effective_ttl_s: u64_field("et")? as u32,
            origin: str_field("or")?,
            bailiwick: str_field("bw")?,
            txn: u64_field("tx")?,
            server: str_field("sv").unwrap_or_default(),
            fingerprint: u64::from_str_radix(&fp_hex, 16)
                .map_err(|_| format!("bad fingerprint {fp_hex:?}"))?,
            rdatas: str_field("rd")?,
        })
    }
}

/// A full positive-cache dump at one instant, sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Snapshot time, simulated ms.
    pub at_ms: u64,
    /// Entries sorted by `(name, rtype)`.
    pub entries: Vec<SnapshotEntry>,
}

impl CacheSnapshot {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Human-readable sorted dump (`sdig --cache-dump` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            ";; cache snapshot @ {} ms — {} entr{}\n",
            self.at_ms,
            self.entries.len(),
            if self.entries.len() == 1 { "y" } else { "ies" },
        );
        for e in &self.entries {
            out.push_str(";; ");
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Machine form: a schema header line, then one line per entry.
    pub fn to_jsonl(&self) -> String {
        let mut header = ObjectWriter::new();
        header.field("schema", &Value::Str(SNAPSHOT_SCHEMA.to_string()));
        header.field("at_ms", &Value::U64(self.at_ms));
        header.field("entries", &Value::U64(self.entries.len() as u64));
        let mut out = header.finish();
        out.push('\n');
        for e in &self.entries {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses [`CacheSnapshot::to_jsonl`] output.
    pub fn parse_jsonl(text: &str) -> Result<CacheSnapshot, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty snapshot")?;
        let header = parse_flat_object(header_line)?;
        let schema = flat_get(&header, "schema")
            .and_then(JsonScalar::as_str)
            .ok_or("missing schema field")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!("unknown snapshot schema {schema:?}"));
        }
        let at_ms = flat_get(&header, "at_ms")
            .and_then(JsonScalar::as_u64)
            .ok_or("missing at_ms")?;
        let declared = flat_get(&header, "entries")
            .and_then(JsonScalar::as_u64)
            .ok_or("missing entries count")?;
        let entries: Vec<SnapshotEntry> = lines
            .map(SnapshotEntry::parse_line)
            .collect::<Result<_, _>>()?;
        if entries.len() as u64 != declared {
            return Err(format!(
                "snapshot declares {declared} entries, found {}",
                entries.len()
            ));
        }
        Ok(CacheSnapshot { at_ms, entries })
    }

    /// What changed between `self` (before) and `after`.
    pub fn diff(&self, after: &CacheSnapshot) -> SnapshotDiff {
        let before_keys: std::collections::BTreeMap<(String, String), &SnapshotEntry> =
            self.entries.iter().map(|e| (e.key(), e)).collect();
        let after_keys: std::collections::BTreeMap<(String, String), &SnapshotEntry> =
            after.entries.iter().map(|e| (e.key(), e)).collect();
        let mut diff = SnapshotDiff::default();
        for (key, b) in &before_keys {
            match after_keys.get(key) {
                None => diff.removed.push((*b).clone()),
                Some(a) if a.fingerprint != b.fingerprint => {
                    diff.changed.push(((*b).clone(), (*a).clone()));
                }
                Some(a) if a.stored_at_ms != b.stored_at_ms => {
                    diff.refreshed.push(((*b).clone(), (*a).clone()));
                }
                Some(_) => {}
            }
        }
        for (key, a) in &after_keys {
            if !before_keys.contains_key(key) {
                diff.added.push((*a).clone());
            }
        }
        diff
    }
}

/// The structural difference between two snapshots.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDiff {
    /// Keys present only in the later snapshot.
    pub added: Vec<SnapshotEntry>,
    /// Keys present only in the earlier snapshot.
    pub removed: Vec<SnapshotEntry>,
    /// Same key, different data fingerprint — an overwrite landed
    /// between the snapshots (before, after).
    pub changed: Vec<(SnapshotEntry, SnapshotEntry)>,
    /// Same key and data, newer store time — a TTL refresh landed
    /// (before, after).
    pub refreshed: Vec<(SnapshotEntry, SnapshotEntry)>,
}

impl SnapshotDiff {
    /// True when the snapshots describe identical cache states.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.changed.is_empty()
            && self.refreshed.is_empty()
    }

    /// Human-readable unified-style diff.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return ";; snapshots identical\n".to_string();
        }
        let mut out = String::new();
        for e in &self.removed {
            out.push_str("- ");
            out.push_str(&e.render());
            out.push('\n');
        }
        for e in &self.added {
            out.push_str("+ ");
            out.push_str(&e.render());
            out.push('\n');
        }
        for (b, a) in &self.changed {
            out.push_str("~ ");
            out.push_str(&b.render());
            out.push('\n');
            out.push_str("~>");
            out.push(' ');
            out.push_str(&a.render());
            out.push('\n');
        }
        for (b, a) in &self.refreshed {
            out.push_str(&format!(
                "r {} {} refreshed at {} ms (was {} ms)\n",
                a.name, a.rtype, a.stored_at_ms, b.stored_at_ms
            ));
        }
        out
    }
}

/// Renders an engine's positive entries into unsorted snapshot rows.
/// Shared by the sequential cache (one pass over its table) and the
/// concurrent backend (one pass per segment, merged then sorted).
pub(crate) fn snapshot_entries<'a>(
    it: impl Iterator<Item = &'a crate::cache::Entry>,
    now: SimTime,
) -> Vec<SnapshotEntry> {
    it.map(|e| {
        let remaining = if e.pinned {
            e.rrset.ttl
        } else {
            let age = now.secs_since(e.stored_at) as u32;
            if e.expires_at <= now {
                Ttl::from_secs(0)
            } else {
                e.rrset.ttl.saturating_sub_secs(age)
            }
        };
        let mut datas: Vec<String> = e.rrset.rdatas.iter().map(|rd| rd.to_string()).collect();
        datas.sort();
        SnapshotEntry {
            name: e.rrset.name.to_string(),
            rtype: e.rrset.rtype.to_string(),
            rank: rank_token(e.rank).to_string(),
            pinned: e.pinned,
            stored_at_ms: e.stored_at.as_millis(),
            expires_at_ms: e.expires_at.as_millis(),
            remaining_ttl_s: remaining.as_secs(),
            original_ttl_s: e.provenance.original_ttl.as_secs(),
            effective_ttl_s: e.provenance.effective_ttl.as_secs(),
            origin: e.provenance.origin.as_str().to_string(),
            bailiwick: e.provenance.bailiwick.as_str().to_string(),
            txn: e.provenance.txn,
            server: e
                .provenance
                .server
                .map(|s| s.to_string())
                .unwrap_or_default(),
            fingerprint: e.fingerprint,
            rdatas: datas.join("|"),
        }
    })
    .collect()
}

impl Cache {
    /// Freezes the positive cache into a deterministic sorted dump.
    /// Remaining TTLs are computed at `now`; expired-but-resident
    /// entries show 0 remaining.
    pub fn snapshot(&self, now: SimTime) -> CacheSnapshot {
        let mut entries = snapshot_entries(self.core.iter_entries(), now);
        entries.sort_by_key(|a| a.key());
        CacheSnapshot {
            at_ms: now.as_millis(),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Credibility;
    use crate::ledger::{BailiwickClass, StoreContext};
    use dnsttl_core::ResolverPolicy;
    use dnsttl_wire::{Name, RData, RRset, RecordType};

    fn a_rrset(name: &str, ttl: u32, last: u8) -> RRset {
        RRset {
            name: Name::parse(name).unwrap(),
            rtype: RecordType::A,
            ttl: Ttl::from_secs(ttl),
            rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, last))],
        }
    }

    fn ctx(txn: u64) -> StoreContext {
        StoreContext {
            txn,
            server: Some("198.51.100.1".parse().unwrap()),
            bailiwick: BailiwickClass::In,
        }
    }

    fn populated() -> Cache {
        let policy = ResolverPolicy::default();
        let mut c = Cache::new();
        c.store_with(
            a_rrset("b.example", 300, 2),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy,
            false,
            ctx(1),
        );
        c.store_with(
            a_rrset("a.example", 600, 1),
            Credibility::ReferralAdditional,
            SimTime::from_secs(10),
            &policy,
            false,
            ctx(2),
        );
        c
    }

    #[test]
    fn snapshot_is_sorted_and_ages_ttls() {
        let c = populated();
        let snap = c.snapshot(SimTime::from_secs(100));
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.entries[0].name, "a.example.");
        assert_eq!(snap.entries[1].name, "b.example.");
        assert_eq!(snap.entries[0].remaining_ttl_s, 510);
        assert_eq!(snap.entries[1].remaining_ttl_s, 200);
        assert_eq!(snap.entries[0].origin, "parent");
        assert_eq!(snap.entries[1].origin, "child");
        assert_eq!(snap.entries[1].txn, 1);
    }

    #[test]
    fn snapshot_round_trips_through_jsonl() {
        let c = populated();
        let snap = c.snapshot(SimTime::from_secs(42));
        let text = snap.to_jsonl();
        let back = CacheSnapshot::parse_jsonl(&text).unwrap();
        assert_eq!(back, snap);
        // Byte-identical re-render: the format is deterministic.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn diff_classifies_added_removed_changed_refreshed() {
        let policy = ResolverPolicy::default();
        let mut c = populated();
        let before = c.snapshot(SimTime::from_secs(20));
        // a.example changes data (overwrite), b.example refreshes,
        // c.example appears.
        c.store_with(
            a_rrset("a.example", 600, 9),
            Credibility::AuthAnswer,
            SimTime::from_secs(30),
            &policy,
            false,
            ctx(3),
        );
        c.store_with(
            a_rrset("b.example", 300, 2),
            Credibility::AuthAnswer,
            SimTime::from_secs(30),
            &policy,
            false,
            ctx(4),
        );
        c.store_with(
            a_rrset("c.example", 60, 3),
            Credibility::AuthAnswer,
            SimTime::from_secs(30),
            &policy,
            false,
            ctx(5),
        );
        let after = c.snapshot(SimTime::from_secs(31));
        let diff = before.diff(&after);
        assert_eq!(diff.added.len(), 1);
        assert_eq!(diff.added[0].name, "c.example.");
        assert_eq!(diff.changed.len(), 1);
        assert_eq!(diff.changed[0].1.rdatas, "192.0.2.9");
        assert_eq!(diff.refreshed.len(), 1);
        assert!(diff.removed.is_empty());
        assert!(!diff.render().is_empty());
        // Self-diff is empty.
        assert!(after.diff(&after).is_empty());
    }
}
