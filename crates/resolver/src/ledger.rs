//! Cache provenance: where a cached record came from, and the
//! attribution ledger that aggregates per-cell residency statistics.
//!
//! The paper's central question — which published TTL *actually*
//! governs an entry's residency (Tables 3–4, Figures 5–8) — is a
//! question about provenance: did the entry come from the parent's
//! referral or the child's authoritative answer, and was it in or out
//! of the responding server's bailiwick? This module carries that
//! answer on every entry and aggregates it per
//! `(record type, origin, bailiwick)` cell, so the effective-lifetime
//! claims can be audited from cache state alone.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::net::IpAddr;

use dnsttl_netsim::SimTime;
use dnsttl_telemetry::{CacheOp, Journal, LedgerRecord};
use dnsttl_wire::{RRset, RecordType, Ttl};

use crate::cache::Credibility;

/// Which side of the zone cut installed a record: the parent's
/// referral (authority NS + additional glue) or the child's
/// authoritative response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RecordOrigin {
    /// Referral data: the parent's truth.
    Parent,
    /// Authoritative (AA) data: the child's truth.
    Child,
    /// Pre-seeded data (root hints, manual stores) with no response
    /// behind it.
    #[default]
    Seed,
}

impl RecordOrigin {
    /// The RFC 2181 rank ladder splits exactly at the zone cut:
    /// referral-ranked data is the parent speaking, authoritative
    /// ranks are the child.
    pub fn from_rank(rank: Credibility) -> RecordOrigin {
        match rank {
            Credibility::ReferralAdditional | Credibility::ReferralAuthority => {
                RecordOrigin::Parent
            }
            Credibility::AuthAuthority | Credibility::AuthAnswer => RecordOrigin::Child,
        }
    }

    /// Stable ledger token.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecordOrigin::Parent => "parent",
            RecordOrigin::Child => "child",
            RecordOrigin::Seed => "seed",
        }
    }
}

/// Whether a record's owner name lies inside the zone the responding
/// server was answering for (§4.2: in-bailiwick glue is refreshed with
/// the NS RRset, coupling its lifetime to the NS TTL; out-of-bailiwick
/// addresses live out their own full TTL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BailiwickClass {
    /// Owner name is at/below the responding zone's cut.
    In,
    /// Owner name is outside the responding zone.
    Out,
    /// Not applicable (seeded data, no responding zone).
    #[default]
    Unknown,
}

impl BailiwickClass {
    /// Stable ledger token.
    pub fn as_str(&self) -> &'static str {
        match self {
            BailiwickClass::In => "in",
            BailiwickClass::Out => "out",
            BailiwickClass::Unknown => "none",
        }
    }
}

/// Everything the cache knows about how an entry got there. Carried on
/// each entry and returned with every [`crate::CachedAnswer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// DNS message id of the query whose response installed the entry
    /// (0 for seeded data).
    pub txn: u64,
    /// The server whose response installed the entry.
    pub server: Option<IpAddr>,
    /// Parent vs child origin.
    pub origin: RecordOrigin,
    /// Bailiwick class relative to the responding zone.
    pub bailiwick: BailiwickClass,
    /// TTL as published in the installing response.
    pub original_ttl: Ttl,
    /// TTL after resolver policy (caps, floors, clamps) — what the
    /// entry actually lives by.
    pub effective_ttl: Ttl,
}

impl Default for Provenance {
    fn default() -> Provenance {
        Provenance {
            txn: 0,
            server: None,
            origin: RecordOrigin::Seed,
            bailiwick: BailiwickClass::Unknown,
            original_ttl: Ttl::from_secs(0),
            effective_ttl: Ttl::from_secs(0),
        }
    }
}

/// Per-store context handed to [`crate::Cache::store_with`] by the
/// resolution loop: the response's message id, the server it came
/// from, and the bailiwick class computed against the queried zone.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreContext {
    /// DNS message id of the installing query.
    pub txn: u64,
    /// Responding server.
    pub server: Option<IpAddr>,
    /// Bailiwick class of the stored RRset.
    pub bailiwick: BailiwickClass,
}

/// Always-on scalar cache accounting. Cheap enough to maintain on the
/// telemetry-disabled path; the full journal only runs when the ledger
/// is enabled.
///
/// The counts obey a conservation law the accounting tests enforce:
/// every entry creation is an `insert`, every entry destruction is
/// exactly one of `overwrite`/`expiry`/`eviction`/`invalidation`/
/// `clear`, and a `refresh` is neither (same data, clock restarted) —
/// so `inserts − removals() == len()` at all times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries created (key previously empty, or old entry removed).
    pub inserts: u64,
    /// Re-stores of identical data: only the clock restarted.
    pub refreshes: u64,
    /// Entries destroyed because different data replaced them.
    pub overwrites: u64,
    /// Entries destroyed because their TTL had passed (purge, or
    /// replacement of an already-expired entry).
    pub expiries: u64,
    /// Entries destroyed by capacity pressure.
    pub evictions: u64,
    /// Entries destroyed by explicit invalidation.
    pub invalidations: u64,
    /// Entries destroyed by [`crate::Cache::clear`].
    pub clears: u64,
    /// Fresh entries served.
    pub hits: u64,
    /// Expired entries served under serve-stale.
    pub stale_hits: u64,
    /// Stores refused by the replacement rules or the zero-TTL rule.
    pub rejected_stores: u64,
}

impl CacheStats {
    /// Total entries destroyed, by any cause.
    pub fn removals(&self) -> u64 {
        self.overwrites + self.expiries + self.evictions + self.invalidations + self.clears
    }

    /// Folds another cache's counters into this one. Sharded runs use
    /// this to merge per-shard accounting: every field is a sum, so the
    /// conservation law (`inserts − removals() == live entries`) holds
    /// for the merged totals exactly when it holds per shard.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.inserts += other.inserts;
        self.refreshes += other.refreshes;
        self.overwrites += other.overwrites;
        self.expiries += other.expiries;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.clears += other.clears;
        self.hits += other.hits;
        self.stale_hits += other.stale_hits;
        self.rejected_stores += other.rejected_stores;
    }
}

/// An attribution cell: one `(record type, origin, bailiwick)` bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LedgerKey {
    /// Record type of the cached RRset.
    pub rtype: RecordType,
    /// Parent vs child origin.
    pub origin: RecordOrigin,
    /// Bailiwick class.
    pub bailiwick: BailiwickClass,
}

/// Aggregated counts and residency samples for one attribution cell.
#[derive(Debug, Clone, Default)]
pub struct LedgerCell {
    /// Entries created.
    pub inserts: u64,
    /// Same-data re-stores.
    pub refreshes: u64,
    /// Entries destroyed by different data.
    pub overwrites: u64,
    /// Fresh serves.
    pub serves: u64,
    /// TTL deaths.
    pub expiries: u64,
    /// Capacity deaths.
    pub evictions: u64,
    /// Explicit deaths.
    pub invalidations: u64,
    /// Serve-stale answers: expired entries served past TTL while the
    /// authoritatives were unreachable (RFC 8767).
    pub stale_serves: u64,
    /// Upstream failures negatively cached (RFC 2308 §7).
    pub neg_caches: u64,
    /// Residency at death, milliseconds — one sample per removal.
    /// Feeding these to an ECDF reproduces the effective-lifetime
    /// distributions of Figures 5–8.
    pub residency_ms: Vec<u64>,
}

impl LedgerCell {
    fn apply(&mut self, op: CacheOp, residency_ms: Option<u64>) {
        match op {
            CacheOp::Insert => self.inserts += 1,
            CacheOp::Refresh => self.refreshes += 1,
            CacheOp::Overwrite => self.overwrites += 1,
            CacheOp::Serve => self.serves += 1,
            CacheOp::Expire => self.expiries += 1,
            CacheOp::Evict => self.evictions += 1,
            CacheOp::Invalidate => self.invalidations += 1,
            CacheOp::StaleServe => self.stale_serves += 1,
            CacheOp::NegCache => self.neg_caches += 1,
        }
        if op.is_removal() {
            if let Some(res) = residency_ms {
                self.residency_ms.push(res);
            }
        }
    }

    /// Serves per lifetime: the cell's hit-to-install ratio.
    pub fn serves_per_insert(&self) -> f64 {
        if self.inserts == 0 {
            return 0.0;
        }
        self.serves as f64 / self.inserts as f64
    }
}

/// The full provenance ledger: a bounded journal of every transaction
/// plus per-cell aggregation. Opt-in via
/// [`crate::Cache::enable_ledger`]; the always-on path keeps only
/// [`CacheStats`].
#[derive(Debug)]
pub struct Ledger {
    journal: Journal,
    cells: BTreeMap<LedgerKey, LedgerCell>,
}

impl Ledger {
    /// An empty ledger with the default journal capacity.
    pub fn new() -> Ledger {
        Ledger {
            journal: Journal::default(),
            cells: BTreeMap::new(),
        }
    }

    /// An empty ledger whose journal holds up to `capacity` records —
    /// the concurrent backend sizes its replayed ledger to its op log
    /// so a full log never drops journal lines.
    pub fn with_journal_capacity(capacity: usize) -> Ledger {
        Ledger {
            journal: Journal::with_capacity(capacity),
            cells: BTreeMap::new(),
        }
    }

    /// Records one transaction into the journal and its cell.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        now: SimTime,
        op: CacheOp,
        rrset: &RRset,
        rank: Credibility,
        prov: &Provenance,
        residency_ms: Option<u64>,
        fingerprint: u64,
    ) {
        let key = LedgerKey {
            rtype: rrset.rtype,
            origin: prov.origin,
            bailiwick: prov.bailiwick,
        };
        self.cells.entry(key).or_default().apply(op, residency_ms);
        // Every field below is either shared (the name buffer), borrowed
        // from a `'static` mnemonic table, or plain data — recording a
        // transaction allocates nothing beyond the journal slot.
        self.journal.push(LedgerRecord {
            t_ms: now.as_millis(),
            op,
            name: rrset.name.shared_str(),
            rtype: Cow::Borrowed(rrset.rtype.as_str()),
            txn: prov.txn,
            server: prov.server,
            origin: Cow::Borrowed(prov.origin.as_str()),
            bailiwick: Cow::Borrowed(prov.bailiwick.as_str()),
            rank: Cow::Borrowed(rank_token(rank)),
            original_ttl: prov.original_ttl.as_secs(),
            effective_ttl: prov.effective_ttl.as_secs(),
            residency_ms,
            fingerprint,
        });
    }

    /// The transaction journal, oldest first.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Attribution cells in deterministic order.
    pub fn cells(&self) -> impl Iterator<Item = (&LedgerKey, &LedgerCell)> {
        self.cells.iter()
    }

    /// One cell, if it has seen any transaction.
    pub fn cell(&self, key: &LedgerKey) -> Option<&LedgerCell> {
        self.cells.get(key)
    }
}

impl Default for Ledger {
    fn default() -> Ledger {
        Ledger::new()
    }
}

/// The stable token a credibility rank gets in ledger lines and
/// snapshots.
pub fn rank_token(rank: Credibility) -> &'static str {
    match rank {
        Credibility::ReferralAdditional => "referral_additional",
        Credibility::ReferralAuthority => "referral_authority",
        Credibility::AuthAuthority => "auth_authority",
        Credibility::AuthAnswer => "auth_answer",
    }
}

/// Parses a rank token back (the inverse of [`rank_token`]).
pub fn parse_rank_token(s: &str) -> Option<Credibility> {
    Some(match s {
        "referral_additional" => Credibility::ReferralAdditional,
        "referral_authority" => Credibility::ReferralAuthority,
        "auth_authority" => Credibility::AuthAuthority,
        "auth_answer" => Credibility::AuthAnswer,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_splits_at_the_zone_cut() {
        assert_eq!(
            RecordOrigin::from_rank(Credibility::ReferralAdditional),
            RecordOrigin::Parent
        );
        assert_eq!(
            RecordOrigin::from_rank(Credibility::ReferralAuthority),
            RecordOrigin::Parent
        );
        assert_eq!(
            RecordOrigin::from_rank(Credibility::AuthAuthority),
            RecordOrigin::Child
        );
        assert_eq!(
            RecordOrigin::from_rank(Credibility::AuthAnswer),
            RecordOrigin::Child
        );
    }

    #[test]
    fn rank_tokens_round_trip() {
        for rank in [
            Credibility::ReferralAdditional,
            Credibility::ReferralAuthority,
            Credibility::AuthAuthority,
            Credibility::AuthAnswer,
        ] {
            assert_eq!(parse_rank_token(rank_token(rank)), Some(rank));
        }
        assert_eq!(parse_rank_token("bogus"), None);
    }

    #[test]
    fn stats_conservation_arithmetic() {
        let stats = CacheStats {
            inserts: 10,
            overwrites: 2,
            expiries: 3,
            evictions: 1,
            invalidations: 1,
            clears: 1,
            ..CacheStats::default()
        };
        assert_eq!(stats.removals(), 8);
    }
}
