//! The concurrent shared-cache backend: sharded-lock segments over the
//! same [`CacheCore`] state machine the sequential oracle runs.
//!
//! The paper's open-resolver populations (Google DNS, OpenDNS) share
//! one cache across many client threads — that sharing is what drives
//! their hit-rate and centricity effects. [`SharedCache`] models the
//! topology: a power-of-two array of mutex-guarded segments, each a
//! [`CacheCore`] with its own expiry index and stats, with keys routed
//! by the interned [`Name`]'s precomputed case-folded hash.
//!
//! # Determinism and the proof strategy
//!
//! Segments are fully independent: an operation touches exactly one
//! segment (except `purge_expired`, `invalidate_zone`, `clear`, and
//! whole-cache reads, which visit segments one at a time *in index
//! order*). Two consequences the differential harness
//! (`tests/concurrent_equivalence.rs`) builds on:
//!
//! * a single-threaded replay of a workload through a `SharedCache` is
//!   byte-equivalent, per segment, to replaying each segment's
//!   subsequence through a sequential [`Cache`] of the segment's
//!   capacity — same answers, same victim sequence, same ledger;
//! * threads that own disjoint segment sets commute: free-running
//!   execution reaches the same final state, per-segment victim
//!   sequence, and summed stats as the sequential replay, whatever the
//!   interleaving.
//!
//! The eviction tie-break, per segment, is the documented core order:
//! `(expires_at, canonical name order, type code)`, probation tier
//! before the SLRU protected tier.
//!
//! # Ledger ops under concurrency
//!
//! The `Rc`-based telemetry handle cannot cross threads, so the shared
//! backend journals through its own lock-free append: a preallocated
//! slot array claimed by an atomic reservation index ([`OpLog`]).
//! Appends happen while the owning segment's lock is held, so each
//! segment's ops appear in the log in true operation order; the §8
//! conservation law (`inserts == removals + live`) holds per segment
//! and therefore for the summed [`CacheStats`].

use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{SimDuration, SimTime};
use dnsttl_telemetry::CacheOp;
use dnsttl_wire::{Name, RRset, Rcode, RecordType, Ttl};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::cache::{CacheCore, CachedAnswer, Credibility, OpSink};
use crate::ledger::{CacheStats, Ledger, Provenance, StoreContext};
use crate::snapshot::CacheSnapshot;

/// Default op-log capacity: matches the telemetry journal's default so
/// a replayed ledger never drops lines the log kept.
pub const DEFAULT_OP_LOG_CAPACITY: usize = dnsttl_telemetry::DEFAULT_JOURNAL_CAPACITY;

/// One journalled cache transaction, as captured under a segment lock.
#[derive(Debug, Clone)]
struct SharedOp {
    now: SimTime,
    segment: u32,
    op: CacheOp,
    name: Name,
    rtype: RecordType,
    ttl: Ttl,
    rank: Credibility,
    prov: Provenance,
    residency_ms: Option<u64>,
    fingerprint: u64,
}

/// Lock-free append-only op journal: slots are claimed by a relaxed
/// `fetch_add` on the reservation index and published through
/// `OnceLock::set`, so appends never block each other and never block
/// a reader. Overflow increments `dropped` instead of wrapping — the
/// doctor-style checks assert `dropped == 0` before trusting a replay.
#[derive(Debug)]
struct OpLog {
    slots: Box<[OnceLock<SharedOp>]>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl OpLog {
    fn with_capacity(capacity: usize) -> OpLog {
        let slots: Vec<OnceLock<SharedOp>> =
            (0..capacity.max(1)).map(|_| OnceLock::new()).collect();
        OpLog {
            slots: slots.into_boxed_slice(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn append(&self, op: SharedOp) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Each index is claimed exactly once, so the set cannot race.
        let _ = self.slots[idx].set(op);
    }

    fn len(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.slots.len())
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// Recorded ops in append order. Slots still being written by a
    /// racing thread read as absent and are skipped — quiesced callers
    /// (joined threads) always see every op.
    fn iter(&self) -> impl Iterator<Item = &SharedOp> {
        self.slots[..self.len()].iter().filter_map(OnceLock::get)
    }
}

/// The [`OpSink`] a segment operation runs under: the segment's own
/// stats (borrowed through its lock) plus the shared lock-free log.
struct SharedSink<'a> {
    stats: &'a mut CacheStats,
    log: Option<&'a OpLog>,
    segment: u32,
}

impl OpSink for SharedSink<'_> {
    fn stats(&mut self) -> &mut CacheStats {
        self.stats
    }

    fn note(
        &mut self,
        now: SimTime,
        op: CacheOp,
        rrset: &RRset,
        rank: Credibility,
        prov: Provenance,
        residency_ms: Option<u64>,
        fingerprint: u64,
    ) {
        let Some(log) = self.log else { return };
        log.append(SharedOp {
            now,
            segment: self.segment,
            op,
            name: rrset.name.clone(),
            rtype: rrset.rtype,
            ttl: rrset.ttl,
            rank,
            prov,
            residency_ms,
            fingerprint,
        });
    }
}

/// One locked shard: a sequential core plus its always-on counters.
#[derive(Debug)]
struct Segment {
    core: CacheCore,
    stats: CacheStats,
}

/// A concurrent, segment-locked cache sharing the sequential engine's
/// replacement/expiry/eviction logic verbatim. All methods take
/// `&self`; locking is internal and per segment, so resolver threads
/// contend only when they touch names hashing to the same shard.
#[derive(Debug)]
pub struct SharedCache {
    segments: Box<[Mutex<Segment>]>,
    /// `segment_count − 1`; the count is a power of two, so the hash
    /// masks straight into an index.
    mask: u64,
    /// Allocated on `enable_ledger`; absent = journalling off.
    log: OnceLock<OpLog>,
    log_capacity: usize,
}

impl SharedCache {
    /// An unbounded shared cache with `segments` lock shards (rounded
    /// up to a power of two, clamped to `[1, 256]`).
    pub fn new(segments: usize) -> SharedCache {
        SharedCache::with_options(segments, None, false)
    }

    /// A shared cache bounded to ~`capacity` positive entries total,
    /// split evenly across segments (each shard gets
    /// `ceil(capacity / segments)`, minimum 1).
    pub fn with_capacity(segments: usize, capacity: usize) -> SharedCache {
        SharedCache::with_options(segments, Some(capacity), false)
    }

    /// Full constructor: segment count, optional total capacity, and
    /// SLRU-style admission (hits promote entries into a protected
    /// tier that is evicted only after probation drains).
    pub fn with_options(segments: usize, capacity: Option<usize>, slru: bool) -> SharedCache {
        let count = segments.clamp(1, 256).next_power_of_two();
        let per_segment = capacity.map(|c| c.max(1).div_ceil(count));
        let segments: Vec<Mutex<Segment>> = (0..count)
            .map(|_| {
                Mutex::new(Segment {
                    core: CacheCore::new(per_segment, slru),
                    stats: CacheStats::default(),
                })
            })
            .collect();
        SharedCache {
            segments: segments.into_boxed_slice(),
            mask: (count - 1) as u64,
            log: OnceLock::new(),
            log_capacity: DEFAULT_OP_LOG_CAPACITY,
        }
    }

    /// Builds the backend a policy asks for.
    pub fn from_policy(policy: &ResolverPolicy) -> SharedCache {
        SharedCache::with_options(
            policy.cache_segments,
            policy.cache_capacity,
            policy.slru_admission,
        )
    }

    /// Sets the op-log capacity used when the ledger is (later)
    /// enabled. No effect once `enable_ledger` has run.
    pub fn set_op_log_capacity(&mut self, capacity: usize) {
        self.log_capacity = capacity.max(1);
    }

    /// Number of lock segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segment a name's keys live in: the interned name's
    /// precomputed case-folded FNV-1a hash, masked. Public so
    /// differential harnesses can compose a per-segment oracle with
    /// the same routing.
    pub fn segment_of(&self, name: &Name) -> usize {
        (name.folded_hash() & self.mask) as usize
    }

    fn lock(&self, index: usize) -> MutexGuard<'_, Segment> {
        self.segments[index]
            .lock()
            .expect("cache segment lock poisoned")
    }

    fn lock_for(&self, name: &Name) -> (MutexGuard<'_, Segment>, u32) {
        let idx = self.segment_of(name);
        (self.lock(idx), idx as u32)
    }

    /// Turns on the op journal: every transaction from here on is
    /// appended to the lock-free log and replayable as a [`Ledger`].
    /// `&self` on purpose — threads hold the cache behind an `Arc`.
    pub fn enable_ledger(&self) {
        self.log
            .get_or_init(|| OpLog::with_capacity(self.log_capacity));
    }

    /// Whether the op journal is recording.
    pub fn ledger_enabled(&self) -> bool {
        self.log.get().is_some()
    }

    /// Ops that overflowed the journal (0 unless the log filled up).
    pub fn ledger_dropped(&self) -> u64 {
        self.log.get().map(OpLog::dropped).unwrap_or(0)
    }

    /// Replays the op log into a [`Ledger`] and runs `f` against it,
    /// if journalling is on. Op order is global append order: exact
    /// per segment; across segments it is whatever interleaving
    /// actually executed (deterministic only for deterministic
    /// schedules). Call with threads quiesced for a complete view.
    pub fn with_ledger<T>(&self, f: impl FnOnce(&Ledger) -> T) -> Option<T> {
        let log = self.log.get()?;
        let ledger = self.replay(log, None);
        Some(f(&ledger))
    }

    /// The replayed ledger for one segment's ops only — per-segment
    /// order is true operation order, so this is byte-comparable
    /// against a sequential oracle driven with the same subsequence.
    pub fn segment_ledger(&self, segment: usize) -> Option<Ledger> {
        let log = self.log.get()?;
        Some(self.replay(log, Some(segment as u32)))
    }

    fn replay(&self, log: &OpLog, segment: Option<u32>) -> Ledger {
        let mut ledger = Ledger::with_journal_capacity(self.log_capacity);
        for op in log.iter() {
            if segment.is_some_and(|s| s != op.segment) {
                continue;
            }
            // A shell RRset carries everything a ledger record reads:
            // the shared name buffer, the type, and the effective TTL.
            let shell = RRset {
                name: op.name.clone(),
                rtype: op.rtype,
                ttl: op.ttl,
                rdatas: vec![],
            };
            ledger.record(
                op.now,
                op.op,
                &shell,
                op.rank,
                &op.prov,
                op.residency_ms,
                op.fingerprint,
            );
        }
        ledger
    }

    fn sink<'a>(stats: &'a mut CacheStats, log: Option<&'a OpLog>, segment: u32) -> SharedSink<'a> {
        SharedSink {
            stats,
            log,
            segment,
        }
    }

    /// See [`crate::Cache::store`].
    pub fn store(
        &self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
    ) {
        self.store_with(rrset, rank, now, policy, pinned, StoreContext::default());
    }

    /// See [`crate::Cache::store_with`].
    pub fn store_with(
        &self,
        rrset: RRset,
        rank: Credibility,
        now: SimTime,
        policy: &ResolverPolicy,
        pinned: bool,
        ctx: StoreContext,
    ) {
        let (mut seg, idx) = self.lock_for(&rrset.name);
        let Segment { core, stats } = &mut *seg;
        let mut sink = SharedCache::sink(stats, self.log.get(), idx);
        core.store_with(rrset, rank, now, policy, pinned, ctx, &mut sink);
    }

    /// See [`crate::Cache::get`]. A hit additionally runs the SLRU
    /// promotion hook (a no-op unless admission is on).
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<CachedAnswer> {
        let (mut seg, idx) = self.lock_for(name);
        let Segment { core, stats } = &mut *seg;
        let mut sink = SharedCache::sink(stats, self.log.get(), idx);
        let hit = core.get(name, rtype, now, &mut sink);
        if hit.is_some() {
            core.touch(name, rtype);
        }
        hit
    }

    /// See [`crate::Cache::get_stale`].
    pub fn get_stale(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        max_stale: Ttl,
    ) -> Option<CachedAnswer> {
        let (mut seg, idx) = self.lock_for(name);
        let Segment { core, stats } = &mut *seg;
        let mut sink = SharedCache::sink(stats, self.log.get(), idx);
        let hit = core.get_stale(name, rtype, now, max_stale, &mut sink);
        if hit.as_ref().is_some_and(|h| !h.stale) {
            core.touch(name, rtype);
        }
        hit
    }

    /// See [`crate::Cache::store_negative`].
    #[allow(clippy::too_many_arguments)]
    pub fn store_negative(
        &self,
        name: Name,
        rtype: RecordType,
        rcode: Rcode,
        soa_minimum: Ttl,
        soa_ttl: Ttl,
        now: SimTime,
        policy: &ResolverPolicy,
    ) {
        let (mut seg, _) = self.lock_for(&name);
        seg.core
            .store_negative(name, rtype, rcode, soa_minimum, soa_ttl, now, policy);
    }

    /// See [`crate::Cache::store_failure`].
    pub fn store_failure(&self, name: Name, rtype: RecordType, ttl: Ttl, now: SimTime) {
        let (mut seg, idx) = self.lock_for(&name);
        let Segment { core, stats } = &mut *seg;
        let mut sink = SharedCache::sink(stats, self.log.get(), idx);
        core.store_failure(name, rtype, ttl, now, &mut sink);
    }

    /// See [`crate::Cache::get_negative`].
    pub fn get_negative(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Rcode> {
        let (seg, _) = self.lock_for(name);
        seg.core.get_negative(name, rtype, now)
    }

    /// See [`crate::Cache::invalidate`].
    pub fn invalidate(&self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        let (mut seg, idx) = self.lock_for(name);
        let Segment { core, stats } = &mut *seg;
        let mut sink = SharedCache::sink(stats, self.log.get(), idx);
        core.invalidate(name, rtype, now, &mut sink)
    }

    /// See [`crate::Cache::invalidate_zone`]. Segments are visited one
    /// at a time in index order; within each segment victims die in
    /// canonical name order under that segment's lock. Each victim is
    /// counted exactly once (as an invalidation) even when an expiry
    /// purge races on another thread: whichever side takes the segment
    /// lock first removes the entry, and the loser no longer sees it.
    pub fn invalidate_zone(&self, apex: &Name, now: SimTime) -> usize {
        let mut total = 0;
        for idx in 0..self.segments.len() {
            let mut seg = self.lock(idx);
            let Segment { core, stats } = &mut *seg;
            let mut sink = SharedCache::sink(stats, self.log.get(), idx as u32);
            total += core.invalidate_zone(apex, now, &mut sink);
        }
        total
    }

    /// See [`crate::Cache::purge_expired`]. Per-segment, in index
    /// order, each under its own lock — the removal-cause audit mirror
    /// of [`SharedCache::invalidate_zone`].
    pub fn purge_expired(&self, now: SimTime) {
        for idx in 0..self.segments.len() {
            let mut seg = self.lock(idx);
            let Segment { core, stats } = &mut *seg;
            let mut sink = SharedCache::sink(stats, self.log.get(), idx as u32);
            core.purge_expired(now, &mut sink);
        }
    }

    /// See [`crate::Cache::expired_since`].
    pub fn expired_since(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<SimDuration> {
        let (seg, _) = self.lock_for(name);
        seg.core.expired_since(name, rtype, now)
    }

    /// See [`crate::Cache::freshness`].
    pub fn freshness(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<f64> {
        let (seg, _) = self.lock_for(name);
        seg.core.freshness(name, rtype, now)
    }

    /// Number of positive entries across all segments.
    pub fn len(&self) -> usize {
        (0..self.segments.len())
            .map(|i| self.lock(i).core.len())
            .sum()
    }

    /// True if no segment holds a positive entry.
    pub fn is_empty(&self) -> bool {
        (0..self.segments.len()).all(|i| self.lock(i).core.is_empty())
    }

    /// Entries evicted under capacity pressure, across all segments.
    pub fn evictions(&self) -> u64 {
        (0..self.segments.len())
            .map(|i| self.lock(i).core.evictions())
            .sum()
    }

    /// Summed per-segment counters. Each segment's counts obey the §8
    /// conservation law under its own lock, so the sums do too —
    /// whatever the thread interleaving was.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.segments.len() {
            total.absorb(&self.lock(i).stats);
        }
        total
    }

    /// One segment's counters (differential harnesses).
    pub fn segment_stats(&self, segment: usize) -> CacheStats {
        self.lock(segment).stats
    }

    /// One segment's positive-entry count (differential harnesses).
    pub fn segment_len(&self, segment: usize) -> usize {
        self.lock(segment).core.len()
    }

    /// See [`crate::Cache::clear`].
    pub fn clear(&self) {
        for idx in 0..self.segments.len() {
            let mut seg = self.lock(idx);
            let Segment { core, stats } = &mut *seg;
            let mut sink = SharedCache::sink(stats, self.log.get(), idx as u32);
            core.clear(&mut sink);
        }
    }

    /// Freezes the positive contents of every segment into one
    /// deterministic sorted dump — same format and sort order as the
    /// sequential engine's [`crate::Cache::snapshot`].
    pub fn snapshot(&self, now: SimTime) -> CacheSnapshot {
        let mut entries = Vec::new();
        for idx in 0..self.segments.len() {
            let seg = self.lock(idx);
            entries.extend(crate::snapshot::snapshot_entries(
                seg.core.iter_entries(),
                now,
            ));
        }
        entries.sort_by_key(|a| a.key());
        CacheSnapshot {
            at_ms: now.as_millis(),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_wire::RData;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_rrset(name: &str, ttl: u32, last: u8) -> RRset {
        RRset {
            name: n(name),
            rtype: RecordType::A,
            ttl: Ttl::from_secs(ttl),
            rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, last))],
        }
    }

    #[test]
    fn segment_count_rounds_to_power_of_two() {
        assert_eq!(SharedCache::new(1).segment_count(), 1);
        assert_eq!(SharedCache::new(3).segment_count(), 4);
        assert_eq!(SharedCache::new(8).segment_count(), 8);
        assert_eq!(SharedCache::new(300).segment_count(), 256);
        assert_eq!(SharedCache::new(0).segment_count(), 1);
    }

    #[test]
    fn routing_is_case_insensitive_and_stable() {
        let c = SharedCache::new(8);
        assert_eq!(c.segment_of(&n("A.Nic.UY")), c.segment_of(&n("a.nic.uy")));
    }

    #[test]
    fn store_get_round_trip_across_segments() {
        let c = SharedCache::new(8);
        let policy = ResolverPolicy::default();
        for i in 0..64u8 {
            c.store(
                a_rrset(&format!("w{i}.pool.example"), 300, i),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy,
                false,
            );
        }
        assert_eq!(c.len(), 64);
        for i in 0..64u8 {
            let got = c
                .get(
                    &n(&format!("w{i}.pool.example")),
                    RecordType::A,
                    SimTime::from_secs(100),
                )
                .expect("stored entry");
            assert_eq!(got.rrset.ttl.as_secs(), 200);
        }
        assert_eq!(c.stats().hits, 64);
        assert_eq!(c.stats().inserts, 64);
    }

    #[test]
    fn ledger_replay_conserves_and_counts() {
        let c = SharedCache::with_capacity(4, 16);
        c.enable_ledger();
        let policy = ResolverPolicy::default();
        for i in 0..40u8 {
            c.store(
                a_rrset(&format!("w{i}.pool.example"), 60 + i as u32, i),
                Credibility::AuthAnswer,
                SimTime::from_secs(i as u64),
                &policy,
                false,
            );
        }
        c.purge_expired(SimTime::from_secs(600));
        let stats = c.stats();
        assert_eq!(stats.inserts, stats.removals() + c.len() as u64);
        assert_eq!(c.ledger_dropped(), 0);
        let (inserts, expiries, evictions) = c
            .with_ledger(|l| {
                let mut i = 0;
                let mut x = 0;
                let mut v = 0;
                for r in l.journal().records() {
                    match r.op {
                        CacheOp::Insert => i += 1,
                        CacheOp::Expire => x += 1,
                        CacheOp::Evict => v += 1,
                        _ => {}
                    }
                }
                (i, x, v)
            })
            .expect("ledger on");
        assert_eq!(inserts, stats.inserts);
        assert_eq!(expiries, stats.expiries);
        assert_eq!(evictions, stats.evictions);
    }

    #[test]
    fn snapshot_matches_sequential_format() {
        let shared = SharedCache::new(4);
        let mut seq = crate::Cache::new();
        let policy = ResolverPolicy::default();
        for i in 0..12u8 {
            let rr = a_rrset(&format!("w{i}.pool.example"), 300, i);
            shared.store(
                rr.clone(),
                Credibility::AuthAnswer,
                SimTime::ZERO,
                &policy,
                false,
            );
            seq.store(rr, Credibility::AuthAnswer, SimTime::ZERO, &policy, false);
        }
        let at = SimTime::from_secs(30);
        assert_eq!(shared.snapshot(at).to_jsonl(), seq.snapshot(at).to_jsonl());
    }
}
