//! The iterative resolution engine.
//!
//! [`RecursiveResolver::resolve`] answers one client question the way a
//! production recursive does: consult the cache (with the centricity
//! rules deciding which ranks of cached data may answer a client),
//! otherwise walk the delegation tree from the deepest cached zone cut,
//! chasing referrals and CNAMEs, resolving out-of-bailiwick server
//! addresses with sub-queries, retrying and failing over between
//! servers, and accounting the RTT of every exchange.

use crate::backend::CacheEngine;
use crate::cache::Credibility;
use crate::ledger::{BailiwickClass, StoreContext};
use crate::shared::SharedCache;
use dnsttl_core::{Centricity, ResolverPolicy};
use dnsttl_netsim::{ExchangeOutcome, Network, Region, SimDuration, SimRng, SimTime, Transport};
use dnsttl_telemetry::{EventKind, MetricKey, SpanId, Telemetry, Value};
use dnsttl_wire::{Message, Name, RData, RRset, Rcode, Record, RecordType, Ttl};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Maximum referral-chasing iterations per query.
const MAX_ITERATIONS: usize = 16;
/// Maximum recursion depth for server-address sub-resolutions and
/// CNAME chains.
const MAX_DEPTH: usize = 6;

/// A root hint: the name and address of a root server, compiled into
/// every resolver (never expires).
#[derive(Debug, Clone)]
pub struct RootHint {
    /// Root server host name (e.g. `k.root-servers.net`).
    pub ns_name: Name,
    /// Its address on the simulated network.
    pub addr: IpAddr,
}

/// Counters a resolver keeps about its own behaviour.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ResolverStats {
    /// Client questions received.
    pub client_queries: u64,
    /// Questions answered entirely from cache.
    pub cache_hits: u64,
    /// Queries sent to authoritative servers.
    pub upstream_queries: u64,
    /// Exchanges that timed out.
    pub timeouts: u64,
    /// Questions that ended in SERVFAIL.
    pub servfails: u64,
    /// Questions answered from stale cache entries.
    pub stale_answers: u64,
    /// RRsets that passed DNSSEC validation.
    pub validations: u64,
    /// Responses rejected as bogus (signature present but invalid).
    pub validation_failures: u64,
    /// Background refreshes triggered by the prefetch policy.
    pub prefetches: u64,
    /// Truncated UDP responses retried over TCP.
    pub tcp_fallbacks: u64,
    /// Candidate servers skipped because they were in exponential
    /// backoff after repeated failures.
    pub backoff_skips: u64,
    /// Upstream failures cached per RFC 2308 §7 (and answered from the
    /// failure cache without re-probing dead servers).
    pub failure_caches: u64,
}

/// What one client question cost and produced.
#[derive(Debug, Clone)]
pub struct ResolutionOutcome {
    /// The response message handed to the client (RA set; TTLs are the
    /// decremented cache views, which is exactly what the paper's Atlas
    /// vantage points record).
    pub answer: Message,
    /// Resolver-side time spent: the sum of all upstream exchange RTTs
    /// and timeouts. Zero-ish for cache hits.
    pub elapsed: SimDuration,
    /// True when no upstream query was needed.
    pub cache_hit: bool,
    /// True when the answer came from an expired entry (serve-stale).
    pub served_stale: bool,
    /// Upstream queries sent for this question.
    pub upstream_queries: u32,
}

/// Per-server exponential-backoff state (the "dead server" memory of
/// BIND/Unbound): after a server times out on every retry, it is
/// skipped for a growing interval instead of being re-probed by every
/// client question.
#[derive(Debug, Clone, Copy)]
struct BackoffState {
    /// Consecutive all-retries-failed episodes.
    failures: u32,
    /// Do not contact the server again before this instant.
    until: SimTime,
}

/// Per-question bookkeeping threaded through recursion.
struct Ctx {
    elapsed: SimDuration,
    upstream: u32,
    /// Names currently being resolved, to break sub-resolution cycles.
    in_flight: HashSet<(Name, RecordType)>,
    /// Prefetch refresh: this (name, type) must bypass the answer
    /// cache so the upstream copy is re-fetched.
    refresh_target: Option<(Name, RecordType)>,
    /// The telemetry span covering this client question.
    span: SpanId,
}

/// Result of the internal resolution routine.
enum Resolved {
    /// Records answering the question (CNAME chain included), plus
    /// whether any came from stale cache.
    Answer { records: Vec<Record>, stale: bool },
    /// A cached or fresh negative result.
    Negative(Rcode),
    /// Resolution failed (lame delegations, timeouts, depth exhausted).
    Fail,
}

/// A recursive resolver with one cache and one policy.
pub struct RecursiveResolver {
    /// Diagnostic label, e.g. `"resolver-193"`. Shared so per-query
    /// trace events attach it without allocating.
    pub label: std::sync::Arc<str>,
    policy: ResolverPolicy,
    region: Region,
    tag: u64,
    cache: CacheEngine,
    roots: Vec<RootHint>,
    rng: SimRng,
    /// Zone apex → server address that answered for it last
    /// (sticky-resolver state, §4.4). Lookup-only: never iterated, so
    /// HashMap order cannot leak into resolution output.
    sticky_server: HashMap<Name, IpAddr>,
    /// Server address → backoff state (only populated when the policy
    /// enables `server_backoff`). Lookup-only, like `sticky_server`.
    backoff: HashMap<IpAddr, BackoffState>,
    stats: ResolverStats,
    telemetry: Telemetry,
    next_id: u16,
}

impl RecursiveResolver {
    /// Creates a resolver.
    ///
    /// * `tag` identifies this resolver as a traffic source (its
    ///   simulated source address);
    /// * `roots` are the compiled-in root hints;
    /// * `rng` drives server selection rotation.
    pub fn new(
        label: impl Into<String>,
        policy: ResolverPolicy,
        region: Region,
        tag: u64,
        roots: Vec<RootHint>,
        rng: SimRng,
    ) -> RecursiveResolver {
        let cache = CacheEngine::from_policy(&policy);
        RecursiveResolver {
            label: label.into().into(),
            policy,
            region,
            tag,
            cache,
            roots,
            rng,
            sticky_server: HashMap::new(),
            backoff: HashMap::new(),
            stats: ResolverStats::default(),
            telemetry: Telemetry::disabled(),
            next_id: 1,
        }
    }

    /// Attaches a telemetry handle; events and metrics from this
    /// resolver — and typed cache-transaction events from its cache —
    /// land in it. The default handle is disabled (no-op).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.cache.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The policy this resolver runs.
    pub fn policy(&self) -> &ResolverPolicy {
        &self.policy
    }

    /// The resolver's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The resolver's source tag (visible to servers it queries).
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Read access to the cache engine (tests and analyses).
    pub fn cache(&self) -> &CacheEngine {
        &self.cache
    }

    /// Write access to the cache engine (forensics harnesses:
    /// snapshots, explicit invalidations, ledger control).
    pub fn cache_mut(&mut self) -> &mut CacheEngine {
        &mut self.cache
    }

    /// A cloneable handle to the concurrent backend, when the policy
    /// selected it (`cache_backend: Shared`) — client threads clone
    /// this to hit the same cache the resolver serves from. `None`
    /// under the sequential engine.
    pub fn shared_cache(&self) -> Option<std::sync::Arc<SharedCache>> {
        self.cache.shared()
    }

    /// Turns on the cache's provenance ledger (see
    /// [`crate::Cache::enable_ledger`]).
    pub fn enable_cache_ledger(&mut self) {
        self.cache.enable_ledger();
    }

    /// Drops all cached state (between experiment phases).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.sticky_server.clear();
    }

    /// Applies a scheduled cache-flush fault
    /// ([`FaultKind::Flush`](dnsttl_netsim::FaultKind::Flush)): wipes
    /// positive, negative, sticky and backoff state the way an operator
    /// `rndc flush` or a resolver restart would, and journals the event.
    pub fn apply_flush(&mut self, now: SimTime) {
        let label = self.label.clone();
        self.telemetry
            .event(now.as_millis(), EventKind::Fault, |f| {
                f.push("fault", Value::literal("flush"));
                f.push("resolver", label);
            });
        self.telemetry
            .count_keyed_at(&metrics::FAULT_FLUSHES, 1, now.as_millis());
        self.cache.clear();
        self.sticky_server.clear();
        self.backoff.clear();
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &ResolverStats {
        &self.stats
    }

    fn next_msg_id(&mut self) -> u16 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// Answers one client question.
    pub fn resolve(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
        net: &mut Network,
    ) -> ResolutionOutcome {
        bump(
            &mut self.stats.client_queries,
            &self.telemetry,
            &metrics::CLIENT_QUERIES,
            now.as_millis(),
        );
        let span = {
            let label = self.label.clone();
            self.telemetry.span_start(now.as_millis(), |_, f| {
                f.push("resolver", label);
                f.push("qname", qname.shared_str());
                f.push("qtype", Value::literal(qtype.as_str()));
            })
        };
        // Expiry probe: the entry was cached and the TTL ran out — this
        // question is a *refetch*, the event Figure 6 bins by age.
        if self.telemetry.is_enabled() {
            if let Some(expired_for) = self.cache.expired_since(qname, qtype, now) {
                self.telemetry
                    .span_event(span, now.as_millis(), EventKind::CacheExpiry, |f| {
                        f.push("qname", qname.shared_str());
                        f.push("qtype", Value::literal(qtype.as_str()));
                        f.push("expired_for_ms", expired_for.as_millis());
                    });
                self.telemetry
                    .count_keyed_at(&metrics::CACHE_EXPIRIES, 1, now.as_millis());
            }
        }
        let mut ctx = Ctx {
            elapsed: SimDuration::ZERO,
            upstream: 0,
            in_flight: HashSet::new(),
            refresh_target: None,
            span,
        };
        let resolved = self.resolve_inner(qname, qtype, now, net, &mut ctx, 0);

        // RFC 2308 §7 / RFC 8767 §5: a resolution that ended in failure
        // or had to fall back to stale data means the authoritatives
        // are unreachable — cache that fact so follow-up queries inside
        // the recheck window answer immediately (stale or SERVFAIL)
        // instead of re-probing dead servers.
        if let Some(failure_ttl) = self.policy.upstream_failure_ttl {
            let upstream_dead = matches!(
                &resolved,
                Resolved::Fail | Resolved::Answer { stale: true, .. }
            );
            // `ctx.elapsed > 0` ⇔ servers were actually probed this
            // question (timeouts count toward elapsed but not toward
            // `ctx.upstream`); answers straight from the failure cache
            // must not refresh the failure TTL forever.
            if upstream_dead && ctx.elapsed > SimDuration::ZERO {
                self.cache
                    .store_failure(qname.clone(), qtype, failure_ttl, now);
                bump(
                    &mut self.stats.failure_caches,
                    &self.telemetry,
                    &metrics::FAILURE_CACHES,
                    now.as_millis(),
                );
            }
        }

        let mut answer = Message::query(self.next_msg_id(), qname.clone(), qtype);
        answer.header.response = true;
        answer.header.recursion_available = true;
        let mut served_stale = false;
        match resolved {
            Resolved::Answer { records, stale } => {
                answer.header.rcode = Rcode::NoError;
                answer.answers = records;
                served_stale = stale;
                if stale {
                    bump(
                        &mut self.stats.stale_answers,
                        &self.telemetry,
                        &metrics::STALE_ANSWERS,
                        now.as_millis(),
                    );
                    self.telemetry
                        .span_event(span, now.as_millis(), EventKind::CacheStale, |f| {
                            f.push("qname", qname.shared_str());
                        });
                }
            }
            Resolved::Negative(rcode) => {
                answer.header.rcode = rcode;
            }
            Resolved::Fail => {
                answer.header.rcode = Rcode::ServFail;
                bump(
                    &mut self.stats.servfails,
                    &self.telemetry,
                    &metrics::SERVFAILS,
                    now.as_millis(),
                );
                self.telemetry
                    .span_event(span, now.as_millis(), EventKind::ServFail, |f| {
                        f.push("qname", qname.shared_str());
                    });
            }
        }
        let cache_hit = ctx.upstream == 0 && answer.header.rcode != Rcode::ServFail;
        if cache_hit {
            bump(
                &mut self.stats.cache_hits,
                &self.telemetry,
                &metrics::CACHE_HITS,
                now.as_millis(),
            );
        }
        if self.telemetry.is_enabled() {
            // The hit/miss verdict travels as the `cache_hit` field on
            // span_end (below) rather than as a separate span event —
            // one arena record fewer on the warm hot path.
            self.telemetry
                .observe_keyed(&metrics::LATENCY_MS, ctx.elapsed.as_millis());
            // Same observation into the quantile sketch: the log2
            // histogram keeps its coarse buckets for dashboards, the
            // sketch reports p50/p90/p99/p999 at 1.6 % relative error.
            // Bucketed at query start time, so the timeline shows the
            // latency distribution of the queries *issued* in a window.
            self.telemetry.sketch_keyed_at(
                &metrics::LATENCY_SKETCH_MS,
                ctx.elapsed.as_millis(),
                now.as_millis(),
            );
            for r in &answer.answers {
                self.telemetry
                    .observe_keyed(&metrics::ANSWER_TTL_S, r.ttl.as_secs() as u64);
            }
            if !cache_hit {
                // The hit counter has a registry-and-series twin; a
                // misses series makes the timeline hit-rate curve a
                // pure per-bucket ratio without needing totals.
                self.telemetry
                    .count_keyed_at(&metrics::CACHE_MISSES, 1, now.as_millis());
                // A warm hit cannot change the entry count (inserts,
                // and therefore evictions, only happen on the upstream
                // path), so the gauge only needs refreshing on misses.
                self.telemetry.gauge_keyed_at(
                    &metrics::CACHE_ENTRIES,
                    self.cache.len() as f64,
                    now.as_millis(),
                );
            }
        }
        // Prefetch: a cache hit on a nearly-expired entry triggers a
        // background refresh. Its latency is NOT charged to this
        // client (real prefetchers refresh asynchronously), but its
        // upstream queries are real and counted in the stats.
        //
        // The client span stays open until every child span it caused
        // has closed (the refresh can outlive the client answer), so
        // the causal tree keeps children nested inside their parent's
        // sim-time interval; `elapsed_ms` still carries the
        // client-observed latency.
        let mut span_close_ms = (now + ctx.elapsed).as_millis();
        if self.policy.prefetch && cache_hit {
            if let Some(freshness) = self.cache.freshness(qname, qtype, now) {
                if freshness < 0.10 {
                    bump(
                        &mut self.stats.prefetches,
                        &self.telemetry,
                        &metrics::PREFETCHES,
                        now.as_millis(),
                    );
                    self.telemetry
                        .span_event(span, now.as_millis(), EventKind::Prefetch, |f| {
                            f.push("qname", qname.shared_str());
                        });
                    // The background refresh is its own span, caused by
                    // the client query: `sdig --explain` shows it as a
                    // child branch instead of folding its upstream
                    // exchanges into the client's timeline.
                    let refresh_span =
                        self.telemetry
                            .child_span_start(span, now.as_millis(), |_, f| {
                                f.push("cause", Value::literal("prefetch"));
                                f.push("qname", qname.shared_str());
                                f.push("qtype", Value::literal(qtype.as_str()));
                            });
                    let mut refresh_ctx = Ctx {
                        elapsed: SimDuration::ZERO,
                        upstream: 0,
                        in_flight: HashSet::new(),
                        refresh_target: Some((qname.clone(), qtype)),
                        span: refresh_span,
                    };
                    let _ = self.resolve_inner(qname, qtype, now, net, &mut refresh_ctx, 0);
                    let refresh_end_ms = (now + refresh_ctx.elapsed).as_millis();
                    span_close_ms = span_close_ms.max(refresh_end_ms);
                    self.telemetry.span_end(refresh_span, refresh_end_ms, |f| {
                        f.push("upstream_queries", refresh_ctx.upstream as u64);
                        f.push("elapsed_ms", refresh_ctx.elapsed.as_millis());
                    });
                }
            }
        }
        self.telemetry.span_end(span, span_close_ms, |f| {
            f.push("rcode", Value::literal(answer.header.rcode.as_str()));
            f.push("cache_hit", cache_hit);
            f.push("stale", served_stale);
            f.push("upstream_queries", ctx.upstream as u64);
            f.push("elapsed_ms", ctx.elapsed.as_millis());
        });
        ResolutionOutcome {
            answer,
            elapsed: ctx.elapsed,
            cache_hit,
            served_stale,
            upstream_queries: ctx.upstream,
        }
    }

    // -----------------------------------------------------------------
    // Internal resolution
    // -----------------------------------------------------------------

    fn resolve_inner(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
        net: &mut Network,
        ctx: &mut Ctx,
        depth: usize,
    ) -> Resolved {
        if depth > MAX_DEPTH {
            return Resolved::Fail;
        }
        if let Some(rcode) = self.cache.get_negative(qname, qtype, now) {
            if rcode == Rcode::ServFail {
                // A cached upstream failure (RFC 2308 §7): answer
                // without touching the dead servers — stale data if
                // serve-stale allows, SERVFAIL otherwise.
                return self.fail_or_stale(qname, qtype, now);
            }
            return Resolved::Negative(rcode);
        }
        let bypass = ctx.refresh_target.as_ref() == Some(&(qname.clone(), qtype));
        if !bypass {
            if let Some(records) = self.answer_from_cache(qname, qtype, now) {
                return Resolved::Answer {
                    records,
                    stale: false,
                };
            }
        }

        let mut current = qname.clone();
        let mut chain: Vec<Record> = Vec::new();
        // QNAME minimisation state: per zone, how many labels of the
        // target we have already exposed (RFC 7816 extends by one
        // label after an empty-non-terminal NODATA).
        let mut exposed: HashMap<Name, usize> = HashMap::new();

        for _ in 0..MAX_ITERATIONS {
            // A previous referral may have made the answer available
            // from cache (parent-centric resolvers answer NS questions
            // straight from referral data).
            let bypass = ctx.refresh_target.as_ref() == Some(&(current.clone(), qtype));
            if let Some(mut records) = if bypass {
                None
            } else {
                self.answer_from_cache(&current, qtype, now)
            } {
                let mut all = chain;
                all.append(&mut records);
                return Resolved::Answer {
                    records: all,
                    stale: false,
                };
            }

            let Some((zone, candidates)) = self.server_candidates(&current, now, net, ctx, depth)
            else {
                return self.fail_or_stale(qname, qtype, now);
            };

            // RFC 7816: against this zone's servers, ask only for the
            // next label (as NS) until the remaining name is exposed.
            let min_target = if self.policy.qname_minimization {
                let floor = exposed
                    .get(&zone)
                    .copied()
                    .unwrap_or(zone.label_count() + 1);
                if current.label_count() > floor {
                    current
                        .ancestry()
                        .into_iter()
                        .find(|a| a.label_count() == floor)
                } else {
                    None
                }
            } else {
                None
            };
            let (send_name, send_type) = match &min_target {
                Some(mt) => (mt.clone(), RecordType::NS),
                None => (current.clone(), qtype),
            };

            let Some((response, from_root, server)) =
                self.query_candidates(&zone, &candidates, &send_name, send_type, now, net, ctx)
            else {
                return self.fail_or_stale(qname, qtype, now);
            };

            // Cache everything the response taught us, with ranks by
            // section and AA status, and provenance from this exchange.
            self.ingest(&response, now, from_root, &zone, server);

            if response.is_referral() {
                self.telemetry
                    .span_event(ctx.span, now.as_millis(), EventKind::Referral, |f| {
                        let cut = response
                            .authorities
                            .iter()
                            .find(|r| r.record_type() == RecordType::NS)
                            .map(|r| Value::from(r.name.shared_str()))
                            .unwrap_or_else(|| Value::literal(""));
                        f.push("zone", zone.shared_str());
                        f.push("cut", cut);
                    });
            }

            if let Some(mt) = &min_target {
                if response.header.rcode == Rcode::NxDomain {
                    // RFC 8020: NXDOMAIN on an ancestor means the whole
                    // subtree (and thus the full question) is absent.
                    self.cache_negative_from(&response, &current, qtype, now);
                    return Resolved::Negative(Rcode::NxDomain);
                }
                if response.is_referral() {
                    // A cut at or below the minimised label: the
                    // referral was ingested; descend normally.
                    continue;
                }
                if response.header.authoritative && response.answers.is_empty() {
                    // Empty non-terminal: expose one more label to the
                    // same zone next round (RFC 7816 §3).
                    exposed.insert(zone.clone(), mt.label_count() + 1);
                    continue;
                }
                if response.header.authoritative {
                    // The zone answered NS for the minimised name (it
                    // serves both sides of the cut); the NS set is
                    // cached — continue descending from it.
                    continue;
                }
                return Resolved::Fail;
            }

            if response.header.rcode == Rcode::NxDomain {
                self.cache_negative_from(&response, &current, qtype, now);
                return Resolved::Negative(Rcode::NxDomain);
            }

            if response.header.authoritative && !response.answers.is_empty() {
                // CNAME? chase within the loop.
                let direct: Vec<Record> = response
                    .answers
                    .iter()
                    .filter(|r| r.name == current && r.record_type() == qtype)
                    .cloned()
                    .collect();
                if !direct.is_empty() {
                    if self.policy.validate_dnssec
                        && !self.validate_answer(&current, qtype, &direct, &response, now)
                    {
                        self.telemetry.span_event(
                            ctx.span,
                            now.as_millis(),
                            EventKind::ValidationFailure,
                            |f| f.push("qname", current.shared_str()),
                        );
                        return Resolved::Fail; // bogus data ⇒ SERVFAIL
                    }
                    // Prefer the cache view (clamped, coherent TTLs);
                    // fall back to raw records for uncacheable TTL-0.
                    ctx.refresh_target = None; // fresh copy fetched
                    let mut records =
                        self.answer_from_cache(&current, qtype, now)
                            .unwrap_or_else(|| {
                                direct
                                    .iter()
                                    .map(|r| r.with_ttl(self.policy.clamp_ttl(r.ttl)))
                                    .collect()
                            });
                    let mut all = chain;
                    all.append(&mut records);
                    return Resolved::Answer {
                        records: all,
                        stale: false,
                    };
                }
                if qtype != RecordType::CNAME {
                    if let Some(cname) = response
                        .answers
                        .iter()
                        .find(|r| r.name == current && r.record_type() == RecordType::CNAME)
                    {
                        chain.push(cname.with_ttl(self.policy.clamp_ttl(cname.ttl)));
                        if chain.len() > MAX_DEPTH {
                            return Resolved::Fail;
                        }
                        if let RData::Cname(target) = &cname.rdata {
                            current = target.clone();
                            continue;
                        }
                    }
                }
                // Authoritative answer that does not answer the
                // question (misconfigured server): give up.
                return Resolved::Fail;
            }

            if response.is_referral() {
                let cut = response
                    .authorities
                    .iter()
                    .find(|r| r.record_type() == RecordType::NS)
                    .map(|r| r.name.clone())
                    .expect("is_referral guarantees an NS record");
                // Lame referral: the cut must be deeper than the zone
                // we asked, or we would loop forever.
                if !cut.is_strict_subdomain_of(&zone) && cut != current {
                    return Resolved::Fail;
                }
                continue;
            }

            if response.header.authoritative && response.answers.is_empty() {
                // NODATA.
                self.cache_negative_from(&response, &current, qtype, now);
                return Resolved::Negative(Rcode::NoError);
            }

            // Anything else (REFUSED, FORMERR from every server…).
            return Resolved::Fail;
        }
        Resolved::Fail
    }

    /// DNSSEC validation of a direct answer: if the response carries an
    /// RRSIG covering the answered type, it must verify (RFC 4035 §5).
    /// Absence of a signature means an unsigned (insecure) zone, which
    /// a validator accepts — there is no DS chain in the simulation.
    fn validate_answer(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        direct: &[Record],
        response: &Message,
        now: SimTime,
    ) -> bool {
        let sig = response.answers.iter().find(|r| {
            r.name == *qname
                && matches!(&r.rdata, RData::Rrsig { type_covered, .. } if *type_covered == qtype)
        });
        let Some(sig) = sig else {
            return true; // insecure zone
        };
        let rdatas: Vec<RData> = direct.iter().map(|r| r.rdata.clone()).collect();
        if dnsttl_wire::verify_rrset(qname, qtype, &rdatas, sig) {
            bump(
                &mut self.stats.validations,
                &self.telemetry,
                &metrics::VALIDATIONS,
                now.as_millis(),
            );
            true
        } else {
            bump(
                &mut self.stats.validation_failures,
                &self.telemetry,
                &metrics::VALIDATION_FAILURES,
                now.as_millis(),
            );
            false
        }
    }

    /// When every server failed: serve stale if policy allows.
    fn fail_or_stale(&mut self, qname: &Name, qtype: RecordType, now: SimTime) -> Resolved {
        if let Some(window) = self.policy.serve_stale {
            if let Some(hit) = self.cache.get_stale(qname, qtype, now, window) {
                return Resolved::Answer {
                    records: hit.rrset.to_records(),
                    stale: hit.stale,
                };
            }
        }
        Resolved::Fail
    }

    /// Can the cache answer this question for a *client*?
    ///
    /// Child-centric resolvers only answer from answer-ranked data —
    /// they re-query the child for anything learned via referrals.
    /// Parent-centric resolvers happily answer from referral data, which
    /// is how the paper's §3.2 sees 172 800 s TTLs for `.uy` NS.
    /// CNAME chains are followed through the cache.
    fn answer_from_cache(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
    ) -> Option<Vec<Record>> {
        let min_rank = if self.policy.validate_dnssec {
            // A validator can only answer with data it could verify:
            // glue and referral data are unsigned, so only
            // answer-ranked entries qualify (§2: DNSSEC forces
            // child-centric behaviour).
            Credibility::AuthAnswer
        } else {
            match self.policy.centricity {
                Centricity::ChildCentric => Credibility::AuthAnswer,
                Centricity::ParentCentric => Credibility::ReferralAdditional,
            }
        };
        let mut records = Vec::new();
        let mut current = qname.clone();
        for _ in 0..=MAX_DEPTH {
            if let Some(hit) = self.cache.get(&current, qtype, now) {
                if hit.rank >= min_rank {
                    records.extend(hit.rrset.to_records());
                    return Some(records);
                }
            }
            if qtype != RecordType::CNAME {
                if let Some(hit) = self.cache.get(&current, RecordType::CNAME, now) {
                    if hit.rank >= min_rank {
                        records.extend(hit.rrset.to_records());
                        if let Some(RData::Cname(target)) = hit.rrset.rdatas.first() {
                            current = target.clone();
                            continue;
                        }
                    }
                }
            }
            return None;
        }
        None
    }

    /// Finds the deepest zone with usable name servers for `name`.
    ///
    /// Returns the zone apex and `(ns_name, address)` candidates. Walks
    /// from the name toward the root; zones whose servers have no
    /// resolvable address are skipped (their parent will re-supply
    /// glue). Root hints are the backstop.
    fn server_candidates(
        &mut self,
        name: &Name,
        now: SimTime,
        net: &mut Network,
        ctx: &mut Ctx,
        depth: usize,
    ) -> Option<(Name, Vec<(Name, IpAddr)>)> {
        let mut ancestry = name.ancestry();
        ancestry.reverse(); // deepest first
        for zone in ancestry {
            if zone.is_root() {
                break;
            }
            let Some(ns_hit) = self.cache.get(&zone, RecordType::NS, now) else {
                continue;
            };
            let mut candidates = Vec::new();
            let ns_targets: Vec<Name> = ns_hit
                .rrset
                .rdatas
                .iter()
                .filter_map(|rd| match rd {
                    RData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            for target in &ns_targets {
                if let Some(addr) = self.cached_address(target, now) {
                    candidates.push((target.clone(), addr));
                }
            }
            if candidates.is_empty() && depth < MAX_DEPTH {
                // Out-of-bailiwick servers: resolve their addresses via
                // separate queries (in-bailiwick targets would need this
                // zone itself — skip them, the parent's glue covers it).
                for target in &ns_targets {
                    if target.is_subdomain_of(&zone) {
                        continue;
                    }
                    let key = (target.clone(), RecordType::A);
                    if ctx.in_flight.contains(&key) {
                        continue;
                    }
                    ctx.in_flight.insert(key.clone());
                    // The address lookup is a separate resolution the
                    // client query caused: give it a child span so the
                    // causal tree shows the NS chase as its own branch.
                    let parent_span = ctx.span;
                    let elapsed_before = ctx.elapsed.as_millis();
                    let sub_span = self.telemetry.child_span_start(
                        parent_span,
                        (now + ctx.elapsed).as_millis(),
                        |_, f| {
                            f.push("cause", Value::literal("ns_lookup"));
                            f.push("qname", target.shared_str());
                            f.push("qtype", Value::literal(RecordType::A.as_str()));
                        },
                    );
                    ctx.span = sub_span;
                    let sub = self.resolve_inner(target, RecordType::A, now, net, ctx, depth + 1);
                    ctx.span = parent_span;
                    self.telemetry
                        .span_end(sub_span, (now + ctx.elapsed).as_millis(), |f| {
                            f.push("elapsed_ms", ctx.elapsed.as_millis() - elapsed_before);
                        });
                    ctx.in_flight.remove(&key);
                    if let Resolved::Answer { records, .. } = sub {
                        for r in records {
                            if let RData::A(a) = r.rdata {
                                candidates.push((target.clone(), IpAddr::V4(a)));
                            }
                        }
                    }
                    if !candidates.is_empty() {
                        break;
                    }
                }
            }
            if !candidates.is_empty() {
                self.order_candidates(&zone, &mut candidates, net);
                return Some((zone, candidates));
            }
        }
        // Root hints.
        let mut candidates: Vec<(Name, IpAddr)> = self
            .roots
            .iter()
            .map(|h| (h.ns_name.clone(), h.addr))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let root = Name::root();
        self.order_candidates(&root, &mut candidates, net);
        Some((root, candidates))
    }

    /// A cached address for a server name, any rank (glue is fine for
    /// iteration — RFC 2181's ranking constrains answers to clients,
    /// not the resolver's own navigation).
    fn cached_address(&self, target: &Name, now: SimTime) -> Option<IpAddr> {
        if let Some(hit) = self.cache.get(target, RecordType::A, now) {
            for rd in &hit.rrset.rdatas {
                if let RData::A(a) = rd {
                    return Some(IpAddr::V4(*a));
                }
            }
        }
        if let Some(hit) = self.cache.get(target, RecordType::AAAA, now) {
            for rd in &hit.rrset.rdatas {
                if let RData::Aaaa(a) = rd {
                    return Some(IpAddr::V6(*a));
                }
            }
        }
        None
    }

    /// Rotates candidates (resolvers rotate across authoritatives,
    /// paper §3.4 / [37]); sticky resolvers pin their remembered server
    /// to the front instead.
    fn order_candidates(
        &mut self,
        zone: &Name,
        candidates: &mut Vec<(Name, IpAddr)>,
        _net: &Network,
    ) {
        self.rng.shuffle(candidates);
        if self.policy.sticky {
            if let Some(&addr) = self.sticky_server.get(zone) {
                if let Some(pos) = candidates.iter().position(|(_, a)| *a == addr) {
                    candidates.swap(0, pos);
                } else {
                    // The sticky address may no longer be in the NS set
                    // (renumbered); stay loyal to it anyway.
                    candidates.insert(0, (zone.clone(), addr));
                }
            }
        }
    }

    /// Queries candidates in order with retries; returns the first
    /// useful response and whether it came from a root server.
    #[allow(clippy::too_many_arguments)]
    fn query_candidates(
        &mut self,
        zone: &Name,
        candidates: &[(Name, IpAddr)],
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
        net: &mut Network,
        ctx: &mut Ctx,
    ) -> Option<(Message, bool, IpAddr)> {
        let from_root = zone.is_root();
        for (_, addr) in candidates {
            if self.in_backoff(*addr, now, ctx) {
                continue;
            }
            let mut responded = false;
            for attempt in 0..=self.policy.retries {
                if attempt > 0 {
                    self.telemetry
                        .span_event(ctx.span, now.as_millis(), EventKind::Retry, |f| {
                            f.push("server", *addr);
                            f.push("attempt", attempt as u64);
                        });
                }
                let query = Message::iterative_query(self.next_msg_id(), qname.clone(), qtype);
                let mut outcome =
                    net.exchange(self.region, self.tag, *addr, &query, now, &mut self.rng);
                ctx.elapsed = ctx.elapsed + outcome.elapsed();
                // RFC 1035 §4.2.1: a truncated UDP response is retried
                // over TCP (extra handshake RTT, counted above).
                if let ExchangeOutcome::Response { message, .. } = &outcome {
                    if message.header.truncated {
                        bump(
                            &mut self.stats.tcp_fallbacks,
                            &self.telemetry,
                            &metrics::TCP_FALLBACKS,
                            now.as_millis(),
                        );
                        self.telemetry.span_event(
                            ctx.span,
                            now.as_millis(),
                            EventKind::TcFallback,
                            |f| f.push("server", *addr),
                        );
                        ctx.upstream += 1;
                        bump(
                            &mut self.stats.upstream_queries,
                            &self.telemetry,
                            &metrics::UPSTREAM_QUERIES,
                            now.as_millis(),
                        );
                        let retry =
                            Message::iterative_query(self.next_msg_id(), qname.clone(), qtype);
                        outcome = net.exchange_with(
                            self.region,
                            self.tag,
                            *addr,
                            &retry,
                            now,
                            &mut self.rng,
                            Transport::Tcp,
                        );
                        ctx.elapsed = ctx.elapsed + outcome.elapsed();
                    }
                }
                match outcome {
                    ExchangeOutcome::Response { message, .. } => {
                        responded = true;
                        self.backoff.remove(addr);
                        ctx.upstream += 1;
                        bump(
                            &mut self.stats.upstream_queries,
                            &self.telemetry,
                            &metrics::UPSTREAM_QUERIES,
                            now.as_millis(),
                        );
                        match message.header.rcode {
                            Rcode::NoError | Rcode::NxDomain => {
                                if self.policy.sticky {
                                    self.sticky_server.insert(zone.clone(), *addr);
                                }
                                return Some((message, from_root, *addr));
                            }
                            // REFUSED / SERVFAIL / …: try the next server.
                            _ => break,
                        }
                    }
                    ExchangeOutcome::Timeout { .. } => {
                        bump(
                            &mut self.stats.timeouts,
                            &self.telemetry,
                            &metrics::TIMEOUTS,
                            now.as_millis(),
                        );
                        self.telemetry.span_event(
                            ctx.span,
                            now.as_millis(),
                            EventKind::Timeout,
                            |f| f.push("server", *addr),
                        );
                        // Retry the same server up to `retries` times.
                    }
                }
            }
            if !responded {
                self.record_server_failure(*addr, now);
            }
        }
        None
    }

    /// Whether `addr` is inside its exponential-backoff window; the
    /// skip is journalled so a trace shows which servers a resolution
    /// declined to probe.
    fn in_backoff(&mut self, addr: IpAddr, now: SimTime, ctx: &Ctx) -> bool {
        if self.policy.server_backoff.is_none() {
            return false;
        }
        let Some(b) = self.backoff.get(&addr) else {
            return false;
        };
        if now >= b.until {
            return false;
        }
        let until_ms = b.until.as_millis();
        bump(
            &mut self.stats.backoff_skips,
            &self.telemetry,
            &metrics::BACKOFF_SKIPS,
            now.as_millis(),
        );
        self.telemetry
            .span_event(ctx.span, now.as_millis(), EventKind::Backoff, |f| {
                f.push("server", addr);
                f.push("until_ms", until_ms);
            });
        true
    }

    /// Marks `addr` dead for an exponentially growing interval (base ×
    /// 2^(failures−1), capped at 64× base) after it timed out on every
    /// retry of one exchange episode.
    fn record_server_failure(&mut self, addr: IpAddr, now: SimTime) {
        let Some(base) = self.policy.server_backoff else {
            return;
        };
        let entry = self.backoff.entry(addr).or_insert(BackoffState {
            failures: 0,
            until: SimTime::ZERO,
        });
        entry.failures = entry.failures.saturating_add(1);
        let exponent = (entry.failures - 1).min(6);
        let delay = SimDuration::from_secs(base.as_secs() as u64).saturating_mul(1 << exponent);
        entry.until = now + delay;
    }

    /// Stores every RRset of a response into the cache with the rank
    /// its section and the AA bit dictate, carrying provenance: the
    /// response's message id as the installing transaction, the
    /// responding `server`, and each RRset's bailiwick class relative
    /// to `zone` (the cut the server was answering for — owner names
    /// under it are in-bailiwick, everything else is the
    /// out-of-bailiwick data of §4.2). `from_root` pins data for
    /// RFC 7706 local-root policies.
    fn ingest(
        &mut self,
        response: &Message,
        now: SimTime,
        from_root: bool,
        zone: &Name,
        server: IpAddr,
    ) {
        let pinned = from_root && self.policy.local_root;
        let aa = response.header.authoritative;
        let txn = response.header.id as u64;
        for (records, rank) in [
            (
                &response.answers,
                if aa {
                    Credibility::AuthAnswer
                } else {
                    Credibility::ReferralAuthority
                },
            ),
            (
                &response.authorities,
                if aa {
                    Credibility::AuthAuthority
                } else {
                    Credibility::ReferralAuthority
                },
            ),
            (&response.additionals, Credibility::ReferralAdditional),
        ] {
            for rrset in group_rrsets(records) {
                if rrset.rtype == RecordType::SOA {
                    continue; // negative-caching SOAs are handled separately
                }
                let bailiwick = if rrset.name.is_subdomain_of(zone) {
                    BailiwickClass::In
                } else {
                    BailiwickClass::Out
                };
                self.cache.store_with(
                    rrset,
                    rank,
                    now,
                    &self.policy,
                    pinned,
                    StoreContext {
                        txn,
                        server: Some(server),
                        bailiwick,
                    },
                );
            }
        }
    }

    /// Extracts the SOA from a negative response and populates the
    /// negative cache.
    fn cache_negative_from(
        &mut self,
        response: &Message,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
    ) {
        let Some(soa) = response
            .authorities
            .iter()
            .find(|r| r.record_type() == RecordType::SOA)
        else {
            return;
        };
        let RData::Soa(data) = &soa.rdata else { return };
        let rcode = response.header.rcode;
        self.cache.store_negative(
            qname.clone(),
            qtype,
            rcode,
            Ttl::from_secs(data.minimum),
            soa.ttl,
            now,
            &self.policy,
        );
    }
}

/// Increments a [`ResolverStats`] cell and mirrors it onto the metrics
/// registry and the sim-time series (bucketed at `t_ms`): the struct
/// stays the zero-cost compatibility view, the registry is the
/// exported series, and the time series resolves the same counter over
/// simulated time.
fn bump(field: &mut u64, telemetry: &Telemetry, metric: &MetricKey, t_ms: u64) {
    *field += 1;
    telemetry.count_keyed_at(metric, 1, t_ms);
}

/// Pre-hashed keys for every resolver metric series, so the per-query
/// path never re-hashes a metric name.
mod metrics {
    use dnsttl_telemetry::MetricKey;

    pub const FAULT_FLUSHES: MetricKey = MetricKey::new("resolver_fault_flushes");
    pub const CLIENT_QUERIES: MetricKey = MetricKey::new("resolver_client_queries");
    pub const CACHE_EXPIRIES: MetricKey = MetricKey::new("resolver_cache_expiries");
    pub const FAILURE_CACHES: MetricKey = MetricKey::new("resolver_failure_caches");
    pub const STALE_ANSWERS: MetricKey = MetricKey::new("resolver_stale_answers");
    pub const SERVFAILS: MetricKey = MetricKey::new("resolver_servfails");
    pub const CACHE_HITS: MetricKey = MetricKey::new("resolver_cache_hits");
    pub const CACHE_MISSES: MetricKey = MetricKey::new("resolver_cache_misses");
    pub const LATENCY_MS: MetricKey = MetricKey::new("resolver_latency_ms");
    pub const LATENCY_SKETCH_MS: MetricKey = MetricKey::new("resolver_latency_quantiles_ms");
    pub const ANSWER_TTL_S: MetricKey = MetricKey::new("resolver_answer_ttl_s");
    pub const CACHE_ENTRIES: MetricKey = MetricKey::new("resolver_cache_entries");
    pub const PREFETCHES: MetricKey = MetricKey::new("resolver_prefetches");
    pub const VALIDATIONS: MetricKey = MetricKey::new("resolver_validations");
    pub const VALIDATION_FAILURES: MetricKey = MetricKey::new("resolver_validation_failures");
    pub const TCP_FALLBACKS: MetricKey = MetricKey::new("resolver_tcp_fallbacks");
    pub const UPSTREAM_QUERIES: MetricKey = MetricKey::new("resolver_upstream_queries");
    pub const TIMEOUTS: MetricKey = MetricKey::new("resolver_timeouts");
    pub const BACKOFF_SKIPS: MetricKey = MetricKey::new("resolver_backoff_skips");
}

/// Groups a section's records into RRsets (name+type runs).
fn group_rrsets(records: &[Record]) -> Vec<RRset> {
    let mut order: Vec<(Name, RecordType)> = Vec::new();
    let mut groups: HashMap<(Name, RecordType), Vec<Record>> = HashMap::new();
    for r in records {
        let key = (r.name.clone(), r.record_type());
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(r.clone());
    }
    order
        .into_iter()
        .filter_map(|key| RRset::from_records(&groups[&key]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
    use dnsttl_netsim::{LatencyModel, ServiceHandle};
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    /// Builds the paper's Table 1 world: a root delegating `.cl` with
    /// two-day glue, and `a.nic.cl` authoritative for `.cl` with
    /// 3600 s NS / 43200 s A TTLs.
    fn build_cl_world() -> (Network, Vec<RootHint>) {
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("k.root-servers.net").with_zone(
            ZoneBuilder::new(".")
                .ns("cl", "a.nic.cl", Ttl::TWO_DAYS)
                .a("a.nic.cl", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("a.nic.cl").with_zone(
            ZoneBuilder::new("cl")
                .ns("cl", "a.nic.cl", Ttl::HOUR)
                .a("a.nic.cl", "198.51.100.2", Ttl::from_secs(43_200))
                .a("www.example.cl", "203.0.113.80", Ttl::from_secs(600))
                .build(),
        );
        let root: ServiceHandle = Rc::new(RefCell::new(root));
        let child: ServiceHandle = Rc::new(RefCell::new(child));
        net.register(ip(1), Region::Eu, root);
        net.register(ip(2), Region::Eu, child);
        let hints = vec![RootHint {
            ns_name: n("k.root-servers.net"),
            addr: ip(1),
        }];
        (net, hints)
    }

    fn resolver(policy: ResolverPolicy, hints: Vec<RootHint>) -> RecursiveResolver {
        RecursiveResolver::new("test", policy, Region::Eu, 7, hints, SimRng::seed_from(1))
    }

    #[test]
    fn full_iteration_resolves_leaf_a_record() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("www.example.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(out.answer.answers.len(), 1);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 600);
        assert!(!out.cache_hit);
        // Two upstream queries: root referral + child answer.
        assert_eq!(out.upstream_queries, 2);
        assert_eq!(out.elapsed, SimDuration::from_millis(20));
    }

    #[test]
    fn second_query_is_a_cache_hit_with_decremented_ttl() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::default(), hints);
        r.resolve(&n("www.example.cl"), RecordType::A, SimTime::ZERO, &mut net);
        let out = r.resolve(
            &n("www.example.cl"),
            RecordType::A,
            SimTime::from_secs(100),
            &mut net,
        );
        assert!(out.cache_hit);
        assert_eq!(out.upstream_queries, 0);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 500);
        assert_eq!(out.elapsed, SimDuration::ZERO);
    }

    #[test]
    fn child_centric_ns_query_returns_child_ttl() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("cl"), RecordType::NS, SimTime::ZERO, &mut net);
        // Child-centric: must have queried a.nic.cl and gotten 3600 s.
        assert_eq!(out.answer.answers[0].ttl, Ttl::HOUR);
    }

    #[test]
    fn parent_centric_ns_query_returns_parent_ttl() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::parent_centric(), hints);
        let out = r.resolve(&n("cl"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.answers[0].ttl, Ttl::TWO_DAYS);
        // Only the root was queried; the child never saw us.
        assert_eq!(out.upstream_queries, 1);
    }

    #[test]
    fn parent_centric_address_query_returns_glue_ttl() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::parent_centric(), hints);
        let out = r.resolve(&n("a.nic.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.answers[0].ttl, Ttl::TWO_DAYS);
    }

    #[test]
    fn child_centric_address_query_returns_child_ttl() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("a.nic.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 43_200);
    }

    #[test]
    fn nxdomain_is_negatively_cached() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("missing.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NxDomain);
        let out2 = r.resolve(
            &n("missing.cl"),
            RecordType::A,
            SimTime::from_secs(10),
            &mut net,
        );
        assert_eq!(out2.answer.header.rcode, Rcode::NxDomain);
        assert!(out2.cache_hit);
    }

    #[test]
    fn ttl_cap_flows_through_to_client_answer() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::google_like(), hints);
        let out = r.resolve(&n("a.nic.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 21_599);
    }

    #[test]
    fn servfail_when_child_offline_for_child_centric() {
        let (mut net, hints) = build_cl_world();
        net.set_online(ip(2), false);
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("cl"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::ServFail);
        assert!(out.elapsed >= net.query_timeout, "timeouts must cost time");
    }

    #[test]
    fn parent_centric_survives_child_offline() {
        // The paper's zurrundedu-offline observation (§4.4): OpenDNS
        // (parent-centric) answers NS queries with the child dead.
        let (mut net, hints) = build_cl_world();
        net.set_online(ip(2), false);
        let mut r = resolver(ResolverPolicy::parent_centric(), hints);
        let out = r.resolve(&n("cl"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
    }

    #[test]
    fn serve_stale_bridges_outage() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::serve_stale_like(), hints);
        r.resolve(&n("www.example.cl"), RecordType::A, SimTime::ZERO, &mut net);
        // The record expires at 600 s; kill every server and ask again.
        net.set_online(ip(1), false);
        net.set_online(ip(2), false);
        let out = r.resolve(
            &n("www.example.cl"),
            RecordType::A,
            SimTime::from_secs(700),
            &mut net,
        );
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert!(out.served_stale);
        assert_eq!(out.answer.answers[0].ttl.as_secs(), 30);
    }

    #[test]
    fn local_root_pins_tld_data_at_full_ttl() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::opendns_like(), hints);
        let out = r.resolve(&n("cl"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.answers[0].ttl, Ttl::TWO_DAYS);
        // Much later, still the *full* parent TTL: the mirrored root
        // zone never decays (§3.2 sees constant 172800 s from OpenDNS).
        let out = r.resolve(
            &n("cl"),
            RecordType::NS,
            SimTime::from_secs(400_000),
            &mut net,
        );
        assert_eq!(out.answer.answers[0].ttl, Ttl::TWO_DAYS);
    }

    #[test]
    fn cname_chain_is_followed_and_returned() {
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("ns.example").with_zone(
            ZoneBuilder::new("example")
                .ns("example", "ns.example", Ttl::HOUR)
                .cname("www.example", "web.example", Ttl::HOUR)
                .a("web.example", "203.0.113.80", Ttl::HOUR)
                .build(),
        );
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Eu, Rc::new(RefCell::new(child)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("www.example"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        let types: Vec<RecordType> = out.answer.answers.iter().map(|r| r.record_type()).collect();
        assert!(types.contains(&RecordType::CNAME));
        assert!(types.contains(&RecordType::A));
    }

    #[test]
    fn out_of_bailiwick_server_address_is_sub_resolved() {
        // example.org served by ns1.example.com: resolving anything in
        // example.org first requires resolving ns1.example.com.
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("org", "ns.org", Ttl::TWO_DAYS)
                .a("ns.org", "198.51.100.2", Ttl::TWO_DAYS)
                .ns("com", "ns.com", Ttl::TWO_DAYS)
                .a("ns.com", "198.51.100.3", Ttl::TWO_DAYS)
                .build(),
        );
        let org = AuthoritativeServer::new("ns.org").with_zone(
            ZoneBuilder::new("org")
                .ns("org", "ns.org", Ttl::DAY)
                .ns("example.org", "ns1.example.com", Ttl::HOUR)
                .build(),
        );
        let com = AuthoritativeServer::new("ns.com").with_zone(
            ZoneBuilder::new("com")
                .ns("com", "ns.com", Ttl::DAY)
                .ns("example.com", "ns1.example.com", Ttl::HOUR)
                .a("ns1.example.com", "198.51.100.4", Ttl::from_secs(7_200))
                .build(),
        );
        let excom = AuthoritativeServer::new("ns1.example.com")
            .with_zone(
                ZoneBuilder::new("example.com")
                    .ns("example.com", "ns1.example.com", Ttl::HOUR)
                    .a("ns1.example.com", "198.51.100.4", Ttl::from_secs(7_200))
                    .build(),
            )
            .with_zone(
                ZoneBuilder::new("example.org")
                    .ns("example.org", "ns1.example.com", Ttl::HOUR)
                    .a("www.example.org", "203.0.113.80", Ttl::HOUR)
                    .build(),
            );
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Eu, Rc::new(RefCell::new(org)));
        net.register(ip(3), Region::Eu, Rc::new(RefCell::new(com)));
        net.register(ip(4), Region::Eu, Rc::new(RefCell::new(excom)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(
            &n("www.example.org"),
            RecordType::A,
            SimTime::ZERO,
            &mut net,
        );
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(
            out.answer.answers[0].rdata,
            RData::A("203.0.113.80".parse().unwrap())
        );
        // Root, org (referral), then the glue chase (root hit from
        // cache, com referral, example.com answer), then example.org.
        assert!(out.upstream_queries >= 4, "took {}", out.upstream_queries);
    }

    /// A middlebox that rewrites A answers while forwarding to a real
    /// server — the tampering a validator must catch.
    struct Tamperer {
        inner: AuthoritativeServer,
    }

    impl dnsttl_netsim::DnsService for Tamperer {
        fn handle_query(
            &mut self,
            query: &Message,
            client: dnsttl_netsim::ClientId,
            now: SimTime,
        ) -> Message {
            let mut response =
                dnsttl_netsim::DnsService::handle_query(&mut self.inner, query, client, now);
            for r in &mut response.answers {
                if let RData::A(a) = &mut r.rdata {
                    *a = Ipv4Addr::new(6, 6, 6, 6); // hijack
                }
            }
            response
        }
    }

    fn build_signed_world(tamper: bool) -> (Network, Vec<RootHint>) {
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("uy", "a.nic.uy", Ttl::TWO_DAYS)
                .a("a.nic.uy", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let mut uy_zone = ZoneBuilder::new("uy")
            .ns("uy", "a.nic.uy", Ttl::from_secs(300))
            .a("a.nic.uy", "198.51.100.2", Ttl::from_secs(120))
            .a("www.gub.uy", "200.40.30.1", Ttl::HOUR)
            .build();
        dnsttl_auth::sign_zone(&mut uy_zone);
        let child = AuthoritativeServer::new("a.nic.uy").with_zone(uy_zone);
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        if tamper {
            net.register(
                ip(2),
                Region::Eu,
                Rc::new(RefCell::new(Tamperer { inner: child })),
            );
        } else {
            net.register(ip(2), Region::Eu, Rc::new(RefCell::new(child)));
        }
        (
            net,
            vec![RootHint {
                ns_name: n("root"),
                addr: ip(1),
            }],
        )
    }

    #[test]
    fn validator_accepts_signed_answers() {
        let (mut net, hints) = build_signed_world(false);
        let mut r = resolver(ResolverPolicy::validating(), hints);
        let out = r.resolve(&n("www.gub.uy"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert!(r.stats().validations > 0);
        assert_eq!(r.stats().validation_failures, 0);
    }

    #[test]
    fn validator_rejects_tampered_answers() {
        let (mut net, hints) = build_signed_world(true);
        let mut r = resolver(ResolverPolicy::validating(), hints);
        let out = r.resolve(&n("www.gub.uy"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::ServFail, "bogus ⇒ SERVFAIL");
        assert!(r.stats().validation_failures > 0);
    }

    #[test]
    fn non_validator_swallows_tampered_answers() {
        // The contrast: without validation the hijack succeeds.
        let (mut net, hints) = build_signed_world(true);
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("www.gub.uy"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(
            out.answer.answers[0].rdata,
            RData::A(Ipv4Addr::new(6, 6, 6, 6))
        );
    }

    #[test]
    fn validator_is_structurally_child_centric() {
        // Even a parent-centric-configured validator must fetch the
        // child's (signed) data to answer: it sees the child TTL.
        let (mut net, hints) = build_signed_world(false);
        let policy = ResolverPolicy {
            validate_dnssec: true,
            ..ResolverPolicy::parent_centric()
        };
        let mut r = resolver(policy, hints);
        let out = r.resolve(&n("uy"), RecordType::NS, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(
            out.answer.answers[0].ttl.as_secs(),
            300,
            "child TTL, not 172800"
        );
    }

    #[test]
    fn cname_loops_terminate_with_failure() {
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("ns.example").with_zone(
            ZoneBuilder::new("example")
                .ns("example", "ns.example", Ttl::HOUR)
                .cname("a.example", "b.example", Ttl::HOUR)
                .cname("b.example", "a.example", Ttl::HOUR)
                .build(),
        );
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Eu, Rc::new(RefCell::new(child)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("a.example"), RecordType::A, SimTime::ZERO, &mut net);
        // Must terminate (bounded chain) and report failure, not spin.
        assert_eq!(out.answer.header.rcode, Rcode::ServFail);
    }

    #[test]
    fn lame_delegation_fails_cleanly() {
        // The child's server answers with a referral back to the same
        // cut instead of an answer — a lame delegation. The resolver
        // must not loop.
        struct Lame;
        impl dnsttl_netsim::DnsService for Lame {
            fn handle_query(
                &mut self,
                query: &Message,
                _client: dnsttl_netsim::ClientId,
                _now: SimTime,
            ) -> Message {
                let mut r = Message::response_to(query);
                r.header.authoritative = false;
                r.authorities.push(Record::new(
                    n("example"),
                    Ttl::HOUR,
                    RData::Ns(n("ns.example")),
                ));
                r
            }
        }
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Eu, Rc::new(RefCell::new(Lame)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("www.example"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::ServFail);
        assert!(out.upstream_queries <= 8, "bounded work on lameness");
    }

    #[test]
    fn truncated_responses_fall_back_to_tcp() {
        // A zone answering with 40 address records cannot fit in a
        // 512-octet UDP response; the resolver must complete over TCP.
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("big", "ns.big", Ttl::TWO_DAYS)
                .a("ns.big", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let mut big_zone = ZoneBuilder::new("big").ns("big", "ns.big", Ttl::HOUR);
        for i in 0..40u8 {
            big_zone = big_zone.a("www.big", &format!("203.0.113.{i}"), Ttl::HOUR);
        }
        let big = AuthoritativeServer::new("ns.big").with_zone(big_zone.build());
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Eu, Rc::new(RefCell::new(big)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];
        let mut r = resolver(ResolverPolicy::default(), hints);
        let out = r.resolve(&n("www.big"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(out.answer.answers.len(), 40);
        assert!(r.stats().tcp_fallbacks >= 1);
        // Latency accounting: root referral (10) + truncated UDP try
        // (10) + TCP retry with handshake (2 × 10) = 40 ms.
        assert_eq!(out.elapsed, SimDuration::from_millis(40));
    }

    #[test]
    fn qname_minimization_hides_the_full_question_from_parents() {
        // root and .cl must only ever see the next label; only the
        // final authoritative server sees www.example.cl.
        let mut net = Network::new(LatencyModel::constant(10.0));
        let mut root_srv = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("cl", "a.nic.cl", Ttl::TWO_DAYS)
                .a("a.nic.cl", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        root_srv.enable_logging();
        let root_handle = Rc::new(RefCell::new(root_srv));
        let mut cl_srv = AuthoritativeServer::new("a.nic.cl").with_zone(
            ZoneBuilder::new("cl")
                .ns("cl", "a.nic.cl", Ttl::HOUR)
                .a("a.nic.cl", "198.51.100.2", Ttl::from_secs(43_200))
                .ns("example.cl", "ns.example.cl", Ttl::HOUR)
                .a("ns.example.cl", "198.51.100.3", Ttl::HOUR)
                .build(),
        );
        cl_srv.enable_logging();
        let cl_handle = Rc::new(RefCell::new(cl_srv));
        let example = AuthoritativeServer::new("ns.example.cl").with_zone(
            ZoneBuilder::new("example.cl")
                .ns("example.cl", "ns.example.cl", Ttl::HOUR)
                .a("www.example.cl", "203.0.113.80", Ttl::from_secs(600))
                .build(),
        );
        net.register(ip(1), Region::Eu, root_handle.clone());
        net.register(ip(2), Region::Eu, cl_handle.clone());
        net.register(ip(3), Region::Eu, Rc::new(RefCell::new(example)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];

        let mut r = resolver(ResolverPolicy::minimizing(), hints);
        let out = r.resolve(&n("www.example.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(
            out.answer.answers[0].rdata,
            RData::A("203.0.113.80".parse().unwrap())
        );

        // Privacy invariant: the root saw at most one label, .cl at
        // most two.
        for entry in root_handle.borrow().log().entries() {
            assert!(entry.qname.label_count() <= 1, "root saw {}", entry.qname);
        }
        for entry in cl_handle.borrow().log().entries() {
            assert!(entry.qname.label_count() <= 2, ".cl saw {}", entry.qname);
        }
    }

    #[test]
    fn qname_minimization_descends_through_empty_non_terminals() {
        // deep.sub.example has no cut at sub.example (empty
        // non-terminal): a minimised NS probe gets NODATA and the
        // resolver must extend by one label, not give up.
        let mut net = Network::new(LatencyModel::constant(10.0));
        let root = AuthoritativeServer::new("root").with_zone(
            ZoneBuilder::new(".")
                .ns("example", "ns.example", Ttl::TWO_DAYS)
                .a("ns.example", "198.51.100.2", Ttl::TWO_DAYS)
                .build(),
        );
        let child = AuthoritativeServer::new("ns.example").with_zone(
            ZoneBuilder::new("example")
                .ns("example", "ns.example", Ttl::HOUR)
                .a("deep.sub.example", "203.0.113.9", Ttl::HOUR)
                .build(),
        );
        net.register(ip(1), Region::Eu, Rc::new(RefCell::new(root)));
        net.register(ip(2), Region::Eu, Rc::new(RefCell::new(child)));
        let hints = vec![RootHint {
            ns_name: n("root"),
            addr: ip(1),
        }];
        let mut r = resolver(ResolverPolicy::minimizing(), hints);
        let out = r.resolve(
            &n("deep.sub.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut net,
        );
        assert_eq!(out.answer.header.rcode, Rcode::NoError);
        assert_eq!(
            out.answer.answers[0].rdata,
            RData::A("203.0.113.9".parse().unwrap())
        );
    }

    #[test]
    fn qname_minimization_preserves_nxdomain_cut_off() {
        // RFC 8020: an NXDOMAIN on an ancestor short-circuits.
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::minimizing(), hints);
        let out = r.resolve(&n("a.b.nothere.cl"), RecordType::A, SimTime::ZERO, &mut net);
        assert_eq!(out.answer.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn prefetch_eliminates_periodic_misses() {
        // www.example.cl has a 600 s TTL; query every 550 s. Without
        // prefetch, every other query around expiry is a miss; with
        // prefetch, the near-expiry hit refreshes the entry so the
        // *next* query hits too.
        let run = |prefetch: bool| -> (u32, u64) {
            let (mut net, hints) = build_cl_world();
            let policy = ResolverPolicy {
                prefetch,
                ..ResolverPolicy::default()
            };
            let mut r = resolver(policy, hints);
            let mut misses = 0u32;
            for i in 0..12u64 {
                let out = r.resolve(
                    &n("www.example.cl"),
                    RecordType::A,
                    SimTime::from_secs(i * 550),
                    &mut net,
                );
                assert_eq!(out.answer.header.rcode, Rcode::NoError);
                misses += (!out.cache_hit) as u32;
            }
            (misses, r.stats().prefetches)
        };
        let (misses_plain, prefetches_plain) = run(false);
        let (misses_prefetch, prefetches) = run(true);
        assert_eq!(prefetches_plain, 0);
        assert!(prefetches > 0, "prefetches must fire near expiry");
        assert!(
            misses_prefetch < misses_plain,
            "prefetch {misses_prefetch} !< plain {misses_plain}"
        );
    }

    #[test]
    fn prefetch_latency_stays_hidden_from_client() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::prefetching(), hints);
        r.resolve(&n("www.example.cl"), RecordType::A, SimTime::ZERO, &mut net);
        // A hit at 96% of the TTL consumed triggers a refresh but the
        // client still sees a zero-cost cache answer.
        let out = r.resolve(
            &n("www.example.cl"),
            RecordType::A,
            SimTime::from_secs(580),
            &mut net,
        );
        assert!(out.cache_hit);
        assert_eq!(out.elapsed, SimDuration::ZERO);
        assert_eq!(r.stats().prefetches, 1);
        // And the refresh really happened: the entry is fresh again.
        let again = r.resolve(
            &n("www.example.cl"),
            RecordType::A,
            SimTime::from_secs(620),
            &mut net,
        );
        assert!(again.cache_hit, "entry was refreshed in the background");
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, hints) = build_cl_world();
        let mut r = resolver(ResolverPolicy::default(), hints);
        r.resolve(&n("www.example.cl"), RecordType::A, SimTime::ZERO, &mut net);
        r.resolve(
            &n("www.example.cl"),
            RecordType::A,
            SimTime::from_secs(1),
            &mut net,
        );
        let s = r.stats();
        assert_eq!(s.client_queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.upstream_queries, 2);
        assert_eq!(s.servfails, 0);
    }
}
