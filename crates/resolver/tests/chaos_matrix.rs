//! Seeded chaos matrix: {outage, DDoS degradation, flush} ×
//! {serve-stale on/off} × 3 TTLs, from fixed seeds.
//!
//! Each cell drives one recursive resolver through a scripted
//! [`FaultPlan`] and checks the dnsttl-chaos invariants:
//!
//! * **staleness bound** — no answer is ever served past
//!   `original TTL + max-stale` of the last fresh answer (RFC 8767);
//! * **ledger conservation** — `inserts == removals + live entries`
//!   still holds when expiry and flushes are injected mid-run;
//! * **TTL monotonicity** — during an outage the user-visible failure
//!   rate strictly decreases as the published TTL grows.

use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{FaultPlan, LatencyModel, Network, Region, ServiceHandle, SimRng, SimTime};
use dnsttl_resolver::{RecursiveResolver, RootHint};
use dnsttl_wire::{Name, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::net::IpAddr;
use std::rc::Rc;

const ROOT_ADDR: &str = "198.41.0.4";
const CHILD_ADDR: &str = "192.0.2.53";
/// Fault window shared by the outage and degradation scenarios.
const FAULT_FROM_S: u64 = 2_700;
const FAULT_UNTIL_S: u64 = 6_300;
/// One query per minute until 25 min past the fault window.
const QUERY_GAP_S: u64 = 60;
const HORIZON_S: u64 = 7_800;
/// The serve-stale window configured on the hardened arm.
const MAX_STALE: Ttl = Ttl::from_secs(7_200);

#[derive(Clone, Copy, Debug, PartialEq)]
enum Scenario {
    Outage,
    Ddos,
    Flush,
}

impl Scenario {
    fn plan(self) -> FaultPlan {
        let child: IpAddr = CHILD_ADDR.parse().unwrap();
        let from = SimTime::from_secs(FAULT_FROM_S);
        let until = SimTime::from_secs(FAULT_UNTIL_S);
        match self {
            Scenario::Outage => FaultPlan::new().outage(child, from, until),
            Scenario::Ddos => FaultPlan::new().degrade(Some(child), from, until, 0.9, 4.0),
            Scenario::Flush => FaultPlan::new()
                .flush_at(SimTime::from_secs(1_000))
                .flush_at(SimTime::from_secs(3_000))
                .flush_at(SimTime::from_secs(5_000)),
        }
    }
}

fn world(ttl: Ttl) -> (Network, Vec<RootHint>) {
    let root_addr: IpAddr = ROOT_ADDR.parse().unwrap();
    let child_addr: IpAddr = CHILD_ADDR.parse().unwrap();
    let root = AuthoritativeServer::new("root").with_zone(
        ZoneBuilder::new(".")
            .ns("example", "ns.example", Ttl::TWO_DAYS)
            .a("ns.example", CHILD_ADDR, Ttl::TWO_DAYS)
            .build(),
    );
    let child = AuthoritativeServer::new("ns.example").with_zone(
        ZoneBuilder::new("example")
            .ns("example", "ns.example", ttl)
            .a("ns.example", CHILD_ADDR, ttl)
            .a("www.example", "203.0.113.1", ttl)
            .build(),
    );
    let mut net = Network::new(LatencyModel::constant(5.0));
    let root: ServiceHandle = Rc::new(RefCell::new(root));
    let child: ServiceHandle = Rc::new(RefCell::new(child));
    net.register(root_addr, Region::Eu, root);
    net.register(child_addr, Region::Eu, child);
    let hints = vec![RootHint {
        ns_name: Name::parse("root").unwrap(),
        addr: root_addr,
    }];
    (net, hints)
}

fn policy(serve_stale: bool) -> ResolverPolicy {
    if serve_stale {
        ResolverPolicy {
            serve_stale: Some(MAX_STALE),
            ..ResolverPolicy::hardened()
        }
    } else {
        ResolverPolicy::default()
    }
}

struct CellOutcome {
    in_window_queries: u64,
    in_window_failures: u64,
}

impl CellOutcome {
    fn rate(&self) -> f64 {
        self.in_window_failures as f64 / self.in_window_queries.max(1) as f64
    }
}

/// Runs one cell of the matrix and checks the per-query staleness
/// bound plus the ledger conservation law.
fn run_cell(scenario: Scenario, ttl: Ttl, serve_stale: bool, seed: u64) -> CellOutcome {
    let (mut net, hints) = world(ttl);
    net.set_faults(scenario.plan());
    let mut resolver = RecursiveResolver::new(
        "chaos",
        policy(serve_stale),
        Region::Eu,
        7,
        hints,
        SimRng::seed_from(seed),
    );
    resolver.enable_cache_ledger();
    let qname = Name::parse("www.example").unwrap();

    let mut out_cell = CellOutcome {
        in_window_queries: 0,
        in_window_failures: 0,
    };
    let mut last_fresh: Option<SimTime> = None;
    let mut flushed_upto = SimTime::ZERO;
    let mut t = 0u64;
    while t < HORIZON_S {
        let now = SimTime::from_secs(t);
        if net.fault_plan().flushes_between(flushed_upto, now) > 0 {
            resolver.apply_flush(now);
        }
        flushed_upto = now;
        let out = resolver.resolve(&qname, RecordType::A, now, &mut net);
        let ok = out.answer.header.rcode == Rcode::NoError && !out.answer.answers.is_empty();
        if out.served_stale {
            // RFC 8767: a stale answer's effective age can never exceed
            // the record's TTL + max-stale. `last_fresh` is at or after
            // the store time, so this bound is implied by the cache's.
            let anchor = last_fresh.expect("stale answers need a prior fresh one");
            let age = now.secs_since(anchor);
            assert!(
                age <= ttl.as_secs() as u64 + MAX_STALE.as_secs() as u64,
                "{scenario:?} ttl={} stale={serve_stale}: stale answer at +{age}s \
                 exceeds ttl+max-stale",
                ttl.as_secs(),
            );
        } else if ok {
            last_fresh = Some(now);
        }
        let in_window = (FAULT_FROM_S..FAULT_UNTIL_S).contains(&t);
        if in_window {
            out_cell.in_window_queries += 1;
            out_cell.in_window_failures += (!ok) as u64;
        }
        t += QUERY_GAP_S;
    }

    // Conservation law: every insert is still live or attributed to
    // exactly one removal cause, flushes and injected expiry included.
    let stats = resolver.cache().stats();
    let live = resolver.cache().len() as u64;
    assert_eq!(
        stats.inserts,
        stats.removals() + live,
        "{scenario:?} ttl={} stale={serve_stale}: conservation violated \
         (inserts={} removals={} live={live})",
        ttl.as_secs(),
        stats.inserts,
        stats.removals(),
    );
    out_cell
}

const TTLS: [u32; 3] = [60, 3_600, 86_400];

#[test]
fn outage_failure_rate_strictly_decreases_with_ttl() {
    for (stale, seed) in [(false, 0xC4A0_0001u64), (true, 0xC4A0_0002)] {
        let rates: Vec<f64> = TTLS
            .iter()
            .map(|&ttl| run_cell(Scenario::Outage, Ttl::from_secs(ttl), stale, seed).rate())
            .collect();
        if stale {
            // Serve-stale bridges the whole outage at every TTL.
            for (ttl, rate) in TTLS.iter().zip(&rates) {
                assert_eq!(
                    *rate, 0.0,
                    "serve-stale should erase outage failures at ttl={ttl}"
                );
            }
        } else {
            assert!(
                rates[0] > rates[1] && rates[1] > rates[2],
                "failure rate must strictly decrease with TTL, got {rates:?}"
            );
            assert_eq!(rates[2], 0.0, "a 1-day TTL rides out a 1-hour outage");
        }
    }
}

#[test]
fn ddos_degradation_failures_shrink_with_ttl_and_vanish_with_stale() {
    let seed = 0xC4A0_0003u64;
    let off: Vec<f64> = TTLS
        .iter()
        .map(|&ttl| run_cell(Scenario::Ddos, Ttl::from_secs(ttl), false, seed).rate())
        .collect();
    assert!(
        off[0] >= off[1] && off[1] >= off[2] && off[0] > off[2],
        "degradation failures must shrink with TTL, got {off:?}"
    );
    let on: Vec<f64> = TTLS
        .iter()
        .map(|&ttl| run_cell(Scenario::Ddos, Ttl::from_secs(ttl), true, seed).rate())
        .collect();
    for (ttl, (rate_on, rate_off)) in TTLS.iter().zip(on.iter().zip(&off)) {
        assert!(
            rate_on <= rate_off,
            "serve-stale must not increase failures (ttl={ttl}: {rate_on} > {rate_off})"
        );
    }
}

#[test]
fn scheduled_flushes_keep_the_ledger_conserved() {
    // No outage: flushes force refetches but never user-visible
    // failures, and `run_cell` asserts conservation after the clears.
    for (stale, seed) in [(false, 0xC4A0_0004u64), (true, 0xC4A0_0005)] {
        for ttl in TTLS {
            let cell = run_cell(Scenario::Flush, Ttl::from_secs(ttl), stale, seed);
            assert_eq!(
                cell.in_window_failures, 0,
                "flushes alone must not fail queries (ttl={ttl} stale={stale})"
            );
        }
    }
}

#[test]
fn chaos_cells_are_seed_deterministic() {
    let a = run_cell(Scenario::Ddos, Ttl::from_secs(60), true, 0xC4A0_0006);
    let b = run_cell(Scenario::Ddos, Ttl::from_secs(60), true, 0xC4A0_0006);
    assert_eq!(a.in_window_queries, b.in_window_queries);
    assert_eq!(a.in_window_failures, b.in_window_failures);
}
