//! Chaos matrix scenarios against the concurrent shared-cache backend,
//! under contention.
//!
//! `chaos_matrix.rs` proves the outage / DDoS-degradation / flush
//! invariants on the sequential engine. This suite re-runs the same
//! scripted fault windows with the resolver's policy selecting the
//! shared backend, while noise threads free-run against the *same*
//! cache (via [`RecursiveResolver::shared_cache`]) on a disjoint name
//! set. The claims:
//!
//! * the resolver's per-query outcomes — rcode, answer presence,
//!   staleness — are identical with and without the noise threads: on
//!   an unbounded cache, contention on other keys must never change
//!   what a query is answered with;
//! * the RFC 8767 staleness bound holds under contention exactly as it
//!   does sequentially;
//! * after the noise threads join, the combined stats (resolver ops +
//!   noise ops + flush clears) still obey `inserts == removals + live`.

use dnsttl_auth::{AuthoritativeServer, ZoneBuilder};
use dnsttl_core::{CacheBackendChoice, ResolverPolicy};
use dnsttl_netsim::{
    FaultPlan, LatencyModel, Network, Region, ServiceHandle, SimDuration, SimRng, SimTime,
};
use dnsttl_resolver::{RecursiveResolver, RootHint};
use dnsttl_wire::{Name, RData, RRset, Rcode, RecordType, Ttl};
use std::cell::RefCell;
use std::net::IpAddr;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ROOT_ADDR: &str = "198.41.0.4";
const CHILD_ADDR: &str = "192.0.2.53";
const FAULT_FROM_S: u64 = 2_700;
const FAULT_UNTIL_S: u64 = 6_300;
const QUERY_GAP_S: u64 = 60;
const HORIZON_S: u64 = 7_800;
const MAX_STALE: Ttl = Ttl::from_secs(7_200);
const NOISE_THREADS: usize = 4;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Scenario {
    Outage,
    Ddos,
    Flush,
}

impl Scenario {
    fn plan(self) -> FaultPlan {
        let child: IpAddr = CHILD_ADDR.parse().unwrap();
        let from = SimTime::from_secs(FAULT_FROM_S);
        let until = SimTime::from_secs(FAULT_UNTIL_S);
        match self {
            Scenario::Outage => FaultPlan::new().outage(child, from, until),
            Scenario::Ddos => FaultPlan::new().degrade(Some(child), from, until, 0.9, 4.0),
            Scenario::Flush => FaultPlan::new()
                .flush_at(SimTime::from_secs(1_000))
                .flush_at(SimTime::from_secs(3_000))
                .flush_at(SimTime::from_secs(5_000)),
        }
    }
}

fn world(ttl: Ttl) -> (Network, Vec<RootHint>) {
    let root_addr: IpAddr = ROOT_ADDR.parse().unwrap();
    let child_addr: IpAddr = CHILD_ADDR.parse().unwrap();
    let root = AuthoritativeServer::new("root").with_zone(
        ZoneBuilder::new(".")
            .ns("example", "ns.example", Ttl::TWO_DAYS)
            .a("ns.example", CHILD_ADDR, Ttl::TWO_DAYS)
            .build(),
    );
    let child = AuthoritativeServer::new("ns.example").with_zone(
        ZoneBuilder::new("example")
            .ns("example", "ns.example", ttl)
            .a("ns.example", CHILD_ADDR, ttl)
            .a("www.example", "203.0.113.1", ttl)
            .build(),
    );
    let mut net = Network::new(LatencyModel::constant(5.0));
    let root: ServiceHandle = Rc::new(RefCell::new(root));
    let child: ServiceHandle = Rc::new(RefCell::new(child));
    net.register(root_addr, Region::Eu, root);
    net.register(child_addr, Region::Eu, child);
    let hints = vec![RootHint {
        ns_name: Name::parse("root").unwrap(),
        addr: root_addr,
    }];
    (net, hints)
}

fn shared_policy(serve_stale: bool) -> ResolverPolicy {
    let base = if serve_stale {
        ResolverPolicy {
            serve_stale: Some(MAX_STALE),
            ..ResolverPolicy::hardened()
        }
    } else {
        ResolverPolicy::default()
    };
    ResolverPolicy {
        cache_backend: CacheBackendChoice::Shared,
        cache_segments: 8,
        ..base
    }
}

/// One resolver query's observable outcome, for exact comparison
/// between the quiet and contended runs.
type QueryTrace = Vec<(bool, bool)>; // (answered ok, served stale)

struct CellOutcome {
    trace: QueryTrace,
    in_window_failures: u64,
}

/// Runs one chaos cell on the shared backend. With `noise: true`,
/// NOISE_THREADS free-running threads hammer the resolver's own cache
/// on `*.noise.example` names (stores, stale reads, failure caching,
/// invalidations) for the whole scenario.
fn run_cell(
    scenario: Scenario,
    ttl: Ttl,
    serve_stale: bool,
    seed: u64,
    noise: bool,
) -> CellOutcome {
    let (mut net, hints) = world(ttl);
    net.set_faults(scenario.plan());
    let mut resolver = RecursiveResolver::new(
        "shared-chaos",
        shared_policy(serve_stale),
        Region::Eu,
        7,
        hints,
        SimRng::seed_from(seed),
    );
    resolver.enable_cache_ledger();
    let cache = resolver
        .shared_cache()
        .expect("policy selected the shared backend");
    let qname = Name::parse("www.example").unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let trace = std::thread::scope(|scope| {
        if noise {
            for t in 0..NOISE_THREADS as u64 {
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut rng = SimRng::seed_from(0x4015E ^ t);
                    let policy = ResolverPolicy::default();
                    let mut now = SimTime::ZERO;
                    while !stop.load(Ordering::Relaxed) {
                        now += SimDuration::from_secs(rng.below(30));
                        let host = rng.below(64);
                        let name = Name::parse(&format!("n{host}.noise.example")).unwrap();
                        match rng.below(10) {
                            0..=4 => {
                                let rr = RRset {
                                    name,
                                    rtype: RecordType::A,
                                    ttl: Ttl::from_secs(1 + rng.below(120) as u32),
                                    rdatas: vec![RData::A(std::net::Ipv4Addr::new(
                                        203, 0, 113, host as u8,
                                    ))],
                                };
                                cache.store(
                                    rr,
                                    dnsttl_resolver::Credibility::AuthAnswer,
                                    now,
                                    &policy,
                                    false,
                                );
                            }
                            5..=6 => {
                                let _ = cache.get(&name, RecordType::A, now);
                            }
                            7 => {
                                let _ = cache.get_stale(&name, RecordType::A, now, Ttl::DAY);
                            }
                            8 => {
                                cache.store_failure(name, RecordType::A, Ttl::from_secs(30), now);
                            }
                            _ => {
                                cache.invalidate(&name, RecordType::A, now);
                            }
                        }
                    }
                });
            }
        }

        // The scripted scenario runs on this thread, exactly as the
        // sequential chaos matrix does.
        let mut trace = CellOutcome {
            trace: Vec::new(),
            in_window_failures: 0,
        };
        let mut last_fresh: Option<SimTime> = None;
        let mut flushed_upto = SimTime::ZERO;
        let mut t = 0u64;
        while t < HORIZON_S {
            let now = SimTime::from_secs(t);
            if net.fault_plan().flushes_between(flushed_upto, now) > 0 {
                resolver.apply_flush(now);
            }
            flushed_upto = now;
            let out = resolver.resolve(&qname, RecordType::A, now, &mut net);
            let ok = out.answer.header.rcode == Rcode::NoError && !out.answer.answers.is_empty();
            if out.served_stale {
                let anchor = last_fresh.expect("stale answers need a prior fresh one");
                let age = now.secs_since(anchor);
                assert!(
                    age <= ttl.as_secs() as u64 + MAX_STALE.as_secs() as u64,
                    "{scenario:?} ttl={} noise={noise}: stale answer at +{age}s \
                     exceeds ttl+max-stale",
                    ttl.as_secs(),
                );
            } else if ok {
                last_fresh = Some(now);
            }
            trace.trace.push((ok, out.served_stale));
            if (FAULT_FROM_S..FAULT_UNTIL_S).contains(&t) {
                trace.in_window_failures += (!ok) as u64;
            }
            t += QUERY_GAP_S;
        }
        stop.store(true, Ordering::Relaxed);
        trace
    });

    // Conservation over the *combined* op stream: resolver queries,
    // flush clears, and every noise thread's stores/invalidations.
    let stats = cache.stats();
    let live = cache.len() as u64;
    assert_eq!(
        stats.inserts,
        stats.removals() + live,
        "{scenario:?} ttl={} noise={noise}: conservation violated \
         (inserts={} removals={} live={live})",
        ttl.as_secs(),
        stats.inserts,
        stats.removals(),
    );

    trace
}

const TTLS: [u32; 3] = [60, 3_600, 86_400];

/// Contention must be outcome-invisible: every scenario × TTL ×
/// serve-stale cell answers each of its 130 queries identically with
/// and without 4 noise threads on the same cache.
#[test]
fn noise_threads_never_change_scenario_outcomes() {
    for scenario in [Scenario::Outage, Scenario::Ddos, Scenario::Flush] {
        for serve_stale in [false, true] {
            for ttl in TTLS {
                let seed = 0x5C40_0000 + ttl as u64;
                let quiet = run_cell(scenario, Ttl::from_secs(ttl), serve_stale, seed, false);
                let noisy = run_cell(scenario, Ttl::from_secs(ttl), serve_stale, seed, true);
                assert_eq!(
                    quiet.trace, noisy.trace,
                    "{scenario:?} ttl={ttl} stale={serve_stale}: noise threads \
                     changed a query outcome"
                );
            }
        }
    }
}

/// The TTL-resilience finding survives the backend swap: during an
/// outage window, failures strictly decrease with TTL on the shared
/// backend under contention, and serve-stale erases them.
#[test]
fn outage_ttl_monotonicity_holds_on_shared_backend_under_contention() {
    let seed = 0x5C40_1111u64;
    let rates: Vec<u64> = TTLS
        .iter()
        .map(|&ttl| {
            run_cell(Scenario::Outage, Ttl::from_secs(ttl), false, seed, true).in_window_failures
        })
        .collect();
    assert!(
        rates[0] > rates[1] && rates[1] > rates[2],
        "failures must strictly decrease with TTL, got {rates:?}"
    );
    assert_eq!(rates[2], 0, "a 1-day TTL rides out a 1-hour outage");
    for &ttl in &TTLS {
        let stale = run_cell(Scenario::Outage, Ttl::from_secs(ttl), true, seed, true);
        assert_eq!(
            stale.in_window_failures, 0,
            "serve-stale should erase outage failures at ttl={ttl}"
        );
    }
}
