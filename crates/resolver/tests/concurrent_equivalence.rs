//! Differential harness: the concurrent shared-cache backend against
//! the sequential oracle.
//!
//! [`SharedCache`] routes every key to one of S mutex-guarded segments
//! by the interned name's case-folded hash, and each segment runs the
//! *same* `CacheCore` state machine the sequential [`Cache`] runs. That
//! gives a composable oracle: a shared cache with S segments of
//! capacity `ceil(C/S)` must behave exactly like S independent
//! sequential caches of capacity `ceil(C/S)` fed each segment's
//! subsequence of the workload. This suite replays identical seeded
//! 20k-step workloads through both and asserts:
//!
//! * **served answers** — every get / get_stale / get_negative returns
//!   the same answer (TTL, rank, staleness, data) from both engines;
//! * **victim sequences** — per segment, the shared backend evicts the
//!   identical victim sequence the oracle does. The tie-break is the
//!   documented core order: victim = unpinned entry minimising
//!   `(expires_at, canonical name order, type code)` within the
//!   segment (probation tier first when SLRU admission is on; these
//!   runs keep admission off so the oracle order applies verbatim);
//! * **ledgers** — each segment's replayed op journal is byte-identical
//!   JSONL to the oracle cache's journal, and the summed stats obey
//!   `inserts == removals + live`;
//! * **threads** — under free-running threads owning disjoint segment
//!   sets ({1, 2, 8} threads), per-segment op subsequences are
//!   preserved, so every one of the above still holds exactly,
//!   whatever the cross-segment interleaving. With threads racing on
//!   *overlapping* keys the answers become schedule-dependent, but the
//!   conservation law and journal/stats agreement must survive.

use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{SimDuration, SimRng, SimTime};
use dnsttl_resolver::{
    BailiwickClass, Cache, CachedAnswer, Credibility, SharedCache, StoreContext,
};
use dnsttl_telemetry::CacheOp;
use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};

const SEGMENTS: usize = 8;
const CAPACITY: usize = 64;
const STEPS: usize = 20_000;
const SEEDS: [u64; 4] = [3, 17, 2024, 4242];
const THREADS: [usize; 3] = [1, 2, 8];
const MAX_STALE: Ttl = Ttl::from_secs(3_600);

/// One pre-generated workload step. Time is baked into the op, so the
/// same op sequence can be replayed in any execution order.
#[derive(Debug, Clone)]
enum Op {
    Store {
        name: Name,
        rtype: RecordType,
        ttl: u32,
        data: u8,
        rank: Credibility,
        txn: u64,
    },
    Get {
        name: Name,
        rtype: RecordType,
    },
    GetStale {
        name: Name,
        rtype: RecordType,
    },
    StoreFailure {
        name: Name,
        rtype: RecordType,
        ttl: u32,
    },
    GetNegative {
        name: Name,
        rtype: RecordType,
    },
    Invalidate {
        name: Name,
        rtype: RecordType,
    },
}

impl Op {
    fn name(&self) -> &Name {
        match self {
            Op::Store { name, .. }
            | Op::Get { name, .. }
            | Op::GetStale { name, .. }
            | Op::StoreFailure { name, .. }
            | Op::GetNegative { name, .. }
            | Op::Invalidate { name, .. } => name,
        }
    }
}

fn rrset(name: &Name, rtype: RecordType, ttl: u32, data: u8) -> RRset {
    let rdata = match rtype {
        RecordType::A => RData::A(std::net::Ipv4Addr::new(192, 0, 2, data)),
        RecordType::NS => RData::Ns(Name::parse(&format!("ns{data}.example")).unwrap()),
        other => panic!("workload does not use {other:?}"),
    };
    RRset {
        name: name.clone(),
        rtype,
        ttl: Ttl::from_secs(ttl),
        rdatas: vec![rdata],
    }
}

/// A canonical description of a served answer, for equality checks
/// across engines.
fn describe(answer: Option<CachedAnswer>) -> String {
    match answer {
        None => "miss".to_string(),
        Some(a) => format!(
            "{}|{:?}|{}|{}|{}",
            a.rrset.ttl.as_secs(),
            a.rank,
            a.stale,
            a.rrset
                .rdatas
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(","),
            a.provenance.effective_ttl.as_secs(),
        ),
    }
}

/// The seeded op stream: mostly stores and reads over a name pool with
/// case variety (the canonical-order tie-break must actually fire),
/// plus serve-stale reads, failure caching, and invalidations. Each op
/// carries its own timestamp.
fn generate_workload(seed: u64, names: &[Name]) -> Vec<(SimTime, Op)> {
    let mut rng = SimRng::seed_from(0xC0CC_0000 ^ seed);
    let rtypes = [RecordType::A, RecordType::NS];
    let ttls = [30u32, 60, 60, 300, 300, 3_600];
    let mut now = SimTime::ZERO;
    let mut ops = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        if rng.below(5) == 0 {
            now += SimDuration::from_secs(1 + rng.below(90));
        }
        let name = names[rng.below(names.len() as u64) as usize].clone();
        let rtype = rtypes[rng.below(2) as usize];
        let op = match rng.below(100) {
            0..=44 => Op::Store {
                name,
                rtype,
                ttl: ttls[rng.below(ttls.len() as u64) as usize],
                data: rng.below(4) as u8 + 1,
                rank: if rng.chance(0.7) {
                    Credibility::AuthAnswer
                } else {
                    Credibility::ReferralAdditional
                },
                txn: step as u64 + 1,
            },
            45..=74 => Op::Get { name, rtype },
            75..=84 => Op::GetStale { name, rtype },
            85..=89 => Op::StoreFailure {
                name,
                rtype,
                ttl: 30,
            },
            90..=94 => Op::GetNegative { name, rtype },
            _ => Op::Invalidate { name, rtype },
        };
        ops.push((now, op));
    }
    ops
}

fn name_pool() -> Vec<Name> {
    (0..96)
        .map(|i| {
            let s = match i % 4 {
                0 => format!("h{i:02}.pool.example"),
                1 => format!("H{i:02}.Pool.Example"),
                2 => format!("deep.h{i:02}.sub.example"),
                _ => format!("h{i:02}.other-zone.test"),
            };
            Name::parse(&s).unwrap()
        })
        .collect()
}

/// Applies one op to any engine through closures, returning the
/// canonical answer string for read ops (empty for writes).
fn apply_shared(cache: &SharedCache, now: SimTime, op: &Op, policy: &ResolverPolicy) -> String {
    match op {
        Op::Store {
            name,
            rtype,
            ttl,
            data,
            rank,
            txn,
        } => {
            let ctx = StoreContext {
                txn: *txn,
                server: Some("198.51.100.7".parse().unwrap()),
                bailiwick: BailiwickClass::In,
            };
            cache.store_with(
                rrset(name, *rtype, *ttl, *data),
                *rank,
                now,
                policy,
                false,
                ctx,
            );
            String::new()
        }
        Op::Get { name, rtype } => describe(cache.get(name, *rtype, now)),
        Op::GetStale { name, rtype } => describe(cache.get_stale(name, *rtype, now, MAX_STALE)),
        Op::StoreFailure { name, rtype, ttl } => {
            cache.store_failure(name.clone(), *rtype, Ttl::from_secs(*ttl), now);
            String::new()
        }
        Op::GetNegative { name, rtype } => {
            format!("{:?}", cache.get_negative(name, *rtype, now))
        }
        Op::Invalidate { name, rtype } => format!("{}", cache.invalidate(name, *rtype, now)),
    }
}

fn apply_sequential(cache: &mut Cache, now: SimTime, op: &Op, policy: &ResolverPolicy) -> String {
    match op {
        Op::Store {
            name,
            rtype,
            ttl,
            data,
            rank,
            txn,
        } => {
            let ctx = StoreContext {
                txn: *txn,
                server: Some("198.51.100.7".parse().unwrap()),
                bailiwick: BailiwickClass::In,
            };
            cache.store_with(
                rrset(name, *rtype, *ttl, *data),
                *rank,
                now,
                policy,
                false,
                ctx,
            );
            String::new()
        }
        Op::Get { name, rtype } => describe(cache.get(name, *rtype, now)),
        Op::GetStale { name, rtype } => describe(cache.get_stale(name, *rtype, now, MAX_STALE)),
        Op::StoreFailure { name, rtype, ttl } => {
            cache.store_failure(name.clone(), *rtype, Ttl::from_secs(*ttl), now);
            String::new()
        }
        Op::GetNegative { name, rtype } => {
            format!("{:?}", cache.get_negative(name, *rtype, now))
        }
        Op::Invalidate { name, rtype } => format!("{}", cache.invalidate(name, *rtype, now)),
    }
}

/// The composable oracle: one sequential cache per segment, fed that
/// segment's op subsequence in order. Returns the caches plus the
/// per-op answers.
fn run_oracle(
    workload: &[(SimTime, Op)],
    route: impl Fn(&Name) -> usize,
    policy: &ResolverPolicy,
) -> (Vec<Cache>, Vec<String>) {
    let per_segment = CAPACITY.div_ceil(SEGMENTS);
    let mut caches: Vec<Cache> = (0..SEGMENTS)
        .map(|_| {
            let mut c = Cache::with_capacity(per_segment);
            c.enable_ledger();
            c
        })
        .collect();
    let mut answers = Vec::with_capacity(workload.len());
    for (now, op) in workload {
        let seg = route(op.name());
        answers.push(apply_sequential(&mut caches[seg], *now, op, policy));
    }
    (caches, answers)
}

/// Full-state agreement between the shared backend and its per-segment
/// oracle: victim sequences (via byte-identical per-segment journals),
/// stats sums, conservation, and final presence under the read API.
fn assert_engines_agree(shared: &SharedCache, oracle: &[Cache], names: &[Name], ctx: &str) {
    assert_eq!(shared.ledger_dropped(), 0, "{ctx}: op log wrapped; grow it");
    let mut oracle_stats = dnsttl_resolver::CacheStats::default();
    let mut oracle_live = 0usize;
    for (seg, cache) in oracle.iter().enumerate() {
        let seq_journal = cache
            .with_ledger(|l| {
                assert_eq!(l.journal().dropped(), 0, "{ctx}: oracle journal wrapped");
                l.journal().to_jsonl()
            })
            .expect("oracle ledger enabled");
        let shared_journal = shared
            .segment_ledger(seg)
            .expect("shared ledger enabled")
            .journal()
            .to_jsonl();
        assert_eq!(
            shared_journal, seq_journal,
            "{ctx}: segment {seg} journal diverged from the sequential oracle"
        );
        assert_eq!(
            shared.segment_stats(seg),
            cache.stats(),
            "{ctx}: segment {seg} stats diverged"
        );
        assert_eq!(
            shared.segment_len(seg),
            cache.len(),
            "{ctx}: segment {seg} live-entry count diverged"
        );
        oracle_stats.absorb(&cache.stats());
        oracle_live += cache.len();
    }
    let stats = shared.stats();
    assert_eq!(stats, oracle_stats, "{ctx}: summed stats diverged");
    assert_eq!(
        stats.inserts,
        stats.removals() + oracle_live as u64,
        "{ctx}: conservation law violated"
    );
    assert!(
        stats.evictions > 0,
        "{ctx}: workload never filled a segment — not a useful run"
    );

    // Final presence through the public read API, at a probe time past
    // the workload (both engines see the same clock).
    let probe = SimTime::from_secs(1 << 30);
    for name in names {
        for rtype in [RecordType::A, RecordType::NS] {
            let seg = shared.segment_of(name);
            let in_shared = shared.expired_since(name, rtype, probe).is_some()
                || shared.get(name, rtype, probe).is_some();
            let in_oracle = oracle[seg].expired_since(name, rtype, probe).is_some()
                || oracle[seg].get(name, rtype, probe).is_some();
            assert_eq!(
                in_shared, in_oracle,
                "{ctx}: presence of ({name}, {rtype:?}) diverged"
            );
        }
    }
}

/// Part A: deterministic schedule. One thread drives the shared
/// backend through the whole op stream; every single answer must match
/// the oracle's, step by step.
#[test]
fn deterministic_schedule_matches_oracle_answer_for_answer() {
    let policy = ResolverPolicy::default();
    let names = name_pool();
    for seed in SEEDS {
        let workload = generate_workload(seed, &names);
        let shared = SharedCache::with_capacity(SEGMENTS, CAPACITY);
        shared.enable_ledger();
        let (oracle, oracle_answers) = run_oracle(&workload, |n| shared.segment_of(n), &policy);

        for (step, (now, op)) in workload.iter().enumerate() {
            let got = apply_shared(&shared, *now, op, &policy);
            assert_eq!(
                got, oracle_answers[step],
                "seed {seed} step {step}: answers diverged on {op:?}"
            );
        }
        assert_engines_agree(&shared, &oracle, &names, &format!("seed {seed}"));
    }
}

/// Part B: free-running threads over disjoint segment sets. Thread `t`
/// owns segments `s` with `s % threads == t` and replays its segments'
/// op subsequences in order, with no cross-thread synchronisation
/// beyond the segment locks. Per-segment orders are preserved, so the
/// final state, every per-segment victim sequence, every journal, and
/// every answer must still equal the oracle's exactly — for 1, 2, and
/// 8 threads.
#[test]
fn free_running_disjoint_threads_match_oracle() {
    let policy = ResolverPolicy::default();
    let names = name_pool();
    for seed in SEEDS {
        let workload = generate_workload(seed, &names);
        for threads in THREADS {
            let shared = SharedCache::with_capacity(SEGMENTS, CAPACITY);
            shared.enable_ledger();
            let (oracle, oracle_answers) = run_oracle(&workload, |n| shared.segment_of(n), &policy);

            let mut answers: Vec<Vec<(usize, String)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let shared = &shared;
                        let workload = &workload;
                        let policy = &policy;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for (step, (now, op)) in workload.iter().enumerate() {
                                if shared.segment_of(op.name()) % threads != t {
                                    continue;
                                }
                                out.push((step, apply_shared(shared, *now, op, policy)));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let mut merged: Vec<(usize, String)> = answers.drain(..).flatten().collect();
            merged.sort_by_key(|(step, _)| *step);
            assert_eq!(merged.len(), workload.len(), "seed {seed}: ops lost");
            for (step, got) in merged {
                assert_eq!(
                    got, oracle_answers[step],
                    "seed {seed} threads {threads} step {step}: answers diverged"
                );
            }
            assert_engines_agree(
                &shared,
                &oracle,
                &names,
                &format!("seed {seed} threads {threads}"),
            );
        }
    }
}

/// Part C: threads racing on *overlapping* keys. Individual answers
/// are schedule-dependent now, but the invariants must not be: the
/// conservation law holds on the summed stats, the op journal agrees
/// with the counters for every cause, and no op is double-counted.
#[test]
fn racing_threads_preserve_conservation_and_journal_agreement() {
    let policy = ResolverPolicy::default();
    let names = name_pool();
    for seed in SEEDS {
        let shared = SharedCache::with_capacity(SEGMENTS, CAPACITY);
        shared.enable_ledger();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let shared = &shared;
                let names = &names;
                let policy = &policy;
                scope.spawn(move || {
                    // Same name pool for every thread — real contention.
                    let workload = generate_workload(seed ^ (t << 32), names);
                    for (now, op) in workload.iter().take(STEPS / 4) {
                        apply_shared(shared, *now, op, policy);
                    }
                });
            }
        });
        assert_eq!(shared.ledger_dropped(), 0, "seed {seed}: op log wrapped");
        let stats = shared.stats();
        assert_eq!(
            stats.inserts,
            stats.removals() + shared.len() as u64,
            "seed {seed}: conservation law violated under contention"
        );
        assert!(
            stats.hits > 0 && stats.evictions > 0,
            "seed {seed}: {stats:?}"
        );
        shared
            .with_ledger(|ledger| {
                let mut by_op = std::collections::BTreeMap::new();
                for rec in ledger.journal().records() {
                    *by_op.entry(rec.op).or_insert(0u64) += 1;
                }
                for (op, want) in [
                    (CacheOp::Insert, stats.inserts),
                    (CacheOp::Refresh, stats.refreshes),
                    (CacheOp::Overwrite, stats.overwrites),
                    (CacheOp::Expire, stats.expiries),
                    (CacheOp::Evict, stats.evictions),
                    (CacheOp::Invalidate, stats.invalidations),
                ] {
                    assert_eq!(
                        by_op.get(&op).copied().unwrap_or(0),
                        want,
                        "seed {seed}: journal {op:?} count disagrees with stats"
                    );
                }
            })
            .expect("ledger enabled");
    }
}
