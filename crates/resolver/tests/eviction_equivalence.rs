//! Differential harness for the expiry-indexed eviction path.
//!
//! The cache's victim selection used to be a linear scan over the whole
//! entry table; it is now an ordered-index pop (`BTreeSet::pop_first`).
//! This test retains the linear scan as a *shadow oracle* and drives
//! both through 20k-step seeded workloads of stores, clock advances,
//! purges and invalidations, asserting that
//!
//! * the indexed cache evicts the **identical victim sequence** the
//!   linear scan selects — same keys, same order, for every seed — and
//! * after the full workload the surviving key set matches the oracle's
//!   exactly.
//!
//! The oracle implements the victim spec directly: the unpinned entry
//! minimising `(expires_at, name, rtype code)` under canonical `Name`
//! order. Any divergence in the incremental index maintenance
//! (store/refresh moving an expiry, invalidation dropping one, purge
//! popping a prefix) shows up as a sequence mismatch here.

use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{SimDuration, SimRng, SimTime};
use dnsttl_resolver::{Cache, Credibility};
use dnsttl_telemetry::CacheOp;
use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};

const CAPACITY: usize = 32;
const STEPS: usize = 20_000;
const SEEDS: u64 = 4;

/// Shadow cache entry: just enough state to replay victim selection.
#[derive(Debug, Clone)]
struct ShadowEntry {
    name: Name,
    rtype: RecordType,
    expires_at: SimTime,
    pinned: bool,
}

/// The retained linear-scan model of the bounded cache.
#[derive(Debug, Default)]
struct Oracle {
    entries: Vec<ShadowEntry>,
    evicted: Vec<(String, String)>,
}

impl Oracle {
    fn position(&self, name: &Name, rtype: RecordType) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.name == *name && e.rtype == rtype)
    }

    /// The old victim search, verbatim in spirit: scan every entry,
    /// keep the unpinned minimum by `(expires_at, name, type code)`.
    fn linear_scan_victim(&self) -> Option<usize> {
        let mut best: Option<(usize, (SimTime, Name, u16))> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.pinned {
                continue;
            }
            let key = (e.expires_at, e.name.clone(), e.rtype.code());
            if best.as_ref().map(|(_, b)| key < *b).unwrap_or(true) {
                best = Some((i, key));
            }
        }
        best.map(|(i, _)| i)
    }

    fn store(&mut self, name: &Name, rtype: RecordType, ttl: u32, now: SimTime, pinned: bool) {
        let expires_at = now + SimDuration::from_secs(ttl as u64);
        if let Some(i) = self.position(name, rtype) {
            self.entries[i].expires_at = expires_at;
            self.entries[i].pinned = pinned;
            return;
        }
        if self.entries.len() >= CAPACITY {
            if let Some(victim) = self.linear_scan_victim() {
                let v = self.entries.remove(victim);
                self.evicted.push((v.name.to_string(), v.rtype.to_string()));
            }
        }
        self.entries.push(ShadowEntry {
            name: name.clone(),
            rtype,
            expires_at,
            pinned,
        });
    }

    fn invalidate(&mut self, name: &Name, rtype: RecordType) {
        if let Some(i) = self.position(name, rtype) {
            self.entries.remove(i);
        }
    }

    fn purge_expired(&mut self, now: SimTime) {
        self.entries.retain(|e| e.pinned || e.expires_at > now);
    }
}

fn rrset(name: &Name, rtype: RecordType, ttl: u32, variant: u8) -> RRset {
    let rdata = match rtype {
        RecordType::A => RData::A(std::net::Ipv4Addr::new(192, 0, 2, variant)),
        RecordType::NS => {
            RData::Ns(Name::parse(&format!("ns{variant}.example")).expect("valid ns host"))
        }
        other => panic!("workload does not use {other:?}"),
    };
    RRset {
        name: name.clone(),
        rtype,
        ttl: Ttl::from_secs(ttl),
        rdatas: vec![rdata],
    }
}

#[test]
fn indexed_eviction_matches_linear_scan_oracle() {
    let policy = ResolverPolicy::default();
    // A name pool with depth and case variety so the canonical-order
    // tie-break actually gets exercised (equal expiry is common: TTLs
    // are drawn from a small set and the clock moves in whole steps).
    let names: Vec<Name> = (0..48)
        .map(|i| {
            let s = match i % 4 {
                0 => format!("h{i:02}.example"),
                1 => format!("H{i:02}.Example"),
                2 => format!("deep.h{i:02}.sub.example"),
                _ => format!("h{i:02}.other-zone.test"),
            };
            Name::parse(&s).expect("pool name is valid")
        })
        .collect();
    let rtypes = [RecordType::A, RecordType::NS];
    let ttls = [30u32, 60, 60, 300, 300, 3_600];

    for seed in 0..SEEDS {
        let mut rng = SimRng::seed_from(0xE71C_7000 + seed);
        let mut cache = Cache::with_capacity(CAPACITY);
        cache.enable_ledger();
        let mut oracle = Oracle::default();
        let mut now = SimTime::ZERO;

        for step in 0..STEPS {
            match rng.below(10) {
                0..=5 => {
                    let name = &names[rng.below(names.len() as u64) as usize];
                    let rtype = rtypes[rng.below(2) as usize];
                    let ttl = ttls[rng.below(ttls.len() as u64) as usize];
                    let variant = rng.below(4) as u8 + 1;
                    // A small pinned population that must never be
                    // selected by either victim search.
                    let pinned = rng.below(40) == 0;
                    cache.store(
                        rrset(name, rtype, ttl, variant),
                        Credibility::AuthAnswer,
                        now,
                        &policy,
                        pinned,
                    );
                    oracle.store(name, rtype, ttl, now, pinned);
                }
                6..=7 => {
                    now += SimDuration::from_secs(1 + rng.below(90));
                }
                8 => {
                    cache.purge_expired(now);
                    oracle.purge_expired(now);
                }
                _ => {
                    let name = &names[rng.below(names.len() as u64) as usize];
                    let rtype = rtypes[rng.below(2) as usize];
                    cache.invalidate(name, rtype, now);
                    oracle.invalidate(name, rtype);
                }
            }
            assert_eq!(
                cache.len(),
                oracle.entries.len(),
                "seed {seed} step {step}: live entry counts diverged"
            );
        }

        // The ledger journal is the cache's own record of who was
        // evicted, in order. It must not have wrapped, or the
        // comparison below would silently skip early victims.
        let (evicts, dropped) = cache
            .with_ledger(|l| {
                let evicts: Vec<(String, String)> = l
                    .journal()
                    .records()
                    .filter(|r| r.op == CacheOp::Evict)
                    .map(|r| (r.name.to_string(), r.rtype.to_string()))
                    .collect();
                (evicts, l.journal().dropped())
            })
            .expect("ledger enabled");
        assert_eq!(dropped, 0, "seed {seed}: journal wrapped; grow it");
        assert_eq!(
            cache.evictions(),
            oracle.evicted.len() as u64,
            "seed {seed}: eviction counts diverged"
        );
        assert!(
            !oracle.evicted.is_empty(),
            "seed {seed}: workload never filled the cache — not a useful run"
        );
        assert_eq!(
            evicts, oracle.evicted,
            "seed {seed}: indexed eviction picked a different victim sequence \
             than the linear-scan oracle"
        );

        // Full surviving-key-set equivalence, probed through the public
        // read API: an entry is present iff it serves fresh or reports
        // an expiry age (pinned entries always serve).
        for name in &names {
            for rtype in rtypes {
                let in_cache = cache.get(name, rtype, now).is_some()
                    || cache.expired_since(name, rtype, now).is_some();
                let in_oracle = oracle.position(name, rtype).is_some();
                assert_eq!(
                    in_cache, in_oracle,
                    "seed {seed}: presence of ({name}, {rtype:?}) diverged"
                );
            }
        }
    }
}
