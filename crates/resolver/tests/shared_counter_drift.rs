//! Regression pins for removal-cause accounting when `invalidate_zone`
//! and expiry interact — the double-count audit for the concurrent
//! backend.
//!
//! The rule both engines implement: **every resident entry leaving the
//! cache is attributed to exactly one cause.** `invalidate_zone`
//! counts any entry it removes as an *invalidation*, even when the
//! entry's TTL has already run out (an expired-but-resident entry is
//! still resident — only `purge_expired`, or replacement of the
//! expired key, turns it into an *expiry*). When a purge sweep and a
//! zone invalidation race on the shared backend, the per-segment lock
//! decides each entry's winner: whoever removes it first counts it,
//! the loser no longer sees it, and the total removals equal the entry
//! count exactly — no drift, no double count.

use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::SimTime;
use dnsttl_resolver::{Cache, CacheStats, Credibility, SharedCache};
use dnsttl_telemetry::CacheOp;
use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};

const N: usize = 64;
const APEX: &str = "drift.example";

fn rrset(i: usize, ttl: u32) -> RRset {
    RRset {
        name: Name::parse(&format!("h{i:02}.{APEX}")).unwrap(),
        rtype: RecordType::A,
        ttl: Ttl::from_secs(ttl),
        rdatas: vec![RData::A(std::net::Ipv4Addr::new(192, 0, 2, i as u8))],
    }
}

fn fill_expired(shared: &SharedCache, seq: &mut Cache) {
    let policy = ResolverPolicy::default();
    for i in 0..N {
        let rr = rrset(i, 60);
        shared.store(
            rr.clone(),
            Credibility::AuthAnswer,
            SimTime::ZERO,
            &policy,
            false,
        );
        seq.store(rr, Credibility::AuthAnswer, SimTime::ZERO, &policy, false);
    }
}

fn assert_conserved(stats: &CacheStats, live: usize, ctx: &str) {
    assert_eq!(
        stats.inserts,
        stats.removals() + live as u64,
        "{ctx}: inserts={} removals={} live={live}",
        stats.inserts,
        stats.removals(),
    );
}

/// Pin: zone invalidation of expired-but-resident entries counts
/// *invalidations*, never expiries — identically on both backends.
#[test]
fn invalidate_zone_on_expired_residents_counts_invalidations() {
    let shared = SharedCache::new(8);
    let mut seq = Cache::new();
    fill_expired(&shared, &mut seq);
    let apex = Name::parse(APEX).unwrap();
    let later = SimTime::from_secs(600); // all 64 TTLs have run out

    assert_eq!(shared.invalidate_zone(&apex, later), N);
    assert_eq!(seq.invalidate_zone(&apex, later), N);

    for (stats, len, ctx) in [
        (shared.stats(), shared.len(), "shared"),
        (seq.stats(), seq.len(), "sequential"),
    ] {
        assert_eq!(stats.invalidations, N as u64, "{ctx}");
        assert_eq!(stats.expiries, 0, "{ctx}: expiry drift");
        assert_eq!(len, 0, "{ctx}");
        assert_conserved(&stats, len, ctx);
    }
    assert_eq!(shared.stats(), seq.stats());
}

/// Pin: a purge sweep first claims every expired entry as an *expiry*,
/// and the zone invalidation that follows finds nothing — on both
/// backends.
#[test]
fn purge_before_invalidate_zone_counts_expiries() {
    let shared = SharedCache::new(8);
    let mut seq = Cache::new();
    fill_expired(&shared, &mut seq);
    let apex = Name::parse(APEX).unwrap();
    let later = SimTime::from_secs(600);

    shared.purge_expired(later);
    seq.purge_expired(later);
    assert_eq!(shared.invalidate_zone(&apex, later), 0);
    assert_eq!(seq.invalidate_zone(&apex, later), 0);

    for (stats, len, ctx) in [
        (shared.stats(), shared.len(), "shared"),
        (seq.stats(), seq.len(), "sequential"),
    ] {
        assert_eq!(stats.expiries, N as u64, "{ctx}");
        assert_eq!(stats.invalidations, 0, "{ctx}: invalidation drift");
        assert_conserved(&stats, len, ctx);
    }
    assert_eq!(shared.stats(), seq.stats());
}

/// The race itself: one thread purges, one invalidates the zone, over
/// the same 64 expired entries, 32 rounds. Every round, each entry
/// must be counted exactly once — `expiries + invalidations == 64`,
/// zero survivors, conservation intact, and the op journal carries
/// exactly one removal record per entry (no double count, no escape).
#[test]
fn racing_purge_and_invalidate_zone_count_each_entry_exactly_once() {
    let apex = Name::parse(APEX).unwrap();
    let later = SimTime::from_secs(600);

    for round in 0..32 {
        let shared = SharedCache::new(8);
        shared.enable_ledger();
        let mut seq_scratch = Cache::new(); // unused sink for fill
        fill_expired(&shared, &mut seq_scratch);
        let before = shared.stats();
        assert_eq!(before.inserts, N as u64);

        std::thread::scope(|scope| {
            let purge = scope.spawn(|| shared.purge_expired(later));
            let invalidate = scope.spawn(|| shared.invalidate_zone(&apex, later));
            purge.join().unwrap();
            invalidate.join().unwrap();
        });

        let stats = shared.stats();
        assert_eq!(shared.len(), 0, "round {round}: survivors");
        assert_eq!(
            stats.expiries + stats.invalidations,
            N as u64,
            "round {round}: removal causes drifted \
             (expiries={} invalidations={})",
            stats.expiries,
            stats.invalidations,
        );
        assert_conserved(&stats, 0, &format!("round {round}"));

        assert_eq!(shared.ledger_dropped(), 0);
        shared
            .with_ledger(|l| {
                let mut removed = std::collections::BTreeMap::new();
                for rec in l.journal().records() {
                    if matches!(rec.op, CacheOp::Expire | CacheOp::Invalidate) {
                        *removed.entry(rec.name.to_string()).or_insert(0u32) += 1;
                    }
                }
                assert_eq!(removed.len(), N, "round {round}: an entry escaped removal");
                for (name, count) in removed {
                    assert_eq!(count, 1, "round {round}: {name} was removed {count} times");
                }
            })
            .expect("ledger enabled");
    }
}
