//! Eviction-cause accounting under a randomized workload.
//!
//! The provenance ledger's claim is that every entry leaving the cache
//! is attributed to exactly one cause — overwrite, expiry, capacity
//! eviction, explicit invalidation, or a phase clear. This suite
//! hammers a bounded cache with a seeded random mixture of stores,
//! reads, purges and invalidations, then checks the conservation law
//! `inserts − removals == live entries` and that the removal causes
//! sum to total removals — i.e. no removal path escapes attribution.

use dnsttl_core::ResolverPolicy;
use dnsttl_netsim::{SimRng, SimTime};
use dnsttl_resolver::{BailiwickClass, Cache, CacheStats, Credibility, SharedCache, StoreContext};
use dnsttl_telemetry::CacheOp;
use dnsttl_wire::{Name, RData, RRset, RecordType, Ttl};

fn rrset(host: u64, ttl: u32, data: u8) -> RRset {
    let name = Name::parse(&format!("h{host}.workload.example")).unwrap();
    RRset {
        name,
        rtype: RecordType::A,
        ttl: Ttl::from_secs(ttl),
        rdatas: vec![RData::A(std::net::Ipv4Addr::new(
            10,
            0,
            (host % 250) as u8,
            data,
        ))],
    }
}

fn check_conservation(stats: &CacheStats, len: usize, context: &str) {
    assert_eq!(
        stats.inserts,
        stats.removals() + len as u64,
        "{context}: inserts ({}) must equal removals ({}) + live entries ({len}); \
         causes: overwrites={} expiries={} evictions={} invalidations={} clears={}",
        stats.inserts,
        stats.removals(),
        stats.overwrites,
        stats.expiries,
        stats.evictions,
        stats.invalidations,
        stats.clears,
    );
}

#[test]
fn randomized_workload_conserves_entries_across_causes() {
    let policy = ResolverPolicy::default();
    let mut rng = SimRng::seed_from(0xC0FFEE);
    let mut cache = Cache::with_capacity(64);
    cache.enable_ledger();
    let mut now = SimTime::ZERO;

    for step in 0..20_000u64 {
        now += dnsttl_netsim::SimDuration::from_secs(rng.below(40));
        match rng.below(100) {
            // Mostly stores: random key from a keyspace ~4x capacity,
            // random TTL, two possible data values so refreshes and
            // overwrites both occur.
            0..=69 => {
                let host = rng.below(256);
                let ttl = 1 + rng.below(600) as u32;
                let data = if rng.chance(0.5) { 1 } else { 2 };
                let rank = if rng.chance(0.5) {
                    Credibility::AuthAnswer
                } else {
                    Credibility::ReferralAdditional
                };
                let ctx = StoreContext {
                    txn: step + 1,
                    server: Some("198.51.100.7".parse().unwrap()),
                    bailiwick: if rng.chance(0.5) {
                        BailiwickClass::In
                    } else {
                        BailiwickClass::Out
                    },
                };
                cache.store_with(rrset(host, ttl, data), rank, now, &policy, false, ctx);
            }
            // Reads (hits and misses — neither may disturb residency).
            70..=89 => {
                let host = rng.below(256);
                let name = Name::parse(&format!("h{host}.workload.example")).unwrap();
                let _ = cache.get(&name, RecordType::A, now);
            }
            // Occasional purge sweeps: expiry removals.
            90..=95 => cache.purge_expired(now),
            // Renumber-style invalidations.
            _ => {
                let host = rng.below(256);
                let name = Name::parse(&format!("h{host}.workload.example")).unwrap();
                cache.invalidate(&name, RecordType::A, now);
            }
        }
        if step % 4_096 == 0 {
            check_conservation(&cache.stats(), cache.len(), &format!("step {step}"));
        }
    }

    let stats = cache.stats();
    check_conservation(&stats, cache.len(), "final");
    // The workload must actually exercise every cause.
    assert!(stats.inserts > 1_000, "workload too small: {stats:?}");
    assert!(stats.refreshes > 0, "no refreshes occurred: {stats:?}");
    assert!(stats.overwrites > 0, "no overwrites occurred: {stats:?}");
    assert!(stats.expiries > 0, "no expiries occurred: {stats:?}");
    assert!(stats.evictions > 0, "no evictions occurred: {stats:?}");
    assert!(
        stats.invalidations > 0,
        "no invalidations occurred: {stats:?}"
    );
    assert!(stats.hits > 0, "no hits occurred: {stats:?}");

    // A final clear attributes every survivor.
    let live = cache.len() as u64;
    cache.clear();
    let stats = cache.stats();
    assert_eq!(stats.clears, live);
    check_conservation(&stats, 0, "after clear");

    // The ledger journal agrees with the scalar stats for every cause
    // it records (the journal is bounded, so compare via totals only
    // if nothing was dropped).
    cache
        .with_ledger(|ledger| {
            if ledger.journal().dropped() == 0 {
                let mut by_op = std::collections::BTreeMap::new();
                for rec in ledger.journal().records() {
                    *by_op.entry(rec.op).or_insert(0u64) += 1;
                }
                assert_eq!(
                    by_op.get(&CacheOp::Overwrite).copied().unwrap_or(0),
                    stats.overwrites
                );
                assert_eq!(
                    by_op.get(&CacheOp::Expire).copied().unwrap_or(0),
                    stats.expiries
                );
                assert_eq!(
                    by_op.get(&CacheOp::Evict).copied().unwrap_or(0),
                    stats.evictions
                );
                assert_eq!(
                    by_op.get(&CacheOp::Invalidate).copied().unwrap_or(0),
                    stats.invalidations
                );
                assert_eq!(
                    by_op.get(&CacheOp::Insert).copied().unwrap_or(0),
                    stats.inserts
                );
                assert_eq!(
                    by_op.get(&CacheOp::Refresh).copied().unwrap_or(0),
                    stats.refreshes
                );
            }
            // Per-cell aggregation conserves too: cell inserts sum to
            // stats.inserts.
            let cell_inserts: u64 = ledger.cells().map(|(_, c)| c.inserts).sum();
            assert_eq!(cell_inserts, stats.inserts);
            // Every removal with a residency sample: samples ≤ removals
            // (clears don't journal).
            let samples: usize = ledger.cells().map(|(_, c)| c.residency_ms.len()).sum();
            assert_eq!(
                samples as u64,
                stats.overwrites + stats.expiries + stats.evictions + stats.invalidations
            );
        })
        .expect("ledger enabled");
}

/// The sharded engine's accounting claim: conservation holds on the
/// *merged* ledger, not just per shard. Each shard runs the randomized
/// workload against its own cache (seeded via `shard_seed`, as the
/// sharded engine does), the per-shard stats are folded together with
/// `CacheStats::absorb`, and the law must hold for the totals with the
/// summed live-entry count.
#[test]
fn merged_multi_shard_ledger_conserves_entries() {
    let policy = ResolverPolicy::default();
    let run_shard = |seed: u64| -> (CacheStats, usize) {
        let mut rng = SimRng::seed_from(seed);
        let mut cache = Cache::with_capacity(32);
        cache.enable_ledger();
        let mut now = SimTime::ZERO;
        for step in 0..4_000u64 {
            now += dnsttl_netsim::SimDuration::from_secs(rng.below(40));
            match rng.below(100) {
                0..=69 => {
                    let host = rng.below(128);
                    let ttl = 1 + rng.below(600) as u32;
                    let data = if rng.chance(0.5) { 1 } else { 2 };
                    let ctx = StoreContext {
                        txn: step + 1,
                        server: Some("198.51.100.7".parse().unwrap()),
                        bailiwick: BailiwickClass::In,
                    };
                    cache.store_with(
                        rrset(host, ttl, data),
                        Credibility::AuthAnswer,
                        now,
                        &policy,
                        false,
                        ctx,
                    );
                }
                70..=89 => {
                    let host = rng.below(128);
                    let name = Name::parse(&format!("h{host}.workload.example")).unwrap();
                    let _ = cache.get(&name, RecordType::A, now);
                }
                90..=95 => cache.purge_expired(now),
                _ => {
                    let host = rng.below(128);
                    let name = Name::parse(&format!("h{host}.workload.example")).unwrap();
                    cache.invalidate(&name, RecordType::A, now);
                }
            }
        }
        check_conservation(&cache.stats(), cache.len(), &format!("shard seed {seed}"));
        (cache.stats(), cache.len())
    };

    let run_seed = 0xD15C0;
    let mut merged = CacheStats::default();
    let mut live = 0usize;
    for shard in 0..8u64 {
        let (stats, len) = run_shard(dnsttl_netsim::shard_seed(run_seed, shard));
        merged.absorb(&stats);
        live += len;
    }
    check_conservation(&merged, live, "merged 8-shard ledger");
    // The merge must not lose any cause bucket.
    assert!(
        merged.inserts > 1_000,
        "merged workload too small: {merged:?}"
    );
    assert!(merged.overwrites > 0 && merged.expiries > 0, "{merged:?}");
    assert!(
        merged.evictions > 0 && merged.invalidations > 0,
        "{merged:?}"
    );

    // Worker-order independence: absorbing the same shard stats in
    // reverse order gives the same totals (field sums commute).
    let stats: Vec<(CacheStats, usize)> = (0..8u64)
        .map(|s| run_shard(dnsttl_netsim::shard_seed(run_seed, s)))
        .collect();
    let mut reversed = CacheStats::default();
    for (s, _) in stats.iter().rev() {
        reversed.absorb(s);
    }
    assert_eq!(reversed, merged);
}

/// The concurrent backend's accounting claim, extended to the ops the
/// other suites don't race: serve-stale reads (`StaleServe`) and
/// failure caching (`NegCache`). Eight free-running threads hammer one
/// shared cache with overlapping keys — stores with short TTLs, stale
/// reads far past expiry, failure stores, invalidations, and global
/// purge sweeps — then the summed per-segment stats must conserve, the
/// lock-free op journal must agree with every counter, and both
/// stale serves and failure caches must actually have happened.
#[test]
fn concurrent_backend_conserves_under_raced_stale_and_negative_ops() {
    let policy = ResolverPolicy {
        serve_stale: Some(Ttl::DAY),
        ..ResolverPolicy::default()
    };
    let shared = SharedCache::with_capacity(8, 48);
    shared.enable_ledger();

    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let shared = &shared;
            let policy = &policy;
            scope.spawn(move || {
                let mut rng = SimRng::seed_from(0x57A1E ^ (t << 40));
                let mut now = SimTime::ZERO;
                for step in 0..4_000u64 {
                    now += dnsttl_netsim::SimDuration::from_secs(rng.below(40));
                    let host = rng.below(96);
                    let name = Name::parse(&format!("h{host}.workload.example")).unwrap();
                    match rng.below(100) {
                        // Stores with short TTLs so entries expire fast
                        // and stale reads find expired residents.
                        0..=39 => {
                            let ctx = StoreContext {
                                txn: step + 1,
                                server: Some("198.51.100.7".parse().unwrap()),
                                bailiwick: BailiwickClass::In,
                            };
                            shared.store_with(
                                rrset(host, 1 + rng.below(30) as u32, 1),
                                Credibility::AuthAnswer,
                                now,
                                policy,
                                false,
                                ctx,
                            );
                        }
                        // Serve-stale reads: probe far enough past the
                        // store times that expired entries are common.
                        40..=64 => {
                            let _ = shared.get_stale(
                                &name,
                                RecordType::A,
                                now + dnsttl_netsim::SimDuration::from_secs(45),
                                Ttl::DAY,
                            );
                        }
                        // Fresh reads.
                        65..=79 => {
                            let _ = shared.get(&name, RecordType::A, now);
                        }
                        // Failure caching (RFC 2308 §7): NegCache ops.
                        80..=89 => {
                            shared.store_failure(
                                name.clone(),
                                RecordType::A,
                                Ttl::from_secs(30),
                                now,
                            );
                            let _ = shared.get_negative(&name, RecordType::A, now);
                        }
                        // Expiry sweeps racing everything above.
                        90..=94 => shared.purge_expired(now),
                        _ => {
                            shared.invalidate(&name, RecordType::A, now);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(shared.ledger_dropped(), 0, "op log wrapped; grow it");
    let stats = shared.stats();
    check_conservation(&stats, shared.len(), "raced shared backend");
    assert!(stats.inserts > 1_000, "workload too small: {stats:?}");
    assert!(stats.stale_hits > 0, "no stale serves raced: {stats:?}");
    assert!(stats.expiries > 0 && stats.evictions > 0, "{stats:?}");
    assert!(stats.invalidations > 0, "{stats:?}");

    // Journal/stats agreement for every cause the journal records,
    // including the raced StaleServe ops. NegCache has no scalar
    // counter (failure caching holds no positive entry), so the
    // journal itself is the witness that the ops raced through.
    shared
        .with_ledger(|ledger| {
            let mut by_op = std::collections::BTreeMap::new();
            for rec in ledger.journal().records() {
                *by_op.entry(rec.op).or_insert(0u64) += 1;
            }
            for (op, want) in [
                (CacheOp::Insert, stats.inserts),
                (CacheOp::Refresh, stats.refreshes),
                (CacheOp::Overwrite, stats.overwrites),
                (CacheOp::Expire, stats.expiries),
                (CacheOp::Evict, stats.evictions),
                (CacheOp::Invalidate, stats.invalidations),
                (CacheOp::StaleServe, stats.stale_hits),
            ] {
                assert_eq!(
                    by_op.get(&op).copied().unwrap_or(0),
                    want,
                    "journal {op:?} count disagrees with summed stats"
                );
            }
            assert!(
                by_op.get(&CacheOp::NegCache).copied().unwrap_or(0) > 0,
                "no NegCache ops journalled"
            );
        })
        .expect("ledger enabled");
}

#[test]
fn same_seed_workloads_produce_identical_journals() {
    let run = |seed: u64| -> String {
        let policy = ResolverPolicy::default();
        let mut rng = SimRng::seed_from(seed);
        let mut cache = Cache::with_capacity(16);
        cache.enable_ledger();
        let mut now = SimTime::ZERO;
        for step in 0..2_000u64 {
            now += dnsttl_netsim::SimDuration::from_secs(rng.below(30));
            if rng.chance(0.8) {
                let host = rng.below(64);
                let ctx = StoreContext {
                    txn: step,
                    server: Some("203.0.113.9".parse().unwrap()),
                    bailiwick: BailiwickClass::In,
                };
                cache.store_with(
                    rrset(host, 1 + rng.below(120) as u32, 1),
                    Credibility::AuthAnswer,
                    now,
                    &policy,
                    false,
                    ctx,
                );
            } else {
                cache.purge_expired(now);
            }
        }
        cache.with_ledger(|l| l.journal().to_jsonl()).unwrap()
    };
    // Byte-identical across reruns: eviction victims and purge order
    // must not depend on HashMap iteration order.
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
