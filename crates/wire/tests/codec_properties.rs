//! Property tests for the wire codec, driven by a seeded deterministic
//! generator: arbitrary well-formed messages must round-trip exactly,
//! and the decoder must never panic on arbitrary bytes.
//!
//! (These were proptest suites in an earlier revision; the build
//! environment is offline, so they now run on a local xorshift
//! generator with fixed seeds — same invariants, reproducible cases.)

use dnsttl_wire::{
    decode_message, encode_message, Header, Message, Name, Opcode, Question, RData, Rcode, Record,
    RecordType, SoaData, Ttl,
};

/// Minimal deterministic RNG (xorshift64*), independent of any crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

const LABEL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
const LABEL_INNER: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

fn gen_label(rng: &mut Rng) -> String {
    let mut s = String::new();
    s.push(LABEL_CHARS[rng.below(LABEL_CHARS.len() as u64) as usize] as char);
    for _ in 0..rng.below(15) {
        s.push(LABEL_INNER[rng.below(LABEL_INNER.len() as u64) as usize] as char);
    }
    s
}

fn gen_name(rng: &mut Rng) -> Name {
    let labels: Vec<String> = (0..rng.below(5)).map(|_| gen_label(rng)).collect();
    Name::from_labels(labels).expect("labels within limits")
}

fn gen_ttl(rng: &mut Rng) -> Ttl {
    Ttl::from_secs((rng.next_u64() as u32) & 0x7FFF_FFFF)
}

fn gen_rdata(rng: &mut Rng) -> RData {
    match rng.below(9) {
        0 => RData::A([rng.byte(), rng.byte(), rng.byte(), rng.byte()].into()),
        1 => {
            let mut o = [0u8; 16];
            o.fill_with(|| rng.byte());
            RData::Aaaa(o.into())
        }
        2 => RData::Ns(gen_name(rng)),
        3 => RData::Cname(gen_name(rng)),
        4 => RData::Soa(SoaData {
            mname: gen_name(rng),
            rname: gen_name(rng),
            serial: rng.next_u64() as u32,
            refresh: rng.next_u64() as u32,
            retry: rng.next_u64() as u32,
            expire: rng.next_u64() as u32,
            minimum: rng.next_u64() as u32,
        }),
        5 => RData::Mx {
            preference: rng.next_u64() as u16,
            exchange: gen_name(rng),
        },
        6 => {
            // Printable ASCII (space..~), up to 300 chars.
            let len = rng.below(301);
            let txt: String = (0..len)
                .map(|_| (32 + rng.below(95) as u8) as char)
                .collect();
            RData::Txt(txt)
        }
        7 => RData::Dnskey {
            flags: rng.next_u64() as u16,
            protocol: 3,
            algorithm: 13,
            key: (0..rng.below(64)).map(|_| rng.byte()).collect(),
        },
        _ => RData::Rrsig {
            type_covered: RecordType::NS,
            algorithm: 13,
            original_ttl: rng.next_u64() as u32,
            signer: gen_name(rng),
            signature: (0..rng.below(64)).map(|_| rng.byte()).collect(),
        },
    }
}

fn gen_record(rng: &mut Rng) -> Record {
    Record::new(gen_name(rng), gen_ttl(rng), gen_rdata(rng))
}

fn gen_message(rng: &mut Rng) -> Message {
    let response = rng.bool();
    Message {
        header: Header {
            id: rng.next_u64() as u16,
            response,
            opcode: Opcode::Query,
            authoritative: rng.bool(),
            truncated: false,
            recursion_desired: rng.bool(),
            recursion_available: response,
            rcode: Rcode::NoError,
        },
        questions: (0..rng.below(2))
            .map(|_| Question::new(gen_name(rng), RecordType::A))
            .collect(),
        answers: (0..rng.below(4)).map(|_| gen_record(rng)).collect(),
        authorities: (0..rng.below(3)).map(|_| gen_record(rng)).collect(),
        additionals: (0..rng.below(3)).map(|_| gen_record(rng)).collect(),
    }
}

#[test]
fn message_round_trips() {
    let mut rng = Rng::new(1);
    for case in 0..256 {
        let msg = gen_message(&mut rng);
        let wire = encode_message(&msg).unwrap();
        let back = decode_message(&wire).unwrap();
        assert_eq!(back, msg, "case {case}");
    }
}

#[test]
fn decoder_never_panics() {
    let mut rng = Rng::new(2);
    for _ in 0..512 {
        let bytes: Vec<u8> = (0..rng.below(512)).map(|_| rng.byte()).collect();
        // Outcome (Ok or Err) is irrelevant; absence of panic is the test.
        let _ = decode_message(&bytes);
    }
}

#[test]
fn decoder_never_panics_on_mutated_valid_messages() {
    // Flipping bytes of real packets probes deeper decoder states than
    // pure noise (valid headers with corrupt bodies).
    let mut rng = Rng::new(3);
    for _ in 0..256 {
        let msg = gen_message(&mut rng);
        let mut wire = encode_message(&msg).unwrap();
        for _ in 0..=rng.below(4) {
            let i = rng.below(wire.len() as u64) as usize;
            wire[i] ^= rng.byte();
        }
        let _ = decode_message(&wire);
    }
}

#[test]
fn truncated_messages_error_and_never_panic() {
    // Every strict prefix of a valid encoding must be rejected (not
    // panic, not silently succeed): the cut always lands inside the
    // header, a name, or an rdata whose declared length is now a lie.
    let mut rng = Rng::new(7);
    for case in 0..128 {
        let msg = gen_message(&mut rng);
        let wire = encode_message(&msg).unwrap();
        for cut in 0..wire.len() {
            assert!(
                decode_message(&wire[..cut]).is_err(),
                "case {case}: prefix of {cut}/{} bytes decoded successfully",
                wire.len()
            );
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_decodes_consistently() {
    // Exhaustive single-byte corruption (all positions, a few XOR
    // masks): decode may accept or reject, but whatever it accepts must
    // re-encode and decode to the same message (no internally
    // inconsistent parses).
    let mut rng = Rng::new(8);
    for case in 0..32 {
        let msg = gen_message(&mut rng);
        let wire = encode_message(&msg).unwrap();
        for i in 0..wire.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = wire.clone();
                corrupt[i] ^= mask;
                if let Ok(decoded) = decode_message(&corrupt) {
                    let rewire = encode_message(&decoded).unwrap();
                    let redecoded = decode_message(&rewire).unwrap();
                    assert_eq!(redecoded, decoded, "case {case}, byte {i}, mask {mask:#x}");
                }
            }
        }
    }
}

#[test]
fn reencoding_decoded_message_is_stable() {
    let mut rng = Rng::new(4);
    for case in 0..256 {
        let msg = gen_message(&mut rng);
        let wire = encode_message(&msg).unwrap();
        let decoded = decode_message(&wire).unwrap();
        let wire2 = encode_message(&decoded).unwrap();
        let decoded2 = decode_message(&wire2).unwrap();
        assert_eq!(decoded, decoded2, "case {case}");
    }
}

#[test]
fn name_parse_display_round_trips() {
    let mut rng = Rng::new(5);
    for case in 0..256 {
        let labels: Vec<String> = (0..rng.below(5))
            .map(|_| {
                (0..=rng.below(10))
                    .map(|_| LABEL_CHARS[rng.below(LABEL_CHARS.len() as u64) as usize] as char)
                    .collect()
            })
            .collect();
        let name = Name::from_labels(labels).unwrap();
        let reparsed = Name::parse(&name.to_string()).unwrap();
        assert_eq!(reparsed, name, "case {case}");
    }
}

#[test]
fn ttl_countdown_never_underflows() {
    let mut rng = Rng::new(6);
    for _ in 0..512 {
        let start = (rng.next_u64() as u32) & 0x7FFF_FFFF;
        let step = rng.next_u64() as u32;
        let t = Ttl::from_secs(start);
        let aged = t.saturating_sub_secs(step);
        assert!(aged <= t);
    }
}
