//! Property tests for the wire codec: arbitrary well-formed messages must
//! round-trip exactly, and the decoder must never panic on arbitrary bytes.

use dnsttl_wire::{
    decode_message, encode_message, Header, Message, Name, Opcode, Question, RData, Rcode, Record,
    RecordType, SoaData, Ttl,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14})").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5)
        .prop_map(|labels| Name::from_labels(labels).expect("labels within limits"))
}

fn arb_ttl() -> impl Strategy<Value = Ttl> {
    (0u32..=((1 << 31) - 1)).prop_map(Ttl::from_secs)
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData { mname, rname, serial, refresh, retry, expire, minimum })
            }),
        (any::<u16>(), arb_name())
            .prop_map(|(preference, exchange)| RData::Mx { preference, exchange }),
        proptest::string::string_regex("[ -~]{0,300}")
            .unwrap()
            .prop_map(RData::Txt),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(flags, key)| {
            RData::Dnskey { flags, protocol: 3, algorithm: 13, key }
        }),
        (arb_name(), proptest::collection::vec(any::<u8>(), 0..64), any::<u32>()).prop_map(
            |(signer, signature, original_ttl)| RData::Rrsig {
                type_covered: RecordType::NS,
                algorithm: 13,
                original_ttl,
                signer,
                signature,
            }
        ),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), arb_ttl(), arb_rdata()).prop_map(|(n, t, rd)| Record::new(n, t, rd))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(arb_name(), 0..2),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(|(id, response, aa, rd, qnames, ans, auth, add)| Message {
            header: Header {
                id,
                response,
                opcode: Opcode::Query,
                authoritative: aa,
                truncated: false,
                recursion_desired: rd,
                recursion_available: response,
                rcode: Rcode::NoError,
            },
            questions: qnames
                .into_iter()
                .map(|n| Question::new(n, RecordType::A))
                .collect(),
            answers: ans,
            authorities: auth,
            additionals: add,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips(msg in arb_message()) {
        let wire = encode_message(&msg).unwrap();
        let back = decode_message(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Outcome (Ok or Err) is irrelevant; absence of panic is the test.
        let _ = decode_message(&bytes);
    }

    #[test]
    fn reencoding_decoded_message_is_stable(msg in arb_message()) {
        let wire = encode_message(&msg).unwrap();
        let decoded = decode_message(&wire).unwrap();
        let wire2 = encode_message(&decoded).unwrap();
        let decoded2 = decode_message(&wire2).unwrap();
        prop_assert_eq!(decoded, decoded2);
    }

    #[test]
    fn name_parse_display_round_trips(labels in proptest::collection::vec("[a-z0-9]{1,10}", 0..5)) {
        let name = Name::from_labels(labels).unwrap();
        let reparsed = Name::parse(&name.to_string()).unwrap();
        prop_assert_eq!(reparsed, name);
    }

    #[test]
    fn ttl_countdown_never_underflows(start in 0u32..=((1<<31)-1), step in 0u32..u32::MAX) {
        let t = Ttl::from_secs(start);
        let aged = t.saturating_sub_secs(step);
        prop_assert!(aged <= t);
    }
}
